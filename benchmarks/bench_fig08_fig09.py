"""Figures 8 & 9: average tardiness of the five transaction-level policies.

Figure 8 zooms into utilizations 0.1-0.5 (EDF territory), Figure 9 into
0.6-1.0 (SRPT territory).  Expected shape: FCFS worst; EDF best at low
load; SRPT overtakes EDF in the high-load half; ASETS* at or below the
better baseline everywhere.
"""

from repro.experiments.figures import figure8, figure9
from repro.metrics.report import format_series


def test_figure8_low_utilization(benchmark, bench_config, publish):
    series = benchmark.pedantic(
        figure8, args=(bench_config,), rounds=1, iterations=1
    )
    publish(
        "fig08",
        format_series(series, "Figure 8 - Avg tardiness, low utilization (alpha=0.5)"),
    )
    assert series.get("EDF")[0] <= series.get("SRPT")[0]


def test_figure9_high_utilization(benchmark, bench_config, publish):
    series = benchmark.pedantic(
        figure9, args=(bench_config,), rounds=1, iterations=1
    )
    publish(
        "fig09",
        format_series(series, "Figure 9 - Avg tardiness, high utilization (alpha=0.5)"),
    )
    assert series.get("SRPT")[-1] <= series.get("EDF")[-1]
    assert series.get("ASETS*")[-1] <= series.get("SRPT")[-1] * 1.05
