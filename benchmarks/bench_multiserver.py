"""Multi-server extension: does ASETS's dominance survive parallelism?

The paper's conclusion claims ASETS* "could be applied in any Real-Time
system with soft-deadlines".  This bench scales the backend to m = 1, 2
and 4 identical servers (offered load scaled to keep per-server
utilization at 0.8) and checks that the adaptive policy still sits at or
below EDF and SRPT.
"""

from repro.experiments.extensions import multiserver_sweep
from repro.metrics.report import format_series


def test_multiserver_dominance(benchmark, bench_config, publish):
    series = benchmark.pedantic(
        multiserver_sweep, args=(bench_config,), rounds=1, iterations=1
    )
    publish(
        "multiserver",
        format_series(
            series,
            "Extension - avg tardiness vs server count "
            "(per-server utilization 0.8)",
        ),
    )
    # At high server counts pooling nearly eliminates tardiness, so the
    # policies converge and differences sit in seed noise — hence the
    # absolute tolerance component.
    for a, e, s in zip(
        series.get("ASETS"), series.get("EDF"), series.get("SRPT")
    ):
        assert a <= min(e, s) * 1.1 + 0.05
