"""Simulator throughput: the one benchmark here that measures *time*.

Every other bench uses pytest-benchmark as a harness for regenerating the
paper's series; this one uses it for its real purpose — wall-clock
performance of the discrete-event engine per policy, guarding against
complexity regressions (the paper argues ASETS* scales like EDF/SRPT via
O(log N) priority-queue updates; a quadratic regression in the lazy heaps
would show up here immediately).
"""

import os

import pytest

from repro.experiments.config import PolicySpec
from repro.sim.engine import Simulator
from repro.workload.generator import generate
from repro.workload.spec import WorkloadSpec

POLICIES = ("fcfs", "edf", "srpt", "ls", "hdf", "asets", "asets-star")

#: Workload size; CI smoke runs set REPRO_BENCH_N to a small value.
BENCH_N = int(os.environ.get("REPRO_BENCH_N", "1000"))


@pytest.fixture(scope="module")
def workload():
    spec = WorkloadSpec(
        n_transactions=BENCH_N,
        utilization=0.9,
        weighted=True,
        with_workflows=True,
    )
    return generate(spec, seed=1)


@pytest.mark.parametrize("name", POLICIES)
def test_engine_throughput(name, workload, benchmark):
    policy_spec = PolicySpec.of(name)

    def run():
        workload.reset()
        return Simulator(
            workload.transactions,
            policy_spec.make(),
            workflow_set=workload.workflow_set,
        ).run()

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert result.n == BENCH_N
