"""Simulator throughput: the one benchmark here that measures *time*.

Every other bench uses pytest-benchmark as a harness for regenerating the
paper's series; this one uses it for its real purpose — wall-clock
performance of the discrete-event engine per policy, guarding against
complexity regressions (the paper argues ASETS* scales like EDF/SRPT via
O(log N) priority-queue updates; a quadratic regression in the lazy heaps
would show up here immediately).

Besides the pytest-benchmark table, the module emits a machine-readable
``BENCH_engine.json`` at the repo root — per-policy throughput (txns/s),
``policy.select()`` wall-time percentiles from one instrumented run, and
a full per-phase profile from one
:class:`~repro.obs.profile.PhaseProfiler` run: per-phase/probe p50/p95
and the fitted cost-vs-depth scaling exponents (docs/profiling.md) —
so successive PRs leave a comparable perf trajectory (CI uploads the file
as an artifact on every run).  Schema 4 adds two gated tolerances on top
of the schema-3 payload: ``depth_exponent_tolerance`` (an absolute
ceiling per (policy, phase) scaling exponent — the check that catches an
incremental structure quietly degenerating back into a linear scan) and
``tier_wall_growth_tolerance`` (per-tier wall time, which is where the
million-transaction run would feel it).

The streaming-tier tests take the same snapshot at scale: for each tier
in ``REPRO_BENCH_TIERS`` (default ``100000``; add ``1000000`` for the
full-size run) they launch ``rss_probe.py`` in fresh subprocesses —
once on the plain engine path and once in constant-memory streaming
mode — and record peak RSS, wall time and the streaming overhead ratio.
``python -m repro.perfgate`` compares the emitted file against the
committed baseline with the tolerances stored in its ``gate`` section;
set ``REPRO_BENCH_OUT`` to write somewhere other than the baseline
path (CI's perf-gate job writes ``BENCH_current.json`` so the baseline
it gates against stays untouched).
"""

import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro.experiments.config import PolicySpec
from repro.metrics.distributions import percentile
from repro.obs import PhaseProfiler, Recorder
from repro.sim.engine import Simulator
from repro.workload.generator import generate
from repro.workload.spec import WorkloadSpec

POLICIES = ("fcfs", "edf", "srpt", "ls", "hdf", "asets", "asets-star")

#: Workload size; CI smoke runs set REPRO_BENCH_N to a small value.
BENCH_N = int(os.environ.get("REPRO_BENCH_N", "1000"))

#: Streaming-tier sizes (comma-separated). Empty string disables the
#: tier tests; "100000,1000000" adds the million-transaction run.
TIERS = tuple(
    int(t)
    for t in os.environ.get("REPRO_BENCH_TIERS", "100000").split(",")
    if t.strip()
)

_REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

#: Machine-readable perf snapshot, written after the last policy runs.
BENCH_JSON = pathlib.Path(
    os.environ.get("REPRO_BENCH_OUT", _REPO_ROOT / "BENCH_engine.json")
)

#: Regression tolerances consumed by ``python -m repro.perfgate``.
#: Generous by design: CI machines are noisy and shared, so the gate
#: flags order-of-magnitude slips (a quadratic regression, unbounded
#: record retention), not scheduler jitter.
GATE = {
    "throughput_drop_tolerance": 0.6,
    "rss_growth_tolerance": 0.5,
    "streaming_overhead_max": 0.5,
    # Per-phase mean cost per occurrence (profile section, schema 3):
    # loose enough for shared-CI noise on microsecond phases, tight
    # enough to catch a complexity-class slip in any single phase.
    "phase_cost_growth_tolerance": 3.0,
    # Absolute ceiling on each (policy, phase) cost-vs-depth scaling
    # exponent (schema 4).  Exponents are complexity classes, so the
    # tolerance is additive, not relative: ~depth^0.1 drifting past
    # ~depth^0.6 means an incremental structure fell back to scanning.
    "depth_exponent_tolerance": 0.5,
    # Per-tier plain/streaming wall time (schema 4): the 10^6 tier is
    # where a quadratic slip becomes minutes, so gate it directly.
    "tier_wall_growth_tolerance": 1.0,
}

#: policy name -> measurements, filled by the parametrized benchmark.
_RESULTS: dict[str, dict] = {}

#: str(tier size) -> plain/streaming probe results + derived ratios.
_TIER_RESULTS: dict[str, dict] = {}


@pytest.fixture(scope="module")
def workload():
    spec = WorkloadSpec(
        n_transactions=BENCH_N,
        utilization=0.9,
        weighted=True,
        with_workflows=True,
    )
    return generate(spec, seed=1)


@pytest.fixture(scope="module", autouse=True)
def bench_json_sink():
    """Write the perf snapshot once every parametrized case ran."""
    yield
    if not _RESULTS and not _TIER_RESULTS:
        return
    payload = {
        "schema": 4,
        "n_transactions": BENCH_N,
        "utilization": 0.9,
        "seed": 1,
        "policies": _RESULTS,
        "tiers": _TIER_RESULTS,
        "gate": GATE,
    }
    BENCH_JSON.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


@pytest.mark.parametrize("name", POLICIES)
def test_engine_throughput(name, workload, benchmark):
    policy_spec = PolicySpec.of(name)

    def run():
        workload.reset()
        return Simulator(
            workload.transactions,
            policy_spec.make(),
            workflow_set=workload.workflow_set,
        ).run()

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert result.n == BENCH_N

    # One instrumented run (outside the timed rounds) for select() wall
    # times; its own overhead does not pollute the throughput numbers.
    recorder = Recorder(keep_events=False)
    workload.reset()
    Simulator(
        workload.transactions,
        policy_spec.make(),
        workflow_set=workload.workflow_set,
        instrument=recorder,
    ).run()
    samples = recorder.select_samples

    # One profiled run (also outside the timed rounds) for the schema-3
    # per-phase breakdown and cost-vs-depth scaling exponents.
    profiler = PhaseProfiler()
    workload.reset()
    Simulator(
        workload.transactions,
        policy_spec.make(),
        workflow_set=workload.workflow_set,
        profiler=profiler,
    ).run()

    mean_s = benchmark.stats.stats.mean
    _RESULTS[name] = {
        "mean_run_seconds": mean_s,
        "min_run_seconds": benchmark.stats.stats.min,
        "throughput_txns_per_s": BENCH_N / mean_s if mean_s > 0 else 0.0,
        "select_p50_seconds": percentile(samples, 50) if samples else 0.0,
        "select_p95_seconds": percentile(samples, 95) if samples else 0.0,
        "scheduling_points": len(samples),
        "profile": profiler.snapshot(name).as_dict(),
    }


def _probe(n: int, mode: str) -> dict:
    """Run ``rss_probe.py`` in a fresh interpreter and parse its JSON."""
    env = dict(os.environ)
    src = str(_REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    # Two in-process reps (best wall time) below a million transactions;
    # the overhead ratio compares mins, damping scheduler noise.
    reps = "2" if n < 1_000_000 else "1"
    proc = subprocess.run(
        [
            sys.executable,
            str(pathlib.Path(__file__).with_name("rss_probe.py")),
            "--n",
            str(n),
            "--mode",
            mode,
            "--reps",
            reps,
        ],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


@pytest.mark.parametrize("tier", TIERS)
def test_streaming_tier(tier):
    """Peak-RSS + overhead snapshot of the constant-memory path at scale.

    Each mode runs in its own subprocess so ``ru_maxrss`` (a
    process-lifetime high-water mark) isolates that run.  The asserts
    here are liveness-level only — the actual regression gate is
    ``python -m repro.perfgate`` against the committed baseline, whose
    tolerances live in the snapshot's ``gate`` section.
    """
    plain = _probe(tier, "plain")
    streaming = _probe(tier, "streaming")
    assert plain["completed"] + plain["tardy"] >= 0  # probe parsed
    assert streaming["completed"] == plain["completed"]
    assert streaming["tardy"] == plain["tardy"]
    overhead = (
        streaming["wall_seconds"] / plain["wall_seconds"] - 1.0
        if plain["wall_seconds"] > 0
        else 0.0
    )
    _TIER_RESULTS[str(tier)] = {
        "n": tier,
        "plain": plain,
        "streaming": streaming,
        "streaming_overhead_ratio": overhead,
        "rss_ratio_streaming_vs_plain": (
            streaming["peak_rss_mb"] / plain["peak_rss_mb"]
            if plain["peak_rss_mb"] > 0
            else 0.0
        ),
    }
