"""Simulator throughput: the one benchmark here that measures *time*.

Every other bench uses pytest-benchmark as a harness for regenerating the
paper's series; this one uses it for its real purpose — wall-clock
performance of the discrete-event engine per policy, guarding against
complexity regressions (the paper argues ASETS* scales like EDF/SRPT via
O(log N) priority-queue updates; a quadratic regression in the lazy heaps
would show up here immediately).

Besides the pytest-benchmark table, the module emits a machine-readable
``BENCH_engine.json`` at the repo root — per-policy throughput (txns/s)
and ``policy.select()`` wall-time percentiles from one instrumented run —
so successive PRs leave a comparable perf trajectory (CI uploads the file
as an artifact on every run).
"""

import json
import os
import pathlib

import pytest

from repro.experiments.config import PolicySpec
from repro.metrics.distributions import percentile
from repro.obs import Recorder
from repro.sim.engine import Simulator
from repro.workload.generator import generate
from repro.workload.spec import WorkloadSpec

POLICIES = ("fcfs", "edf", "srpt", "ls", "hdf", "asets", "asets-star")

#: Workload size; CI smoke runs set REPRO_BENCH_N to a small value.
BENCH_N = int(os.environ.get("REPRO_BENCH_N", "1000"))

#: Machine-readable perf snapshot, written after the last policy runs.
BENCH_JSON = pathlib.Path(__file__).resolve().parents[1] / "BENCH_engine.json"

#: policy name -> measurements, filled by the parametrized benchmark.
_RESULTS: dict[str, dict] = {}


@pytest.fixture(scope="module")
def workload():
    spec = WorkloadSpec(
        n_transactions=BENCH_N,
        utilization=0.9,
        weighted=True,
        with_workflows=True,
    )
    return generate(spec, seed=1)


@pytest.fixture(scope="module", autouse=True)
def bench_json_sink():
    """Write ``BENCH_engine.json`` once every parametrized case ran."""
    yield
    if not _RESULTS:
        return
    payload = {
        "schema": 1,
        "n_transactions": BENCH_N,
        "utilization": 0.9,
        "seed": 1,
        "policies": _RESULTS,
    }
    BENCH_JSON.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


@pytest.mark.parametrize("name", POLICIES)
def test_engine_throughput(name, workload, benchmark):
    policy_spec = PolicySpec.of(name)

    def run():
        workload.reset()
        return Simulator(
            workload.transactions,
            policy_spec.make(),
            workflow_set=workload.workflow_set,
        ).run()

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert result.n == BENCH_N

    # One instrumented run (outside the timed rounds) for select() wall
    # times; its own overhead does not pollute the throughput numbers.
    recorder = Recorder(keep_events=False)
    workload.reset()
    Simulator(
        workload.transactions,
        policy_spec.make(),
        workflow_set=workload.workflow_set,
        instrument=recorder,
    ).run()
    samples = recorder.select_samples
    mean_s = benchmark.stats.stats.mean
    _RESULTS[name] = {
        "mean_run_seconds": mean_s,
        "min_run_seconds": benchmark.stats.stats.min,
        "throughput_txns_per_s": BENCH_N / mean_s if mean_s > 0 else 0.0,
        "select_p50_seconds": percentile(samples, 50) if samples else 0.0,
        "select_p95_seconds": percentile(samples, 95) if samples else 0.0,
        "scheduling_points": len(samples),
    }
