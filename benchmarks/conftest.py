"""Shared benchmark machinery.

Every benchmark regenerates one table or figure of the paper at paper
scale (1000 transactions, 5 seeds) through ``benchmark.pedantic`` with a
single round — the quantity of interest is the *series* (who wins, by how
much), not the harness's own latency.  Each bench prints the series it
produced and also writes it under ``benchmarks/results/`` so the output
survives pytest's capture.

Scale can be reduced for smoke runs::

    REPRO_BENCH_N=200 REPRO_BENCH_SEEDS=2 pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments.config import ExperimentConfig

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    n = int(os.environ.get("REPRO_BENCH_N", "1000"))
    seeds = int(os.environ.get("REPRO_BENCH_SEEDS", "5"))
    return ExperimentConfig().scaled(n, seeds)


@pytest.fixture(scope="session")
def publish():
    """Print a result block and persist it to benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _publish(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _publish
