"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not figures of the paper — these quantify the consequences of the
under-specified knobs we had to pin down, and of the related-work
baselines the paper argues against:

* ``balance_aware_knobs`` — the four combinations of
  (tardy_only, pin_until_completion).  The paper-matching configuration
  (tardy-only, no pin) is the only one with both a worst-case gain and a
  small average-case cost.
* ``mix_tradeoff`` — MIX with several static lambdas against ASETS,
  showing no single lambda dominates across utilizations (the paper's
  criticism of parameterised hybrids).
* ``weight_awareness`` — weighted vs unweighted ASETS on a weighted
  workload (what the HDF list buys).
"""

import dataclasses

from repro.experiments.config import PolicySpec
from repro.experiments.runner import (
    generate_workloads,
    mean_metric,
    utilization_sweep,
)
from repro.metrics.aggregates import MetricSeries
from repro.metrics.report import format_series, format_table
from repro.workload.spec import WorkloadSpec

_GENERAL = WorkloadSpec(
    with_workflows=True,
    max_workflow_length=5,
    max_workflows_per_txn=1,
    weighted=True,
)


def test_balance_aware_knobs(benchmark, bench_config, publish):
    spec = dataclasses.replace(
        _GENERAL, utilization=1.0, n_transactions=bench_config.n_transactions
    )

    def run():
        workloads = generate_workloads(spec, bench_config.seeds)
        base_max = mean_metric(
            workloads, PolicySpec.of("asets-star"), "max_weighted_tardiness"
        )
        base_avg = mean_metric(
            workloads,
            PolicySpec.of("asets-star"),
            "average_weighted_tardiness",
        )
        rows = [["ASETS* (reference)", base_max, base_avg, "-", "-"]]
        for tardy_only in (True, False):
            for pin in (True, False):
                policy = PolicySpec.of(
                    "balance-aware",
                    time_rate=0.01,
                    tardy_only=tardy_only,
                    pin_until_completion=pin,
                )
                m = mean_metric(workloads, policy, "max_weighted_tardiness")
                a = mean_metric(
                    workloads, policy, "average_weighted_tardiness"
                )
                rows.append(
                    [
                        f"tardy_only={tardy_only}, pin={pin}",
                        m,
                        a,
                        f"{m / base_max - 1:+.0%}",
                        f"{a / base_avg - 1:+.0%}",
                    ]
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(
        "ablation_balance_knobs",
        "Ablation - balance-aware knobs (time rate 0.01, U=1.0)\n"
        + format_table(
            ["configuration", "max_wt", "avg_wt", "dmax", "davg"], rows
        ),
    )
    # The default (tardy-only, no pin) improves the worst case.
    default_row = rows[1 + 1]  # tardy_only=True, pin=False
    assert default_row[1] < rows[0][1]


def test_mix_tradeoff_sweep(benchmark, bench_config, publish):
    spec = WorkloadSpec(weighted=True)
    policies = (
        PolicySpec.of("mix", "MIX(0)", tradeoff=0.0),
        PolicySpec.of("mix", "MIX(10)", tradeoff=10.0),
        PolicySpec.of("mix", "MIX(100)", tradeoff=100.0),
        PolicySpec.of("asets", "ASETS*", weighted=True),
    )

    def run():
        return utilization_sweep(
            spec,
            policies,
            "average_weighted_tardiness",
            bench_config,
            utilizations=[0.2, 0.5, 0.8, 1.0],
        )

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(
        "ablation_mix",
        format_series(
            series,
            "Ablation - static MIX blends vs adaptive ASETS "
            "(avg weighted tardiness)",
        ),
    )
    # No MIX lambda may beat ASETS* across the whole sweep.
    astar = series.get("ASETS*")
    for name in ("MIX(0)", "MIX(10)", "MIX(100)"):
        mixes = series.get(name)
        assert any(m > a for m, a in zip(mixes, astar))


def test_weight_awareness(benchmark, bench_config, publish):
    spec = WorkloadSpec(weighted=True)
    policies = (
        PolicySpec.of("asets", "ASETS (unweighted lists)", weighted=False),
        PolicySpec.of("asets", "ASETS* (HDF lists)", weighted=True),
    )

    def run():
        return utilization_sweep(
            spec,
            policies,
            "average_weighted_tardiness",
            bench_config,
            utilizations=[0.6, 0.8, 1.0],
        )

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(
        "ablation_weights",
        format_series(
            series,
            "Ablation - what the HDF list buys on a weighted workload",
        ),
    )
    weighted = series.get("ASETS* (HDF lists)")
    unweighted = series.get("ASETS (unweighted lists)")
    assert weighted[-1] < unweighted[-1]
