"""Preemption-cost ablation: is adaptivity worth it when switches cost?

The paper's model preempts for free.  This bench charges a context-switch
overhead on every dispatch of a transaction that was not already running
and sweeps its magnitude, comparing the preemption-happy policies (SRPT,
ASETS) with the nearly non-preemptive FCFS and with EDF at U = 0.8.

Expected shape: everyone degrades as switches get dearer (even FCFS pays
one warm-up per transaction), preemptive policies degrade faster, but
ASETS should retain its lead over SRPT and EDF at realistic overheads
(a fraction of the mean transaction length of ~18.7).
"""

from repro.experiments.config import PolicySpec
from repro.experiments.runner import generate_workloads
from repro.metrics.aggregates import MetricSeries, mean
from repro.metrics.report import format_series
from repro.sim.engine import Simulator
from repro.workload.spec import WorkloadSpec

OVERHEADS = (0.0, 0.5, 1.0, 2.0)
POLICIES = (
    PolicySpec.of("fcfs", "FCFS"),
    PolicySpec.of("edf", "EDF"),
    PolicySpec.of("srpt", "SRPT"),
    PolicySpec.of("asets", "ASETS"),
)


def run_sweep(config) -> MetricSeries:
    spec = WorkloadSpec(
        n_transactions=config.n_transactions, utilization=0.8
    )
    workloads = generate_workloads(spec, config.seeds)
    series = MetricSeries(
        x_label="context-switch overhead",
        x=list(OVERHEADS),
        metric="average_tardiness",
    )
    values = {p.display: [] for p in POLICIES}
    for overhead in OVERHEADS:
        for policy in POLICIES:
            runs = []
            for w in workloads:
                w.reset()
                runs.append(
                    Simulator(
                        w.transactions,
                        policy.make(),
                        preemption_overhead=overhead,
                    ).run()
                )
            values[policy.display].append(
                mean(r.average_tardiness for r in runs)
            )
    for policy in POLICIES:
        series.add(policy.display, values[policy.display])
    return series


def test_preemption_overhead(benchmark, bench_config, publish):
    series = benchmark.pedantic(
        run_sweep, args=(bench_config,), rounds=1, iterations=1
    )
    publish(
        "preemption_overhead",
        format_series(
            series,
            "Ablation - cost of context switches (U=0.8, mean length ~18.7)",
        ),
    )
    # Free preemption must match the main results; at moderate overhead
    # the adaptive policy still beats both pure baselines.
    asets = series.get("ASETS")
    for i, overhead in enumerate(OVERHEADS[:3]):
        assert asets[i] <= min(series.get("EDF")[i], series.get("SRPT")[i]) * 1.05
