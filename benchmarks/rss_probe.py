"""Subprocess probe: peak RSS and wall time of one engine run.

``resource.getrusage(RUSAGE_SELF).ru_maxrss`` is a process-lifetime
high-water mark, so each measurement needs its own interpreter — the
bench (and the perf gate's CI job) runs this script once per
``(tier, mode)`` cell and parses the JSON line it prints::

    python benchmarks/rss_probe.py --n 100000 --mode streaming

Modes
-----
``plain``
    The default engine path: records retained, no instrument.  This is
    the wall-clock and memory baseline the streaming overhead is judged
    against.
``streaming``
    Constant-memory path: ``retain_records=False`` plus a
    :class:`~repro.obs.streaming.StreamingRecorder` (quantile sketches,
    moments, top-k).  Peak RSS here must stay flat as ``--n`` grows —
    that is the whole point of the streaming telemetry layer.

On Linux ``ru_maxrss`` is in KiB (macOS reports bytes; this repo's CI
and dev images are Linux, and the probe normalizes for both).
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time

from repro.experiments.config import PolicySpec
from repro.workload.generator import generate
from repro.workload.spec import WorkloadSpec


def _peak_rss_mb() -> float:
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        return peak / (1024 * 1024)
    return peak / 1024


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=100_000)
    parser.add_argument("--policy", default="asets-star")
    parser.add_argument(
        "--mode", choices=("plain", "streaming"), default="streaming"
    )
    parser.add_argument("--utilization", type=float, default=0.9)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--window",
        type=float,
        default=None,
        help="tumbling-window width (streaming mode only)",
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=1,
        help="engine runs to take the best (min) wall time over",
    )
    args = parser.parse_args(argv)

    spec = WorkloadSpec(
        n_transactions=args.n,
        utilization=args.utilization,
        weighted=True,
        with_workflows=True,
    )
    t0 = time.perf_counter()
    workload = generate(spec, seed=args.seed)
    gen_seconds = time.perf_counter() - t0

    policy_spec = PolicySpec.of(args.policy)
    payload: dict = {
        "n": args.n,
        "policy": args.policy,
        "mode": args.mode,
        "gen_seconds": gen_seconds,
    }

    walls = []
    for _ in range(max(1, args.reps)):
        t0 = time.perf_counter()
        if args.mode == "plain":
            from repro.sim.engine import Simulator

            workload.reset()
            result = Simulator(
                workload.transactions,
                policy_spec.make(),
                workflow_set=workload.workflow_set,
            ).run()
        else:
            from repro.experiments.runner import run_policy_streaming

            result, recorder = run_policy_streaming(
                workload, policy_spec, window=args.window
            )
            telemetry = recorder.telemetry
            payload["tardiness_p99"] = telemetry.tardiness.quantile(0.99)
            payload["response_p99"] = telemetry.response.quantile(0.99)
        walls.append(time.perf_counter() - t0)
    payload["wall_seconds"] = min(walls)
    payload["reps"] = len(walls)
    payload["completed"] = result.completed_count
    payload["tardy"] = result.tardy_count
    payload["deadline_miss_ratio"] = result.deadline_miss_ratio
    payload["peak_rss_mb"] = _peak_rss_mb()
    print(json.dumps(payload, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
