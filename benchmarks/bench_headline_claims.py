"""The headline-claims table: every qualitative result of Section IV.

Runs the complete evaluation (Figures 10, 11, 13, 14, 15, 16 and 17
under the hood) and prints one row per claim — this is the table
EXPERIMENTS.md records.
"""

from repro.experiments.tables import format_claims, headline_claims


def test_headline_claims(benchmark, bench_config, publish):
    results = benchmark.pedantic(
        headline_claims, args=(bench_config,), rounds=1, iterations=1
    )
    publish(
        "headline_claims",
        "Headline claims of the paper vs this reproduction\n"
        + format_claims(results),
    )
    held = sum(1 for r in results if r.holds)
    assert held == len(results), f"only {held}/{len(results)} claims hold"
