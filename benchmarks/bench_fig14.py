"""Figure 14: workflow-level ASETS* vs the Ready baseline.

Unweighted dependent workload, maximum workflow length 5, maximum number
of workflows per transaction 1 (Section IV-D).  Expected shape: ASETS*
at or below Ready everywhere, with the gap widening as utilization grows
and dependency/deadline conflicts start to bind.
"""

from repro.experiments.figures import figure14
from repro.metrics.report import format_series


def test_figure14_workflow_level(benchmark, bench_config, publish):
    series = benchmark.pedantic(
        figure14, args=(bench_config,), rounds=1, iterations=1
    )
    ready = series.get("Ready")
    star = series.get("ASETS*")
    gains = [1 - s / r for s, r in zip(star, ready) if r > 0]
    title = (
        "Figure 14 - Avg tardiness at the workflow level "
        f"(L_max=5, W_max=1; ASETS* gain over Ready: "
        f"max {max(gains):.0%}, mean {sum(gains)/len(gains):.0%})"
    )
    publish("fig14", format_series(series, title))
    # Under load ASETS* must beat Ready.
    assert sum(star[-3:]) < sum(ready[-3:])
