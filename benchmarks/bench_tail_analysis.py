"""Tail analysis: what SRPT's low mean costs in the tardiness tail.

Extension experiment quantifying the starvation story behind §III-D:
per-policy mean, p95, p99, max and Gini coefficient of the tardiness
distribution under heavy load.  SRPT should show the lowest mean with
the most *concentrated* tardiness (highest Gini); ASETS should track
SRPT's mean with a visibly lighter tail.
"""

from repro.experiments.extensions import format_tail_table, tail_analysis


def test_tail_analysis(benchmark, bench_config, publish):
    series = benchmark.pedantic(
        tail_analysis, args=(bench_config,), rounds=1, iterations=1
    )
    publish(
        "tail_analysis",
        "Extension - tardiness distribution per policy (U=0.9)\n"
        + format_tail_table(series),
    )
    # Gini is the last statistic row: SRPT's concentration exceeds EDF's.
    srpt_gini = series.get("SRPT")[-1]
    edf_gini = series.get("EDF")[-1]
    assert srpt_gini > edf_gini
