"""Robustness to length-estimation error (extension experiment).

The paper assumes transaction lengths are "computed by the system based
on previous statistics and profiles" — i.e. the length-aware policies run
on estimates.  This bench sweeps the maximum relative estimation error
and measures the degradation of SRPT, ASETS and (for reference) the
estimate-oblivious EDF at a loaded operating point.

Expected shape: EDF is flat by construction; SRPT and ASETS degrade
gracefully, and ASETS stays at or below SRPT because its EDF list hedges
the decisions that bad estimates corrupt.
"""

from repro.experiments.extensions import estimation_robustness
from repro.metrics.report import format_series


def test_estimation_robustness(benchmark, bench_config, publish):
    series = benchmark.pedantic(
        estimation_robustness, args=(bench_config,), rounds=1, iterations=1
    )
    publish(
        "estimation_robustness",
        format_series(
            series,
            "Extension - sensitivity to length-estimation error (U=0.8)",
        ),
    )
    edf = series.get("EDF")
    assert max(edf) - min(edf) <= 0.05 * max(edf) + 1e-9  # EDF is estimate-free
    # Perfect estimates are at least as good as the noisiest setting.
    asets = series.get("ASETS")
    assert asets[0] <= asets[-1] + 1e-9
