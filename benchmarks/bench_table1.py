"""Table I: summary of experimental parameters (rendered from live defaults)."""

from repro.experiments.tables import table1


def test_table1(benchmark, publish):
    text = benchmark.pedantic(table1, rounds=1, iterations=1)
    publish("table1", "Table I - Summary of experimental parameters\n" + text)
    assert "Zipf" in text
