"""Section IV-C's length-skew study (plots omitted in the paper).

The paper reports the observation without figures: the more skewed the
transaction-length distribution (larger Zipf alpha), the earlier the
EDF/SRPT crossover.  This bench regenerates the sweep and prints the
crossover per alpha.
"""

from repro.experiments.figures import alpha_sweep
from repro.metrics.report import format_series


def test_alpha_sweep(benchmark, bench_config, publish):
    sweeps = benchmark.pedantic(
        alpha_sweep, kwargs={"config": bench_config}, rounds=1, iterations=1
    )
    blocks = []
    crossovers = {}
    for alpha, series in sorted(sweeps.items()):
        crossovers[alpha] = series.crossover("EDF", "SRPT")
        blocks.append(
            format_series(
                series,
                f"alpha = {alpha} (EDF/SRPT crossover at U={crossovers[alpha]})",
            )
        )
    publish("alpha_sweep", "\n\n".join(blocks))
    # Trend check, end to end: the crossover at the highest skew must not
    # sit to the right of the crossover at the lowest skew by more than
    # one grid step (the 0.1 grid plus seed noise makes strict
    # monotonicity too brittle an assertion).
    observed = [c for c in (crossovers[a] for a in sorted(crossovers)) if c]
    if len(observed) >= 2:
        assert observed[-1] <= observed[0] + 0.1 + 1e-9
