"""Figure 15: the general case — weighted transactions with workflows.

ASETS* vs EDF vs HDF on average weighted tardiness (Section IV-E).
Expected shape: EDF competitive at low utilization, HDF at high
utilization, ASETS* at or below both across the whole grid.
"""

from repro.experiments.figures import figure15
from repro.metrics.report import format_series


def test_figure15_general_case(benchmark, bench_config, publish):
    series = benchmark.pedantic(
        figure15, args=(bench_config,), rounds=1, iterations=1
    )
    publish(
        "fig15",
        format_series(
            series,
            "Figure 15 - Avg weighted tardiness, general case "
            "(workflows + weights 1-10)",
        ),
    )
    astar = series.get("ASETS*")
    for a, e, h in zip(astar, series.get("EDF"), series.get("HDF")):
        assert a <= min(e, h) * 1.05 + 0.01
