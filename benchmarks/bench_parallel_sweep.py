"""Sequential vs parallel sweep wall time (the ``--jobs`` harness).

Times the default Figure 8/9-style utilization sweep once through the
sequential path (``jobs=1``) and once through the process pool
(``jobs = cpu count``), asserts the merged rows are byte-identical, and
writes ``BENCH_sweep.json`` at the repo root — wall times, the measured
speedup and the worker count — so successive PRs (and the CI artifact)
track how close the harness gets to linear scaling.

On a single-core runner the parallel path is expected to be *slower*
(pool setup + pickling, no parallelism to win back); the JSON records
whatever was measured — the ≥2x claim is for >= 4 cores.
"""

import json
import os
import pathlib
import time

from repro.experiments.config import (
    TRANSACTION_LEVEL_POLICIES,
    ExperimentConfig,
)
from repro.experiments.parallel import resolve_jobs
from repro.experiments.runner import utilization_sweep
from repro.workload.spec import WorkloadSpec

#: Scale knobs shared with the other benches; CI smoke runs shrink them.
BENCH_N = int(os.environ.get("REPRO_BENCH_N", "1000"))
BENCH_SEEDS = int(os.environ.get("REPRO_BENCH_SEEDS", "5"))

BENCH_JSON = pathlib.Path(__file__).resolve().parents[1] / "BENCH_sweep.json"

SPEC = WorkloadSpec(zipf_alpha=0.5, k_max=3.0)
UTILIZATIONS = (0.2, 0.4, 0.6, 0.8, 1.0)


def _sweep(jobs: int):
    config = ExperimentConfig().scaled(BENCH_N, BENCH_SEEDS)
    start = time.perf_counter()
    series = utilization_sweep(
        SPEC,
        TRANSACTION_LEVEL_POLICIES,
        "average_tardiness",
        config,
        utilizations=UTILIZATIONS,
        jobs=jobs,
        failures=None if jobs == 1 else [],
    )
    return series, time.perf_counter() - start


def test_parallel_sweep_speedup(publish):
    workers = resolve_jobs(0)  # one per core
    sequential, seq_seconds = _sweep(jobs=1)
    parallel, par_seconds = _sweep(jobs=workers)

    assert repr(sequential.as_rows()) == repr(parallel.as_rows())

    speedup = seq_seconds / par_seconds if par_seconds > 0 else 0.0
    cells = len(UTILIZATIONS) * BENCH_SEEDS * len(TRANSACTION_LEVEL_POLICIES)
    payload = {
        "schema": 1,
        "n_transactions": BENCH_N,
        "seeds": BENCH_SEEDS,
        "utilizations": list(UTILIZATIONS),
        "policies": [p.display for p in TRANSACTION_LEVEL_POLICIES],
        "cells": cells,
        "workers": workers,
        "sequential_seconds": seq_seconds,
        "parallel_seconds": par_seconds,
        "speedup": speedup,
        "rows_identical": True,
    }
    BENCH_JSON.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    publish(
        "parallel_sweep",
        f"utilization sweep, {cells} cells ({BENCH_N} txns x {BENCH_SEEDS} "
        f"seeds x {len(TRANSACTION_LEVEL_POLICIES)} policies)\n"
        f"  sequential (jobs=1):      {seq_seconds:8.2f} s\n"
        f"  parallel   (jobs={workers}):{par_seconds:10.2f} s\n"
        f"  speedup:                  {speedup:8.2f}x\n"
        f"  rows byte-identical:      yes",
    )
