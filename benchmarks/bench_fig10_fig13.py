"""Figures 10-13: ASETS* average tardiness normalized to EDF and SRPT.

One benchmark per slack-factor bound k_max in {3, 1, 2, 4} (the paper's
presentation order).  Expected shapes: every normalized value <= ~1, the
biggest dip near the EDF/SRPT crossover, and the crossover moving right
as k_max grows.
"""

import pytest

from repro.experiments.figures import (
    figure10,
    figure11,
    figure12,
    figure13,
)
from repro.metrics.report import format_series

_FIGS = {
    "fig10": (figure10, 3.0),
    "fig11": (figure11, 1.0),
    "fig12": (figure12, 2.0),
    "fig13": (figure13, 4.0),
}


@pytest.mark.parametrize("name", sorted(_FIGS))
def test_normalized_tardiness(name, benchmark, bench_config, publish):
    fig, k_max = _FIGS[name]
    series = benchmark.pedantic(fig, args=(bench_config,), rounds=1, iterations=1)
    crossover = series.raw.crossover("EDF", "SRPT")
    title = (
        f"Figure {name[3:]} - Normalized avg tardiness (k_max={k_max:g}; "
        f"EDF/SRPT crossover at U={crossover})"
    )
    body = format_series(series, title)
    body += "\n\n" + format_series(series.raw, "Raw sweep")
    publish(name, body)
    # ASETS* never loses to either baseline by more than seed noise.
    for key in ("ASETS*/EDF", "ASETS*/SRPT"):
        assert all(v <= 1.05 for v in series.get(key))
