"""Optimality gap: how far from the exact optimum do the policies land?

Extension experiment using :mod:`repro.analysis`: on random *batches* of
12 transactions (all released together — the regime where the exact DP
applies), compute each policy's total weighted tardiness divided by the
true optimum.  Overload level is controlled through the slack factor.

Expected shape: HDF near-optimal on hopeless batches (its optimality
regime), EDF near-optimal on feasible ones, ASETS close to optimal on
*both* and the best of the heuristics in the mixed regime in between.
"""

import random

from repro.analysis.optimal import policy_gap
from repro.core.transaction import Transaction
from repro.experiments.config import PolicySpec
from repro.metrics.aggregates import MetricSeries, mean
from repro.metrics.report import format_series

BATCH_SIZE = 12
BATCHES_PER_REGIME = 30
#: (label, k_max): slack regimes from hopeless to mostly-feasible.
REGIMES = (("0.0", 0.0), ("0.5", 0.5), ("1.5", 1.5), ("3.0", 3.0))
POLICIES = (
    PolicySpec.of("edf", "EDF"),
    PolicySpec.of("srpt", "SRPT"),
    PolicySpec.of("hdf", "HDF"),
    PolicySpec.of("asets", "ASETS*", weighted=True),
)


def random_batch(rng: random.Random, k_max: float) -> list[Transaction]:
    txns = []
    for i in range(BATCH_SIZE):
        length = float(rng.randint(1, 20))
        slack = rng.uniform(0.0, k_max)
        txns.append(
            Transaction(
                i + 1,
                arrival=0.0,
                length=length,
                deadline=length * (1 + slack),
                weight=float(rng.randint(1, 10)),
            )
        )
    return txns


def run_study() -> MetricSeries:
    series = MetricSeries(
        x_label="k_max (batch slack regime)",
        x=[float(label) for label, _ in REGIMES],
        metric="mean total-weighted-tardiness / optimum",
    )
    gaps: dict[str, list[float]] = {p.display: [] for p in POLICIES}
    for _, k_max in REGIMES:
        rng = random.Random(20090 + int(k_max * 10))
        batches = [random_batch(rng, k_max) for _ in range(BATCHES_PER_REGIME)]
        for policy in POLICIES:
            ratios = []
            for txns in batches:
                gap = policy_gap(txns, policy.make())
                if gap != float("inf"):
                    ratios.append(gap)
            gaps[policy.display].append(mean(ratios))
    for policy in POLICIES:
        series.add(policy.display, gaps[policy.display])
    return series


def test_optimality_gap(benchmark, publish):
    series = benchmark.pedantic(run_study, rounds=1, iterations=1)
    publish(
        "optimality_gap",
        format_series(
            series,
            f"Extension - distance from the exact optimum "
            f"({BATCHES_PER_REGIME} random {BATCH_SIZE}-transaction batches "
            "per regime; infeasible-vs-clearable cases excluded)",
        ),
    )
    # HDF is provably optimal in the hopeless regime.
    assert series.get("HDF")[0] == 1.0
    # The adaptive policy is the best heuristic (or tied) in every regime.
    asets = series.get("ASETS*")
    for i in range(len(series.x)):
        others = min(
            series.get("EDF")[i], series.get("SRPT")[i], series.get("HDF")[i]
        )
        assert asets[i] <= others * 1.10
