"""Figures 16 & 17: the balance-aware trade-off (plus count-based twins).

At full utilization — where SRPT-style starvation materialises — sweep
the activation rate of balance-aware ASETS* and compare against plain
ASETS*.  Expected shapes (Section IV-F): the maximum weighted tardiness
(worst case) improves, increasingly so at higher activation rates, while
the average weighted tardiness degrades by only a few percent.
"""

import pytest

from repro.experiments.figures import (
    figure16,
    figure16_count_based,
    figure17,
    figure17_count_based,
)
from repro.metrics.report import format_series

_FIGS = {
    "fig16": (figure16, "Figure 16 - Max weighted tardiness (time-based rate)"),
    "fig17": (figure17, "Figure 17 - Avg weighted tardiness (time-based rate)"),
    "fig16_count": (
        figure16_count_based,
        "Figure 16 (count-based twin) - Max weighted tardiness",
    ),
    "fig17_count": (
        figure17_count_based,
        "Figure 17 (count-based twin) - Avg weighted tardiness",
    ),
}


@pytest.mark.parametrize("name", sorted(_FIGS))
def test_balance_aware(name, benchmark, bench_config, publish):
    fig, title = _FIGS[name]
    series = benchmark.pedantic(fig, args=(bench_config,), rounds=1, iterations=1)
    base = series.get("ASETS*")[0]
    balanced = series.get("ASETS* (balance-aware)")
    if "16" in name:
        extreme = min(balanced)
        note = f"best worst-case gain {1 - extreme / base:.0%}"
    else:
        extreme = max(balanced)
        note = f"largest average-case cost {extreme / base - 1:+.0%}"
    publish(name, format_series(series, f"{title} ({note})"))
    if "16" in name:
        assert min(balanced) < base  # worst case improves somewhere
    else:
        assert max(balanced) <= base * 1.15  # average cost stays small
