"""The value of preemption: each policy against its pinned self.

Extension experiment: the paper's model preempts at every arrival; many
real query engines cannot.  This bench compares EDF, SRPT and ASETS with
their :class:`~repro.policies.nonpreemptive.NonPreemptive` variants at
moderate and full overload — how much of each policy's performance is
preemption, and does the adaptive hybrid still win when nothing can be
preempted?
"""

from repro.experiments.config import PolicySpec
from repro.experiments.runner import generate_workloads, mean_metric
from repro.metrics.aggregates import MetricSeries
from repro.metrics.report import format_series
from repro.workload.spec import WorkloadSpec

UTILIZATIONS = (0.6, 0.8, 1.0)
PAIRS = (
    ("EDF", PolicySpec.of("edf", "EDF"),
     PolicySpec.of("non-preemptive", "np-EDF", inner="edf")),
    ("SRPT", PolicySpec.of("srpt", "SRPT"),
     PolicySpec.of("non-preemptive", "np-SRPT", inner="srpt")),
    ("ASETS", PolicySpec.of("asets", "ASETS"),
     PolicySpec.of("non-preemptive", "np-ASETS", inner="asets")),
)


def run_sweep(config) -> MetricSeries:
    series = MetricSeries(
        x_label="utilization",
        x=list(UTILIZATIONS),
        metric="average_tardiness",
    )
    values: dict[str, list[float]] = {}
    for util in UTILIZATIONS:
        spec = WorkloadSpec(
            n_transactions=config.n_transactions, utilization=util
        )
        workloads = generate_workloads(spec, config.seeds)
        for _, preemptive, pinned in PAIRS:
            for policy in (preemptive, pinned):
                values.setdefault(policy.display, []).append(
                    mean_metric(workloads, policy, "average_tardiness")
                )
    for name, data in values.items():
        series.add(name, data)
    return series


def test_preemption_value(benchmark, bench_config, publish):
    series = benchmark.pedantic(
        run_sweep, args=(bench_config,), rounds=1, iterations=1
    )
    publish(
        "preemption_value",
        format_series(
            series,
            "Extension - preemptive policies vs their pinned selves",
        ),
    )
    # Preemption helps every policy under load ...
    for name, _, _ in PAIRS:
        assert series.get(name)[-1] <= series.get(f"np-{name}")[-1]
    # ... and the adaptive hybrid stays the best even when pinned.
    for i in range(len(UTILIZATIONS)):
        np_asets = series.get("np-ASETS")[i]
        assert np_asets <= min(
            series.get("np-EDF")[i], series.get("np-SRPT")[i]
        ) * 1.1 + 0.05
