"""Time series sampled at scheduling points.

Aggregate metrics (average tardiness, miss ratio) hide the *dynamics* a
scheduler lives in — backlog building up, servers idling, tardiness
accruing.  A :class:`Timeline` keeps one :class:`TimelineSample` per
scheduling point: the ready-queue depth, the number of busy servers and
the tardiness accumulated by completed transactions so far.

The samples are ordinary data; export them with :meth:`Timeline.as_dict`
or iterate and plot.  Memory cost is one small object per scheduling
point (about 2N samples for N transactions), which is why the engine
only pays it when an instrument asks for it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["TimelineSample", "Timeline"]


@dataclass(frozen=True, slots=True)
class TimelineSample:
    """State of the system right after one scheduling point."""

    #: Simulated time of the scheduling point.
    time: float
    #: Transactions ready but not dispatched (the backlog).
    ready: int
    #: Servers busy after dispatch.
    running: int
    #: Cumulative tardiness of the transactions completed so far.
    tardiness: float


class Timeline:
    """An append-only series of :class:`TimelineSample`."""

    __slots__ = ("_samples",)

    def __init__(self) -> None:
        self._samples: list[TimelineSample] = []

    def append(
        self, time: float, ready: int, running: int, tardiness: float
    ) -> None:
        self._samples.append(TimelineSample(time, ready, running, tardiness))

    # ------------------------------------------------------------------
    # Views.
    # ------------------------------------------------------------------
    def samples(self) -> list[TimelineSample]:
        return list(self._samples)

    def times(self) -> list[float]:
        return [s.time for s in self._samples]

    def ready_depths(self) -> list[int]:
        return [s.ready for s in self._samples]

    def servers_busy(self) -> list[int]:
        return [s.running for s in self._samples]

    def running_tardiness(self) -> list[float]:
        return [s.tardiness for s in self._samples]

    @property
    def max_ready_depth(self) -> int:
        """Peak backlog over the run (0 on an empty timeline)."""
        return max((s.ready for s in self._samples), default=0)

    @property
    def mean_ready_depth(self) -> float:
        """Sample-mean backlog (unweighted by interval length)."""
        if not self._samples:
            return 0.0
        return sum(s.ready for s in self._samples) / len(self._samples)

    def as_dict(self) -> dict[str, list[float]]:
        """Columnar JSON-ready form."""
        return {
            "time": self.times(),
            "ready": self.ready_depths(),
            "running": self.servers_busy(),
            "tardiness": self.running_tardiness(),
        }

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self) -> Iterator[TimelineSample]:
        return iter(self._samples)

    def __repr__(self) -> str:
        return (
            f"Timeline(samples={len(self._samples)}, "
            f"max_ready_depth={self.max_ready_depth})"
        )
