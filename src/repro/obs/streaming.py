"""Constant-memory streaming telemetry: sketches, windows, a recorder.

The paper's headline claims are about *tail* behaviour — deadline-miss
rates and tardiness distributions under load — but the exact quantile
path materialises every per-transaction outcome before it can rank
anything.  At 10⁶–10⁷ transactions that is exactly what blows the RSS
budget.  This module provides **online aggregates** whose memory cost is
independent of stream length, so tardiness / response-time quantiles can
be read off a million-transaction run without storing a single
per-transaction record:

:class:`QuantileSketch`
    A deterministic relative-error quantile sketch over logarithmic
    buckets (the DDSketch construction; the role P²/GK play in other
    systems).  For any quantile ``q`` the estimate ``x̂`` satisfies
    ``|x̂ − x_q| <= α·|x_q|`` where ``α`` is the configured
    ``relative_accuracy`` and ``x_q`` the exact ``q``-quantile of the
    ingested stream.  Memory is ``O(log(max/min)/α)`` buckets, however
    long the stream.  Merging adds integer bucket counts, so it is
    **exactly associative and commutative**: merged shards are
    byte-identical (:meth:`QuantileSketch.as_dict`) to single-stream
    ingestion, in any merge order or grouping.

:class:`StreamingMoments`
    Welford's online mean/variance, merged with the Chan et al.
    parallel-variance formula.  The merge is mathematically associative;
    floating-point rounding makes different merge *groupings* differ in
    the last ulps, so deterministic pipelines must merge in a fixed
    order (``repro.experiments.parallel`` merges in grid order, which is
    why ``jobs=N`` telemetry is byte-identical to ``jobs=1``).

:class:`TopK`
    A weighted Misra–Gries heavy-hitters summary ("count-min-free":
    no hashing, no probabilistic collisions) for the largest tardiness
    contributors.  Every stored estimate ``ĉ`` satisfies
    ``c − D <= ĉ <= c`` for the true weight ``c``, where ``D``
    (:attr:`TopK.undercount_bound`) is the total decremented mass,
    itself bounded by ``W / (capacity + 1)`` for total weight ``W``.
    The bound survives merging (Agarwal et al., *Mergeable Summaries*).

:class:`WindowAggregator`
    Tumbling windows over **simulated** time.  Each closed window emits
    one additive schema-1 ``window.snapshot`` event carrying arrivals,
    completions, throughput, miss rate, queue-depth stats and server
    utilization for that window — a bounded time-series where the
    :class:`~repro.obs.timeline.Timeline` would keep one sample per
    scheduling point.

:class:`RunTelemetry`
    The per-run bundle of all of the above, with an associative
    :meth:`RunTelemetry.merge` used by the parallel sweep harness.

:class:`StreamingRecorder`
    An :class:`~repro.obs.hooks.Instrument` maintaining a
    :class:`RunTelemetry` (plus optional windows and an optional JSONL
    sink with sampling) in constant memory, and condensing the run into
    a quantile-bearing :class:`~repro.obs.summary.RunReport`.

Everything here is deterministic — no wall clocks, no unseeded entropy —
and ``repro.obs.streaming`` is enforced as such by ``repro.lint``
(RL001/RL002 via ``DETERMINISTIC_PACKAGES``).  Wall-clock progress
heartbeats live in :mod:`repro.obs.progress` instead, outside the
deterministic boundary.  See ``docs/streaming.md`` for the guarantees
and formats in full.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterator, Mapping

from repro.errors import ObservabilityError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.transaction import Transaction
    from repro.obs.jsonl import EventSink
    from repro.obs.summary import RunReport

from repro.obs.hooks import Instrument

__all__ = [
    "QuantileSketch",
    "StreamingMoments",
    "TopK",
    "WindowAggregator",
    "RunTelemetry",
    "StreamingRecorder",
]

#: Magnitudes below this collapse into the sketch's exact zero bucket.
MIN_TRACKABLE = 1e-12


class QuantileSketch:
    """Deterministic relative-error quantile sketch (log buckets).

    Values are routed to geometric buckets with boundaries ``γ^k`` where
    ``γ = (1 + α) / (1 − α)``; bucket ``k`` covers ``(γ^(k−1), γ^k]``
    and reports the estimate ``2γ^k / (γ + 1)``, which is within
    relative error ``α`` of every value in the bucket.  Negative values
    get a mirrored bucket map; magnitudes below :data:`MIN_TRACKABLE`
    share one exact zero bucket (tardiness streams are mostly zeros).

    All counts are integers, so :meth:`merge` (bucket-wise addition) is
    exactly associative and commutative and :meth:`as_dict` of merged
    shards is byte-identical to single-stream ingestion.

    Examples
    --------
    >>> s = QuantileSketch(relative_accuracy=0.01)
    >>> for v in range(1, 1001):
    ...     s.add(float(v))
    >>> abs(s.quantile(0.5) - 500) <= 0.01 * 500 + 1
    True
    """

    __slots__ = (
        "relative_accuracy",
        "_log_gamma",
        "_positive",
        "_negative",
        "_zero",
        "count",
        "_min",
        "_max",
    )

    def __init__(self, relative_accuracy: float = 0.01) -> None:
        if not 0.0 < relative_accuracy < 1.0:
            raise ObservabilityError(
                f"relative_accuracy must be in (0, 1), got {relative_accuracy}"
            )
        self.relative_accuracy = relative_accuracy
        gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy)
        self._log_gamma = math.log(gamma)
        self._positive: dict[int, int] = {}
        self._negative: dict[int, int] = {}
        self._zero = 0
        self.count = 0
        self._min = math.inf
        self._max = -math.inf

    # ------------------------------------------------------------------
    # Ingestion.
    # ------------------------------------------------------------------
    def _key(self, magnitude: float) -> int:
        return math.ceil(math.log(magnitude) / self._log_gamma)

    def _estimate(self, key: int) -> float:
        gamma_k = math.exp(key * self._log_gamma)
        alpha = self.relative_accuracy
        # Midpoint of (γ^(k-1), γ^k] in relative terms: 2γ^k / (γ + 1)
        # = γ^k (1 − α), within α of both bucket edges.
        return gamma_k * (1.0 - alpha)

    def add(self, value: float, count: int = 1) -> None:
        """Ingest ``value`` (``count`` times; counts stay integral)."""
        if count < 1:
            raise ObservabilityError(f"count must be >= 1, got {count}")
        if value > MIN_TRACKABLE:
            key = self._key(value)
            self._positive[key] = self._positive.get(key, 0) + count
        elif value < -MIN_TRACKABLE:
            key = self._key(-value)
            self._negative[key] = self._negative.get(key, 0) + count
        else:
            value = 0.0
            self._zero += count
        self.count += count
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    @property
    def min(self) -> float:
        """Exact minimum ingested value (0.0 on an empty sketch)."""
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        """Exact maximum ingested value (0.0 on an empty sketch)."""
        return self._max if self.count else 0.0

    @property
    def sum(self) -> float:
        """Bucket-reconstructed sum; within relative ``α`` of the exact
        sum when all values share a sign (exact totals come from
        :class:`StreamingMoments`, which tracks them online)."""
        total = 0.0
        for key in sorted(self._negative):
            total -= self._estimate(key) * self._negative[key]
        for key in sorted(self._positive):
            total += self._estimate(key) * self._positive[key]
        return total

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-quantile estimate, within relative error ``α``.

        Guarantee: for the exact ``q``-quantile ``x_q`` (the value at
        rank ``max(0, ceil(q·n) − 1)`` of the sorted stream), the
        returned ``x̂`` satisfies ``|x̂ − x_q| <= α·|x_q|``; ``q`` of 0
        and 1 return the exact tracked min/max.
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile q must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        if q == 0.0:
            return self.min
        if q == 1.0:
            return self.max
        rank = max(0, math.ceil(q * self.count) - 1)
        # Ascending value order: negatives (large magnitude first), the
        # zero bucket, then positives (small magnitude first).
        cumulative = 0
        for key in sorted(self._negative, reverse=True):
            cumulative += self._negative[key]
            if cumulative > rank:
                return -self._estimate(key)
        cumulative += self._zero
        if cumulative > rank:
            return 0.0
        for key in sorted(self._positive):
            cumulative += self._positive[key]
            if cumulative > rank:
                return self._estimate(key)
        return self.max  # pragma: no cover - unreachable (counts add up)

    # ------------------------------------------------------------------
    # Merge and serialisation.
    # ------------------------------------------------------------------
    def merge(self, other: "QuantileSketch") -> None:
        """Fold ``other`` into this sketch (bucket-wise integer adds).

        Exactly associative and commutative; both sketches must share
        the same ``relative_accuracy`` (the bucket maps are only
        compatible at equal γ).
        """
        if other.relative_accuracy != self.relative_accuracy:
            raise ObservabilityError(
                "cannot merge sketches with different relative_accuracy "
                f"({self.relative_accuracy} vs {other.relative_accuracy})"
            )
        for key in sorted(other._positive):
            self._positive[key] = (
                self._positive.get(key, 0) + other._positive[key]
            )
        for key in sorted(other._negative):
            self._negative[key] = (
                self._negative.get(key, 0) + other._negative[key]
            )
        self._zero += other._zero
        self.count += other.count
        if other.count:
            if other._min < self._min:
                self._min = other._min
            if other._max > self._max:
                self._max = other._max

    def as_dict(self) -> dict:
        """JSON-ready snapshot; byte-stable under merge order/grouping."""
        return {
            "relative_accuracy": self.relative_accuracy,
            "count": self.count,
            "zero": self._zero,
            "min": self.min,
            "max": self.max,
            "positive": {str(k): self._positive[k] for k in sorted(self._positive)},
            "negative": {str(k): self._negative[k] for k in sorted(self._negative)},
        }

    @classmethod
    def from_dict(cls, state: Mapping) -> "QuantileSketch":
        sketch = cls(relative_accuracy=float(state["relative_accuracy"]))
        sketch._zero = int(state["zero"])
        sketch.count = int(state["count"])
        if sketch.count:
            sketch._min = float(state["min"])
            sketch._max = float(state["max"])
        sketch._positive = {
            int(k): int(v) for k, v in state["positive"].items()
        }
        sketch._negative = {
            int(k): int(v) for k, v in state["negative"].items()
        }
        return sketch

    def to_state(self) -> dict:
        """Checkpoint state; exact (integer counts, tracked min/max).

        :meth:`as_dict` already loses nothing — bucket counts are
        integers and min/max are stored floats — so the checkpoint
        state *is* the snapshot dict and ``from_state(to_state(s))``
        answers every quantile/sum/count query identically to ``s``.
        """
        return self.as_dict()

    @classmethod
    def from_state(cls, state: Mapping) -> "QuantileSketch":
        """Inverse of :meth:`to_state` (see there for the exactness)."""
        return cls.from_dict(state)

    def __repr__(self) -> str:
        return (
            f"QuantileSketch(alpha={self.relative_accuracy}, "
            f"count={self.count}, buckets="
            f"{len(self._positive) + len(self._negative) + bool(self._zero)})"
        )


class StreamingMoments:
    """Welford online mean/variance with the Chan et al. parallel merge.

    ``mean`` and ``variance`` are exact up to floating-point rounding;
    memory is O(1) regardless of stream length.  The merge is
    associative mathematically; merge in a fixed order when byte
    determinism matters (the sweep harness does).

    Examples
    --------
    >>> m = StreamingMoments()
    >>> for v in (1.0, 2.0, 3.0, 4.0):
    ...     m.add(v)
    >>> m.mean, m.variance
    (2.5, 1.25)
    """

    __slots__ = ("count", "mean", "_m2", "_min", "_max")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def variance(self) -> float:
        """Population variance (0.0 on fewer than two samples)."""
        return self._m2 / self.count if self.count > 1 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def total(self) -> float:
        return self.mean * self.count

    @property
    def min(self) -> float:
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        return self._max if self.count else 0.0

    def merge(self, other: "StreamingMoments") -> None:
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self._min = other._min
            self._max = other._max
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self._m2 = (
            self._m2
            + other._m2
            + delta * delta * self.count * other.count / total
        )
        self.mean += delta * other.count / total
        self.count = total
        if other._min < self._min:
            self._min = other._min
        if other._max > self._max:
            self._max = other._max

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "variance": self.variance,
            "min": self.min,
            "max": self.max,
        }

    def to_state(self) -> dict:
        """Checkpoint state: the *raw* accumulator fields.

        Unlike :meth:`as_dict` (which reports the derived ``variance``
        and the empty-safe min/max), this captures ``_m2`` and the raw
        sentinels directly so a restored instance continues the Welford
        recurrence bit-for-bit.
        """
        return {
            "count": self.count,
            "mean": self.mean,
            "m2": self._m2,
            "min": self._min,
            "max": self._max,
        }

    @classmethod
    def from_state(cls, state: Mapping) -> "StreamingMoments":
        moments = cls()
        moments.count = int(state["count"])
        moments.mean = float(state["mean"])
        moments._m2 = float(state["m2"])
        moments._min = float(state["min"])
        moments._max = float(state["max"])
        return moments

    def __repr__(self) -> str:
        return (
            f"StreamingMoments(count={self.count}, mean={self.mean:g}, "
            f"stddev={self.stddev:g})"
        )


class TopK:
    """Weighted Misra–Gries heavy-hitters summary (no hashing).

    Tracks at most ``capacity`` keys.  When a new key overflows the
    table, the minimum stored weight is subtracted from *every* counter
    (keys hitting zero are dropped) and added to the decrement total
    ``D``.  For every key the stored estimate ``ĉ`` satisfies
    ``c − D <= ĉ <= c`` against the true ingested weight ``c``, with
    ``D <= W / (capacity + 1)`` for total ingested weight ``W`` — and
    the same bound holds after any sequence of :meth:`merge` calls.

    Ties are broken deterministically (first-inserted evicts first),
    so the structure is fully reproducible.

    Internally the MG "subtract the floor from everyone" decrement is
    lazy: counters store ``estimate + offset`` and a trim only raises
    the shared ``offset`` and evicts keys at or below it — O(capacity)
    per eviction with no dict rebuild, which keeps the per-completion
    cost flat on runs where every tardy transaction is a fresh key.
    """

    __slots__ = ("capacity", "_counters", "_offset", "_shed", "total_weight")

    def __init__(self, capacity: int = 16) -> None:
        if capacity < 1:
            raise ObservabilityError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._counters: dict[int, float] = {}
        #: Shared lazy decrement: true estimate = stored − offset.
        self._offset = 0.0
        #: Total decremented mass D: per-key undercount is at most this.
        self._shed = 0.0
        self.total_weight = 0.0

    def add(self, key: int, weight: float = 1.0) -> None:
        if weight <= 0.0:
            if weight == 0.0:
                return
            raise ObservabilityError(f"weight must be >= 0, got {weight}")
        self.total_weight += weight
        counters = self._counters
        if key in counters:
            counters[key] += weight
        else:
            counters[key] = weight + self._offset
            if len(counters) > self.capacity:
                self._trim()

    def _trim(self) -> None:
        """Raise the offset until ``capacity`` keys fit again.

        Only the minimum key is evicted per pass; keys tied with the
        floor stay behind at estimate zero (``c == offset``, excluded
        from :meth:`items`) and fall out of the next trim.  The
        invariant ``c >= offset`` holds for every stored counter, so
        the offset never moves backwards and estimates never go
        negative.
        """
        counters = self._counters
        while len(counters) > self.capacity:
            min_key = min(counters, key=counters.__getitem__)
            floor = counters[min_key]
            self._shed += floor - self._offset
            self._offset = floor
            del counters[min_key]

    @property
    def undercount_bound(self) -> float:
        """Max possible undercount of any estimate (the decrement total)."""
        return self._shed

    def estimate(self, key: int) -> float:
        """Lower-bound weight estimate for ``key`` (0.0 if untracked)."""
        stored = self._counters.get(key)
        return 0.0 if stored is None else stored - self._offset

    def items(self) -> list[tuple[int, float]]:
        """Tracked keys, heaviest first (ties broken by key)."""
        offset = self._offset
        return sorted(
            ((k, c - offset) for k, c in self._counters.items() if c > offset),
            key=lambda kv: (-kv[1], kv[0]),
        )

    def top(self, k: int) -> list[tuple[int, float]]:
        return self.items()[:k]

    def merge(self, other: "TopK") -> None:
        """Fold ``other`` in; the MG error bound is preserved."""
        if other.capacity != self.capacity:
            raise ObservabilityError(
                "cannot merge TopK summaries with different capacities "
                f"({self.capacity} vs {other.capacity})"
            )
        offset = other._offset
        for key in sorted(other._counters):
            weight = other._counters[key] - offset
            if key in self._counters:
                self._counters[key] += weight
            else:
                self._counters[key] = weight + self._offset
        self._shed += other._shed
        self.total_weight += other.total_weight
        if len(self._counters) > self.capacity:
            self._trim()

    def as_dict(self) -> dict:
        return {
            "capacity": self.capacity,
            "total_weight": self.total_weight,
            "undercount_bound": self.undercount_bound,
            "items": [[k, w] for k, w in self.items()],
        }

    def to_state(self) -> dict:
        """Checkpoint state: raw counters in insertion order.

        :meth:`as_dict` bakes the lazy ``_offset`` into the reported
        estimates and re-sorts by weight; exact resume needs the stored
        counters verbatim (eviction tie-breaks depend on insertion
        order) plus the offset and decrement total, so those are kept
        raw here.
        """
        return {
            "capacity": self.capacity,
            "offset": self._offset,
            "shed": self._shed,
            "total_weight": self.total_weight,
            "counters": [[k, c] for k, c in self._counters.items()],
        }

    @classmethod
    def from_state(cls, state: Mapping) -> "TopK":
        topk = cls(capacity=int(state["capacity"]))
        topk._offset = float(state["offset"])
        topk._shed = float(state["shed"])
        topk.total_weight = float(state["total_weight"])
        topk._counters = {
            int(k): float(c) for k, c in state["counters"]
        }
        return topk

    def __len__(self) -> int:
        return len(self._counters)

    def __repr__(self) -> str:
        return (
            f"TopK(capacity={self.capacity}, tracked={len(self._counters)}, "
            f"undercount<={self._shed:g})"
        )


class WindowAggregator:
    """Tumbling windows over simulated time, emitting ``window.snapshot``.

    Window ``i`` covers ``[i·width, (i+1)·width)``.  Counters accumulate
    as the engine reports events; when simulated time crosses a window
    boundary the closed window(s) are emitted as additive schema-1
    records::

        {"kind": "window.snapshot", "t": <end>, "window": i,
         "start": ..., "end": ..., "arrivals": n, "completions": n,
         "tardy": n, "miss_rate": x, "throughput": x, "tardiness": x,
         "utilization": x, "queue_max": n, "queue_mean": x}

    ``utilization`` is busy-server time integrated over the window
    divided by ``servers × width`` (the engine's running count is
    piecewise constant between scheduling points, so the integral is
    exact).  The final, possibly partial window is emitted by
    :meth:`finish` with an extra ``"partial": true`` field.
    """

    __slots__ = (
        "width",
        "servers",
        "_index",
        "_arrivals",
        "_completions",
        "_tardy",
        "_tardiness",
        "_queue_samples",
        "_queue_sum",
        "_queue_max",
        "_busy",
        "_last_time",
        "_last_running",
        "snapshots_emitted",
    )

    def __init__(self, width: float, servers: int = 1) -> None:
        if width <= 0:
            raise ObservabilityError(f"window width must be > 0, got {width}")
        self.width = width
        self.servers = max(1, servers)
        self._index = 0
        self._reset_counters()
        self._last_time = 0.0
        self._last_running = 0
        self.snapshots_emitted = 0

    def _reset_counters(self) -> None:
        self._arrivals = 0
        self._completions = 0
        self._tardy = 0
        self._tardiness = 0.0
        self._queue_samples = 0
        self._queue_sum = 0
        self._queue_max = 0
        self._busy = 0.0

    def _snapshot(self, end: float, partial: bool) -> dict:
        start = self._index * self.width
        span = max(end - start, MIN_TRACKABLE)
        record = {
            "kind": "window.snapshot",
            "t": end,
            "window": self._index,
            "start": start,
            "end": end,
            "arrivals": self._arrivals,
            "completions": self._completions,
            "tardy": self._tardy,
            "miss_rate": (
                self._tardy / self._completions if self._completions else 0.0
            ),
            "throughput": self._completions / span,
            "tardiness": self._tardiness,
            "utilization": self._busy / (span * self.servers),
            "queue_max": self._queue_max,
            "queue_mean": (
                self._queue_sum / self._queue_samples
                if self._queue_samples
                else 0.0
            ),
        }
        if partial:
            record["partial"] = True
        self.snapshots_emitted += 1
        return record

    def _integrate(self, until: float) -> None:
        if until > self._last_time:
            self._busy += self._last_running * (until - self._last_time)
            self._last_time = until

    def advance(self, now: float) -> list[dict]:
        """Close every window ending at or before ``now``; return their
        snapshot records (often empty, bounded by elapsed sim time)."""
        out: list[dict] = []
        boundary = (self._index + 1) * self.width
        while now >= boundary:
            self._integrate(boundary)
            out.append(self._snapshot(boundary, partial=False))
            self._index += 1
            self._reset_counters()
            boundary = (self._index + 1) * self.width
        return out

    def observe_arrival(self) -> None:
        self._arrivals += 1

    def observe_completion(self, tardiness: float) -> None:
        self._completions += 1
        self._tardiness += tardiness
        if tardiness > 0.0:
            self._tardy += 1

    def observe_point(self, now: float, ready: int, running: int) -> None:
        """One scheduling point: sample the queue, step the integral."""
        self._integrate(now)
        self._last_running = running
        self._queue_samples += 1
        self._queue_sum += ready
        if ready > self._queue_max:
            self._queue_max = ready

    def finish(self, now: float) -> list[dict]:
        """Flush at run end: close full windows, emit the partial tail."""
        out = self.advance(now)
        self._integrate(now)
        if now > self._index * self.width:
            out.append(self._snapshot(now, partial=True))
        return out

    def to_state(self) -> dict:
        """Checkpoint state: every accumulator of the open window."""
        return {
            "width": self.width,
            "servers": self.servers,
            "index": self._index,
            "arrivals": self._arrivals,
            "completions": self._completions,
            "tardy": self._tardy,
            "tardiness": self._tardiness,
            "queue_samples": self._queue_samples,
            "queue_sum": self._queue_sum,
            "queue_max": self._queue_max,
            "busy": self._busy,
            "last_time": self._last_time,
            "last_running": self._last_running,
            "snapshots_emitted": self.snapshots_emitted,
        }

    @classmethod
    def from_state(cls, state: Mapping) -> "WindowAggregator":
        windows = cls(float(state["width"]), servers=int(state["servers"]))
        windows._index = int(state["index"])
        windows._arrivals = int(state["arrivals"])
        windows._completions = int(state["completions"])
        windows._tardy = int(state["tardy"])
        windows._tardiness = float(state["tardiness"])
        windows._queue_samples = int(state["queue_samples"])
        windows._queue_sum = int(state["queue_sum"])
        windows._queue_max = int(state["queue_max"])
        windows._busy = float(state["busy"])
        windows._last_time = float(state["last_time"])
        windows._last_running = int(state["last_running"])
        windows.snapshots_emitted = int(state["snapshots_emitted"])
        return windows


class RunTelemetry:
    """The constant-memory telemetry bundle of one (or many merged) runs.

    Carries quantile sketches for tardiness and response time, exact
    moments for both, a Misra–Gries summary of the heaviest tardiness
    contributors ("blame culprits"), and exact integer outcome counts.
    :meth:`merge` folds another run's telemetry in; the parallel sweep
    harness merges per-cell telemetry in grid order, which makes
    ``jobs=N`` output byte-identical to ``jobs=1``
    (:meth:`as_dict` compares equal, key for key).
    """

    __slots__ = (
        "quantile_accuracy",
        "tardiness",
        "response",
        "tardiness_moments",
        "response_moments",
        "culprits",
        "arrivals",
        "completed",
        "tardy",
        "aborted",
        "shed",
        "retries",
        "preemptions",
        "weighted_total",
        "weighted_max",
        "makespan",
    )

    def __init__(
        self, quantile_accuracy: float = 0.01, topk: int = 16
    ) -> None:
        self.quantile_accuracy = quantile_accuracy
        self.tardiness = QuantileSketch(quantile_accuracy)
        self.response = QuantileSketch(quantile_accuracy)
        self.tardiness_moments = StreamingMoments()
        self.response_moments = StreamingMoments()
        self.culprits = TopK(topk)
        self.arrivals = 0
        self.completed = 0
        self.tardy = 0
        self.aborted = 0
        self.shed = 0
        self.retries = 0
        self.preemptions = 0
        self.weighted_total = 0.0
        self.weighted_max = 0.0
        self.makespan = 0.0

    # ------------------------------------------------------------------
    # Ingestion.
    # ------------------------------------------------------------------
    def observe_completion(
        self, txn_id: int, tardiness: float, response: float, weight: float
    ) -> None:
        self.completed += 1
        self.tardiness.add(tardiness)
        self.response.add(response)
        self.tardiness_moments.add(tardiness)
        self.response_moments.add(response)
        weighted = tardiness * weight
        self.weighted_total += weighted
        if weighted > self.weighted_max:
            self.weighted_max = weighted
        if tardiness > 0.0:
            self.tardy += 1
            self.culprits.add(txn_id, tardiness)

    # ------------------------------------------------------------------
    # Scalars (mirror :class:`~repro.sim.results.SimulationResult`).
    # ------------------------------------------------------------------
    @property
    def average_tardiness(self) -> float:
        """Definition 4 over completed work (exact, via moments)."""
        return self.tardiness_moments.total / max(1, self.completed)

    @property
    def average_weighted_tardiness(self) -> float:
        return self.weighted_total / max(1, self.completed)

    @property
    def max_tardiness(self) -> float:
        return self.tardiness_moments.max

    @property
    def max_weighted_tardiness(self) -> float:
        return self.weighted_max

    @property
    def total_tardiness(self) -> float:
        return self.tardiness_moments.total

    @property
    def average_response_time(self) -> float:
        return self.response_moments.total / max(1, self.completed)

    @property
    def deadline_miss_ratio(self) -> float:
        return self.tardy / self.completed if self.completed else 0.0

    def merge(self, other: "RunTelemetry") -> None:
        """Fold another run's telemetry in (fixed-order merging gives
        byte-identical results; sketch parts are order-independent)."""
        self.tardiness.merge(other.tardiness)
        self.response.merge(other.response)
        self.tardiness_moments.merge(other.tardiness_moments)
        self.response_moments.merge(other.response_moments)
        self.culprits.merge(other.culprits)
        self.arrivals += other.arrivals
        self.completed += other.completed
        self.tardy += other.tardy
        self.aborted += other.aborted
        self.shed += other.shed
        self.retries += other.retries
        self.preemptions += other.preemptions
        self.weighted_total += other.weighted_total
        if other.weighted_max > self.weighted_max:
            self.weighted_max = other.weighted_max
        if other.makespan > self.makespan:
            self.makespan = other.makespan

    def as_dict(self) -> dict:
        """JSON-ready snapshot; the unit of byte-identity tests."""
        return {
            "quantile_accuracy": self.quantile_accuracy,
            "arrivals": self.arrivals,
            "completed": self.completed,
            "tardy": self.tardy,
            "aborted": self.aborted,
            "shed": self.shed,
            "retries": self.retries,
            "preemptions": self.preemptions,
            "weighted_total": self.weighted_total,
            "weighted_max": self.weighted_max,
            "makespan": self.makespan,
            "tardiness": self.tardiness.as_dict(),
            "response": self.response.as_dict(),
            "tardiness_moments": self.tardiness_moments.as_dict(),
            "response_moments": self.response_moments.as_dict(),
            "culprits": self.culprits.as_dict(),
        }

    def to_state(self) -> dict:
        """Checkpoint state: composed from the members' raw states."""
        return {
            "quantile_accuracy": self.quantile_accuracy,
            "topk_capacity": self.culprits.capacity,
            "tardiness": self.tardiness.to_state(),
            "response": self.response.to_state(),
            "tardiness_moments": self.tardiness_moments.to_state(),
            "response_moments": self.response_moments.to_state(),
            "culprits": self.culprits.to_state(),
            "arrivals": self.arrivals,
            "completed": self.completed,
            "tardy": self.tardy,
            "aborted": self.aborted,
            "shed": self.shed,
            "retries": self.retries,
            "preemptions": self.preemptions,
            "weighted_total": self.weighted_total,
            "weighted_max": self.weighted_max,
            "makespan": self.makespan,
        }

    @classmethod
    def from_state(cls, state: Mapping) -> "RunTelemetry":
        telemetry = cls(
            float(state["quantile_accuracy"]),
            topk=int(state["topk_capacity"]),
        )
        telemetry.tardiness = QuantileSketch.from_state(state["tardiness"])
        telemetry.response = QuantileSketch.from_state(state["response"])
        telemetry.tardiness_moments = StreamingMoments.from_state(
            state["tardiness_moments"]
        )
        telemetry.response_moments = StreamingMoments.from_state(
            state["response_moments"]
        )
        telemetry.culprits = TopK.from_state(state["culprits"])
        telemetry.arrivals = int(state["arrivals"])
        telemetry.completed = int(state["completed"])
        telemetry.tardy = int(state["tardy"])
        telemetry.aborted = int(state["aborted"])
        telemetry.shed = int(state["shed"])
        telemetry.retries = int(state["retries"])
        telemetry.preemptions = int(state["preemptions"])
        telemetry.weighted_total = float(state["weighted_total"])
        telemetry.weighted_max = float(state["weighted_max"])
        telemetry.makespan = float(state["makespan"])
        return telemetry

    def __repr__(self) -> str:
        return (
            f"RunTelemetry(completed={self.completed}, tardy={self.tardy}, "
            f"p99_tardiness={self.tardiness.quantile(0.99):g})"
        )


class StreamingRecorder(Instrument):
    """Constant-memory instrument: sketches + windows + optional sink.

    The streaming counterpart of :class:`~repro.obs.recorder.Recorder`:
    it retains **no per-transaction or per-event state**.  Completions
    feed the run's :class:`RunTelemetry`; scheduling points feed the
    optional :class:`WindowAggregator`; and when a ``sink`` is given
    every event record is written through it immediately (optionally
    sampled), instead of being buffered in memory.

    Parameters
    ----------
    quantile_accuracy:
        Relative error ``α`` of the quantile sketches (default 0.01).
    window:
        Tumbling-window width in simulated time units; ``None`` (the
        default) disables the windowed time-series.
    sink:
        Optional event sink — a :class:`~repro.obs.jsonl.JsonlWriter` or
        :class:`~repro.obs.jsonl.RotatingJsonlWriter` — receiving every
        (sampled) event record as it happens.  The caller owns closing.
    sample:
        Per-transaction event sampling rate in ``(0, 1]`` applied to the
        sink (head/tail-biased: see
        :class:`~repro.obs.jsonl.EventSampler`).  Telemetry is always
        exact — sampling only thins the persisted log.
    topk:
        Capacity of the tardiness-culprit summary.
    """

    def __init__(
        self,
        quantile_accuracy: float = 0.01,
        window: float | None = None,
        sink: "EventSink | None" = None,
        sample: float = 1.0,
        topk: int = 16,
    ) -> None:
        self.telemetry = RunTelemetry(quantile_accuracy, topk=topk)
        self._window_width = window
        self._windows: WindowAggregator | None = None
        self._sink = sink
        self._sampler = None
        if sample != 1.0 or sink is not None:
            from repro.obs.jsonl import EventSampler

            self._sampler = EventSampler(sample) if sample != 1.0 else None
        self._policy = "?"
        self._n = 0
        self._servers = 1
        self._started = False
        self._finished = False
        self._end_time = 0.0
        self._sched_points = 0
        self._select_total = 0.0
        self._select_max = 0.0
        self._dispatches = 0
        self._overhead_paid = 0.0
        self._max_ready = 0
        self._ready_sum = 0
        self._crashes = 0
        self._stalls = 0
        if sink is None and window is None:
            # Pure-aggregate mode (the metric_spread / parallel-telemetry
            # path): the hot callbacks never branch on a sink or window,
            # so bind lean variants that skip those checks entirely and
            # keep the streaming overhead within the perf-gate budget.
            self.on_arrival = self._on_arrival_lean  # type: ignore[method-assign]
            self.on_dispatch = self._on_dispatch_lean  # type: ignore[method-assign]
            self.on_completion = self._on_completion_lean  # type: ignore[method-assign]
            self.on_scheduling_point = self._on_scheduling_point_lean  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    # Plumbing.
    # ------------------------------------------------------------------
    def _on_arrival_lean(self, txn: "Transaction", now: float) -> None:
        self.telemetry.arrivals += 1

    def _on_dispatch_lean(
        self, txn: "Transaction", now: float, overhead: float
    ) -> None:
        self._dispatches += 1

    def _on_completion_lean(self, txn: "Transaction", now: float) -> None:
        tardiness = now - txn.deadline
        if tardiness < 0.0:
            tardiness = 0.0
        self.telemetry.observe_completion(
            txn.txn_id, tardiness, now - txn.arrival, txn.weight
        )

    def _on_scheduling_point_lean(
        self, now: float, ready: int, running: int, select_seconds: float
    ) -> None:
        self._sched_points += 1
        self._select_total += select_seconds
        if select_seconds > self._select_max:
            self._select_max = select_seconds
        self._ready_sum += ready
        if ready > self._max_ready:
            self._max_ready = ready
    def _emit(self, record: dict) -> None:
        if self._sink is None:
            return
        if self._sampler is not None:
            filtered = self._sampler.filter(record)
            if filtered is None:
                return
            record = filtered
        self._sink.write(record)

    def _tick(self, now: float) -> None:
        if self._windows is not None:
            for snapshot in self._windows.advance(now):
                # Window snapshots bypass sampling: they are the
                # aggregate record sampling must never thin.
                if self._sink is not None:
                    self._sink.write(snapshot)

    # ------------------------------------------------------------------
    # Instrument callbacks.
    # ------------------------------------------------------------------
    def on_run_start(
        self, policy_name: str, n_transactions: int, servers: int
    ) -> None:
        if self._started:
            raise ObservabilityError(
                "a StreamingRecorder observes exactly one run; "
                "attach a fresh one"
            )
        self._started = True
        self._policy = policy_name
        self._n = n_transactions
        self._servers = servers
        if self._window_width is not None:
            self._windows = WindowAggregator(self._window_width, servers)
        if self._sink is not None:
            from repro.obs import jsonl
            from repro.obs.recorder import run_start_record

            header = run_start_record(
                jsonl.SCHEMA_VERSION, policy_name, n_transactions, servers
            )
            if self._sampler is not None:
                header["sample"] = self._sampler.rate
            if self._window_width is not None:
                header["window"] = self._window_width
            self._sink.write(header)

    def on_arrival(self, txn: "Transaction", now: float) -> None:
        self._tick(now)
        self.telemetry.arrivals += 1
        if self._windows is not None:
            self._windows.observe_arrival()
        if self._sink is not None:
            from repro.obs.recorder import arrival_record

            self._emit(arrival_record(txn, now))

    def on_dispatch(self, txn: "Transaction", now: float, overhead: float) -> None:
        self._tick(now)
        self._dispatches += 1
        if self._sink is not None:
            from repro.obs.recorder import dispatch_record

            self._emit(dispatch_record(txn, now, overhead))

    def on_preempt(self, txn: "Transaction", now: float) -> None:
        self.telemetry.preemptions += 1
        if self._sink is not None:
            from repro.obs.recorder import preempt_record

            self._emit(preempt_record(txn, now))

    def on_overhead(self, txn: "Transaction", amount: float, now: float) -> None:
        self._overhead_paid += amount
        if self._sink is not None:
            from repro.obs.recorder import overhead_record

            self._emit(overhead_record(txn, amount, now))

    def on_completion(self, txn: "Transaction", now: float) -> None:
        self._tick(now)
        tardiness = now - txn.deadline
        if tardiness < 0.0:
            tardiness = 0.0
        self.telemetry.observe_completion(
            txn.txn_id, tardiness, now - txn.arrival, txn.weight
        )
        if self._windows is not None:
            self._windows.observe_completion(tardiness)
        if self._sink is not None:
            from repro.obs.recorder import completion_record

            self._emit(completion_record(txn, now, tardiness))

    def on_stall(self, txn: "Transaction", amount: float, now: float) -> None:
        self._stalls += 1
        if self._sink is not None:
            from repro.obs.recorder import stall_record

            self._emit(stall_record(txn, amount, now))

    def on_abort(
        self,
        txn: "Transaction",
        now: float,
        lost: float,
        attempt: int,
        exhausted: bool,
    ) -> None:
        self._tick(now)
        if exhausted:
            self.telemetry.aborted += 1
        if self._sink is not None:
            from repro.obs.recorder import abort_record

            self._emit(abort_record(txn, now, lost, attempt, exhausted))

    def on_retry(
        self, txn: "Transaction", now: float, attempt: int, deadline: float
    ) -> None:
        self.telemetry.retries += 1
        if self._sink is not None:
            from repro.obs.recorder import retry_record

            self._emit(retry_record(txn, now, attempt, deadline))

    def on_crash(self, now: float, down: int) -> None:
        self._crashes += 1
        if self._sink is not None:
            from repro.obs.recorder import crash_record

            self._emit(crash_record(now, down))

    def on_recover(self, now: float, down: int) -> None:
        if self._sink is not None:
            from repro.obs.recorder import recover_record

            self._emit(recover_record(now, down))

    def on_shed(self, txn: "Transaction", now: float, reason: str) -> None:
        self._tick(now)
        self.telemetry.shed += 1
        if self._sink is not None:
            from repro.obs.recorder import shed_record

            self._emit(shed_record(txn, now, reason))

    def on_scheduling_point(
        self, now: float, ready: int, running: int, select_seconds: float
    ) -> None:
        self._tick(now)
        self._sched_points += 1
        self._select_total += select_seconds
        if select_seconds > self._select_max:
            self._select_max = select_seconds
        self._ready_sum += ready
        if ready > self._max_ready:
            self._max_ready = ready
        if self._windows is not None:
            self._windows.observe_point(now, ready, running)
        if self._sink is not None:
            from repro.obs.recorder import sched_record

            self._emit(sched_record(now, ready, running, select_seconds))

    def on_run_end(self, now: float) -> None:
        self._finished = True
        self._end_time = now
        self.telemetry.makespan = now
        if self._windows is not None and self._sink is not None:
            for snapshot in self._windows.finish(now):
                self._sink.write(snapshot)
        elif self._windows is not None:
            self._windows.finish(now)
        if self._sink is not None:
            from repro.obs.recorder import run_end_record

            self._sink.write(
                run_end_record(
                    now,
                    completed=self.telemetry.completed,
                    tardy=self.telemetry.tardy,
                    aborted=self.telemetry.aborted,
                    shed=self.telemetry.shed,
                    retries=self.telemetry.retries,
                )
            )

    # ------------------------------------------------------------------
    # Products.
    # ------------------------------------------------------------------
    def report(self) -> "RunReport":
        """Condense the run into a quantile-bearing :class:`RunReport`."""
        if not self._started:
            raise ObservabilityError(
                "streaming recorder has not observed a run yet"
            )
        from repro.obs.summary import RunReport

        t = self.telemetry
        return RunReport(
            policy=self._policy,
            n_transactions=self._n,
            servers=self._servers,
            makespan=self._end_time,
            scheduling_points=self._sched_points,
            preemptions=t.preemptions,
            arrivals=t.arrivals,
            dispatches=self._dispatches,
            completions=t.completed,
            overhead_paid=self._overhead_paid,
            total_tardiness=t.total_tardiness,
            max_ready_depth=self._max_ready,
            mean_ready_depth=(
                self._ready_sum / self._sched_points
                if self._sched_points
                else 0.0
            ),
            select_total_seconds=self._select_total,
            select_max=self._select_max,
            aborted=t.aborted,
            shed=t.shed,
            retries=t.retries,
            crashes=self._crashes,
            stalls=self._stalls,
            quantile_accuracy=t.quantile_accuracy,
            tardiness_p50=t.tardiness.quantile(0.50),
            tardiness_p90=t.tardiness.quantile(0.90),
            tardiness_p99=t.tardiness.quantile(0.99),
            response_p50=t.response.quantile(0.50),
            response_p95=t.response.quantile(0.95),
            response_p99=t.response.quantile(0.99),
            miss_ratio=t.deadline_miss_ratio,
        )

    def to_state(self) -> dict:
        """Checkpoint state: telemetry, windows, sampler and counters.

        The sink is *not* part of the state — file handles cannot ride
        in a checkpoint.  :meth:`from_state` takes the (resumed) sink
        explicitly; the :class:`~repro.obs.jsonl.EventSampler` position
        (``_sched_seen``) is captured so sampled logs continue thinning
        at exactly the same stride phase.
        """
        return {
            "telemetry": self.telemetry.to_state(),
            "window_width": self._window_width,
            "windows": (
                self._windows.to_state() if self._windows is not None else None
            ),
            "sample": self._sampler.rate if self._sampler is not None else 1.0,
            "sched_seen": (
                self._sampler._sched_seen if self._sampler is not None else 0
            ),
            "policy": self._policy,
            "n": self._n,
            "servers": self._servers,
            "started": self._started,
            "finished": self._finished,
            "end_time": self._end_time,
            "sched_points": self._sched_points,
            "select_total": self._select_total,
            "select_max": self._select_max,
            "dispatches": self._dispatches,
            "overhead_paid": self._overhead_paid,
            "max_ready": self._max_ready,
            "ready_sum": self._ready_sum,
            "crashes": self._crashes,
            "stalls": self._stalls,
        }

    @classmethod
    def from_state(
        cls, state: Mapping, sink: "EventSink | None" = None
    ) -> "StreamingRecorder":
        """Rebuild a mid-run recorder; ``sink`` is the resumed writer.

        Construction goes through ``__init__`` so the lean-callback
        rebinding (sinkless + windowless mode) is re-derived from the
        restored configuration, then every accumulator is overwritten
        with the checkpointed values.
        """
        telemetry_state = state["telemetry"]
        recorder = cls(
            quantile_accuracy=float(telemetry_state["quantile_accuracy"]),
            window=state["window_width"],
            sink=sink,
            sample=float(state["sample"]),
            topk=int(telemetry_state["topk_capacity"]),
        )
        recorder.telemetry = RunTelemetry.from_state(telemetry_state)
        if state["windows"] is not None:
            recorder._windows = WindowAggregator.from_state(state["windows"])
        if recorder._sampler is not None:
            recorder._sampler._sched_seen = int(state["sched_seen"])
        recorder._policy = str(state["policy"])
        recorder._n = int(state["n"])
        recorder._servers = int(state["servers"])
        recorder._started = bool(state["started"])
        recorder._finished = bool(state["finished"])
        recorder._end_time = float(state["end_time"])
        recorder._sched_points = int(state["sched_points"])
        recorder._select_total = float(state["select_total"])
        recorder._select_max = float(state["select_max"])
        recorder._dispatches = int(state["dispatches"])
        recorder._overhead_paid = float(state["overhead_paid"])
        recorder._max_ready = int(state["max_ready"])
        recorder._ready_sum = int(state["ready_sum"])
        recorder._crashes = int(state["crashes"])
        recorder._stalls = int(state["stalls"])
        return recorder

    def __iter__(self) -> Iterator[None]:  # pragma: no cover - guard
        raise ObservabilityError(
            "StreamingRecorder keeps no event list; attach a sink to "
            "persist events"
        )

    def __repr__(self) -> str:
        return (
            f"StreamingRecorder(policy={self._policy!r}, "
            f"completed={self.telemetry.completed}, "
            f"scheduling_points={self._sched_points})"
        )
