"""Deadline-miss forensics over schema-v1 event logs.

PR 1's :mod:`repro.obs` made the engine observable; this subpackage
makes the observations *answer questions*.  From a ``.jsonl`` event log
(or a live :class:`~repro.obs.recorder.Recorder`) it produces:

* :mod:`~repro.obs.analyze.lifecycle` — per-transaction lifecycles as
  typed spans (``queued`` / ``running`` / ``preempted`` / ``overhead``
  / ``retry_wait``) satisfying the exact conservation invariant
  ``sum(spans) == completion - arrival``, fault outcomes included;
* :mod:`~repro.obs.analyze.blame` — tardiness blame attribution whose
  components sum to the measured tardiness, with the ranked list of
  transactions a tardy one waited behind;
* :mod:`~repro.obs.analyze.critical_path` — the workflow-aware walk
  explaining dependency wait for chained transactions;
* :mod:`~repro.obs.analyze.perfetto` — Chrome trace-event / Perfetto
  JSON export (open any run in ``ui.perfetto.dev``);
* :mod:`~repro.obs.analyze.diff` — cross-run diffing of the same
  workload under two policies (who flipped on-time<->tardy, and where
  the time moved);
* :mod:`~repro.obs.analyze.reporters` — aligned-text and versioned-JSON
  reporters following the :mod:`repro.lint` conventions.

Quickstart::

    from repro.obs.analyze import (
        attribute_all, diff_runs, reconstruct_file, write_trace,
    )

    run = reconstruct_file("asets.jsonl")
    for report in attribute_all(run)[:5]:
        print(report.txn_id, dict(report.components))
    write_trace(run, "asets.perfetto.json")

or from the command line::

    python -m repro.experiments analyze asets.jsonl --trace-out t.json
    python -m repro.experiments diff asets.jsonl asets_star.jsonl
"""

from repro.obs.analyze.lifecycle import (
    RunLifecycles,
    Segment,
    Span,
    SpanKind,
    TxnLifecycle,
    reconstruct,
    reconstruct_file,
)
from repro.obs.analyze.blame import (
    BlameReport,
    Culprit,
    attribute,
    attribute_all,
)
from repro.obs.analyze.critical_path import CriticalPathStep, critical_path
from repro.obs.analyze.diff import RunDiff, TxnDelta, diff_runs
from repro.obs.analyze.perfetto import (
    to_trace,
    validate_trace,
    validate_trace_file,
    write_trace,
)
from repro.obs.analyze.reporters import (
    render_analysis_json,
    render_analysis_text,
    render_diff_json,
    render_diff_text,
)

__all__ = [
    "SpanKind",
    "Span",
    "Segment",
    "TxnLifecycle",
    "RunLifecycles",
    "reconstruct",
    "reconstruct_file",
    "BlameReport",
    "Culprit",
    "attribute",
    "attribute_all",
    "CriticalPathStep",
    "critical_path",
    "RunDiff",
    "TxnDelta",
    "diff_runs",
    "to_trace",
    "write_trace",
    "validate_trace",
    "validate_trace_file",
    "render_analysis_text",
    "render_analysis_json",
    "render_diff_text",
    "render_diff_json",
]
