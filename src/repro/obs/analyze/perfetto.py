"""Chrome trace-event / Perfetto JSON export of a reconstructed run.

Any run becomes a file that opens directly in ``ui.perfetto.dev`` (or
``chrome://tracing``):

* **one track per server** — every :class:`~.lifecycle.Segment` is a
  complete (``ph: "X"``) event named after the transaction holding the
  server, with its context-switch overhead in ``args``;
* **one async track per tardy transaction** — the transaction's typed
  lifecycle spans (``queued`` / ``overhead`` / ``running`` /
  ``preempted`` / ``retry_wait``) as async begin/end (``ph: "b"`` /
  ``"e"``) pairs keyed by the transaction id, so each tardy transaction
  reads as one lane from arrival to completion;
* **one fault track** — when the run carried server crash windows
  (:mod:`repro.faults`), each window is a complete (``ph: "X"``) event
  named ``crash`` so outage intervals line up visually with the server
  and transaction lanes.  Fault-free runs emit no such track.

Simulated time units map to trace microseconds (1 time unit = 1 us ×
:data:`TIME_SCALE`); the scale is arbitrary but uniform, so relative
positions are faithful.

:func:`validate_trace` is the structural checker CI runs against an
exported file: JSON parses, ``traceEvents`` is non-empty, every event
carries the mandatory keys, timestamps are non-negative and **monotone
per track**, and async begin/end pairs balance.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Mapping

from repro.errors import ObservabilityError
from repro.obs.analyze.lifecycle import RunLifecycles

__all__ = [
    "TIME_SCALE",
    "to_trace",
    "write_trace",
    "validate_trace",
    "validate_trace_file",
]

#: Trace microseconds per simulated time unit.
TIME_SCALE = 1_000_000.0

#: pid of the per-server track group / the tardy-transaction group /
#: the fault (crash-window) group.
_SERVERS_PID = 1
_TARDY_PID = 2
_FAULTS_PID = 3


def _meta(pid: int, tid: int, name: str, value: str) -> dict[str, Any]:
    return {
        "name": name,
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "ts": 0,
        "args": {"name": value},
    }


def to_trace(
    run: RunLifecycles, max_tardy_tracks: int | None = 50
) -> dict[str, Any]:
    """Render a run as a Chrome trace-event JSON object.

    ``max_tardy_tracks`` caps the per-transaction async tracks (worst
    tardiness first; ``None`` = no cap) — Perfetto handles thousands of
    tracks, humans do not.
    """
    events: list[dict[str, Any]] = [
        _meta(_SERVERS_PID, 0, "process_name", f"servers ({run.policy})")
    ]
    # Assign segments to server lanes greedily: a lane is free once its
    # last segment ended.  With servers=1 everything lands on lane 0.
    lane_free_at: list[float] = []
    lane_of: list[int] = []
    for seg in run.segments:
        for lane, free_at in enumerate(lane_free_at):
            if free_at <= seg.start + 1e-12:
                lane_free_at[lane] = seg.end
                lane_of.append(lane)
                break
        else:
            lane_free_at.append(seg.end)
            lane_of.append(len(lane_free_at) - 1)
    for lane in range(len(lane_free_at)):
        events.append(_meta(_SERVERS_PID, lane, "thread_name", f"server {lane}"))
    for seg, lane in zip(run.segments, lane_of):
        events.append(
            {
                "name": f"txn {seg.txn_id}",
                "cat": "exec",
                "ph": "X",
                "ts": seg.start * TIME_SCALE,
                "dur": seg.duration * TIME_SCALE,
                "pid": _SERVERS_PID,
                "tid": lane,
                "args": {"txn": seg.txn_id, "overhead": seg.overhead},
            }
        )

    tardy = run.tardy()
    if max_tardy_tracks is not None:
        tardy = tardy[:max_tardy_tracks]
    if tardy:
        events.append(
            _meta(_TARDY_PID, 0, "process_name", "tardy transactions")
        )
    for lc in tardy:
        track_id = f"0x{lc.txn_id:x}"
        for span in lc.spans:
            common = {
                "cat": "txn",
                "id": track_id,
                "pid": _TARDY_PID,
                "tid": 0,
                "name": span.kind.value,
            }
            events.append(
                {
                    **common,
                    "ph": "b",
                    "ts": span.start * TIME_SCALE,
                    "args": {"txn": lc.txn_id, "tardiness": lc.tardiness},
                }
            )
            events.append(
                {**common, "ph": "e", "ts": span.end * TIME_SCALE, "args": {}}
            )
    if run.crash_windows:
        events.append(_meta(_FAULTS_PID, 0, "process_name", "faults"))
        events.append(_meta(_FAULTS_PID, 0, "thread_name", "crash windows"))
        for start, end in run.crash_windows:
            events.append(
                {
                    "name": "crash",
                    "cat": "fault",
                    "ph": "X",
                    "ts": start * TIME_SCALE,
                    "dur": (end - start) * TIME_SCALE,
                    "pid": _FAULTS_PID,
                    "tid": 0,
                    "args": {"start": start, "end": end},
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "policy": run.policy,
            "n": run.n,
            "servers": run.servers,
            "makespan": run.makespan,
        },
    }


def write_trace(
    run: RunLifecycles,
    path: str | pathlib.Path,
    max_tardy_tracks: int | None = 50,
) -> pathlib.Path:
    """Export :func:`to_trace` output as a JSON file; returns the path."""
    path = pathlib.Path(path)
    trace = to_trace(run, max_tardy_tracks=max_tardy_tracks)
    path.write_text(json.dumps(trace, separators=(",", ":")), encoding="utf-8")
    return path


_KNOWN_PHASES = {"X", "M", "b", "e", "n", "B", "E", "i"}


def validate_trace(trace: Mapping[str, Any]) -> dict[str, int]:
    """Structurally validate a Chrome trace-event JSON object.

    Checks: non-empty ``traceEvents``; mandatory keys and numeric,
    non-negative timestamps on every event; ``ts`` monotone
    non-decreasing per ``(pid, tid)`` track for complete events; async
    ``b``/``e`` pairs balanced per ``(cat, id)``.  Returns a small
    summary dict; raises :class:`~repro.errors.ObservabilityError` on
    the first violation.
    """
    trace_events = trace.get("traceEvents")
    if not isinstance(trace_events, list) or not trace_events:
        raise ObservabilityError("trace has no traceEvents")
    last_ts: dict[tuple[int, int], float] = {}
    async_depth: dict[tuple[str, str], int] = {}
    async_last_ts: dict[tuple[str, str], float] = {}
    for index, event in enumerate(trace_events):
        if not isinstance(event, dict):
            raise ObservabilityError(f"traceEvents[{index}] is not an object")
        ph = event.get("ph")
        if ph not in _KNOWN_PHASES:
            raise ObservabilityError(
                f"traceEvents[{index}] has unknown phase {ph!r}"
            )
        for key in ("pid", "tid", "ts", "name"):
            if key not in event:
                raise ObservabilityError(
                    f"traceEvents[{index}] is missing {key!r}"
                )
        ts = event["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ObservabilityError(
                f"traceEvents[{index}] has invalid ts {ts!r}"
            )
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ObservabilityError(
                    f"traceEvents[{index}] has invalid dur {dur!r}"
                )
            track = (event["pid"], event["tid"])
            if ts < last_ts.get(track, 0.0):
                raise ObservabilityError(
                    f"traceEvents[{index}]: ts {ts} regresses on track "
                    f"pid={track[0]} tid={track[1]}"
                )
            last_ts[track] = float(ts)
        elif ph in ("b", "e"):
            key2 = (str(event.get("cat")), str(event.get("id")))
            if ts < async_last_ts.get(key2, 0.0):
                raise ObservabilityError(
                    f"traceEvents[{index}]: async ts {ts} regresses on "
                    f"track cat={key2[0]} id={key2[1]}"
                )
            async_last_ts[key2] = float(ts)
            async_depth[key2] = async_depth.get(key2, 0) + (
                1 if ph == "b" else -1
            )
            if async_depth[key2] < 0:
                raise ObservabilityError(
                    f"traceEvents[{index}]: async 'e' without matching "
                    f"'b' on cat={key2[0]} id={key2[1]}"
                )
    unbalanced = sorted(k for k, depth in async_depth.items() if depth != 0)
    if unbalanced:
        raise ObservabilityError(
            f"unbalanced async begin/end pairs on {len(unbalanced)} "
            f"track(s), first: cat={unbalanced[0][0]} id={unbalanced[0][1]}"
        )
    return {
        "events": len(trace_events),
        "tracks": len(last_ts),
        "async_tracks": len(async_depth),
    }


def validate_trace_file(path: str | pathlib.Path) -> dict[str, int]:
    """Load ``path`` as JSON and :func:`validate_trace` it."""
    path = pathlib.Path(path)
    try:
        trace = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ObservabilityError(f"{path}: invalid JSON: {exc}") from exc
    if not isinstance(trace, dict):
        raise ObservabilityError(f"{path}: trace root must be a JSON object")
    return validate_trace(trace)
