"""Per-transaction lifecycle reconstruction from schema-v1 event logs.

The engine's event log (:mod:`repro.obs.jsonl`) is a flat stream; this
module folds it back into one :class:`TxnLifecycle` per transaction — a
contiguous list of typed :class:`Span` objects covering every instant
from arrival to completion:

``queued``
    Not yet holding a server: from arrival to the first dispatch
    (including time blocked on unfinished dependencies — the blame
    layer splits that part out using :attr:`TxnLifecycle.ready_time`).
``overhead``
    Serving context-switch overhead at the start of a running segment,
    before any real work resumes.
``running``
    Actually processing on a server.
``preempted``
    Re-queued after losing a server, until the next dispatch.
``retry_wait``
    Backing off after a non-terminal fault abort, until re-submission
    (only under a :mod:`repro.faults` plan).

Reconstruction is exact by construction: each span starts where the
previous one ended, so their durations telescope to
``completion - arrival`` (the **conservation invariant**, checked by
:meth:`TxnLifecycle.conservation_error` and pinned by a property test
over randomized workloads).  The invariant extends unchanged to
fault-terminated transactions: an exhausted abort or an admission shed
simply ends the lifecycle at the terminal event (``completion`` is then
the failure time and :attr:`TxnLifecycle.outcome` records which).

The same fold also yields the run's global list of :class:`Segment`
objects — who held a server, when — which the blame layer uses to name
the transactions a tardy transaction waited behind, and the Perfetto
exporter turns into per-server tracks.

Logs written before the additive schema-1 fields (``deps`` on
``arrival``, ``response_time`` on ``completion``) reconstruct fine:
dependency wait simply folds into ``queued`` and response time is
recomputed.
"""

from __future__ import annotations

import enum
import pathlib
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.errors import ObservabilityError
from repro.obs import jsonl

__all__ = [
    "SpanKind",
    "Span",
    "Segment",
    "TxnLifecycle",
    "RunLifecycles",
    "reconstruct",
    "reconstruct_file",
]


class SpanKind(enum.Enum):
    """What a transaction was doing during one span of its lifecycle."""

    QUEUED = "queued"
    RUNNING = "running"
    PREEMPTED = "preempted"
    OVERHEAD = "overhead"
    RETRY_WAIT = "retry_wait"


@dataclass(frozen=True, slots=True)
class Span:
    """One contiguous, typed interval of a transaction's lifecycle."""

    kind: SpanKind
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True, slots=True)
class Segment:
    """One server occupation: ``txn_id`` held a server over [start, end).

    ``overhead`` is the context-switch cost actually served inside the
    segment (charged at the segment start, before real work).
    """

    txn_id: int
    start: float
    end: float
    overhead: float = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True, slots=True)
class TxnLifecycle:
    """The reconstructed lifecycle of one finished transaction.

    ``completion`` is the instant the lifecycle ended: the completion
    time for ``outcome == "completed"``, otherwise the terminal-abort or
    shed time.
    """

    txn_id: int
    arrival: float
    completion: float
    tardiness: float
    #: ``f_i - a_i``; taken from the log when present, recomputed otherwise.
    response_time: float
    #: Dependency list as logged (empty for old logs / independent txns).
    deps: tuple[int, ...]
    #: When the transaction became schedulable: its arrival, or the
    #: completion of its last dependency, whichever is later.
    ready_time: float
    #: Simulated time of the first dispatch.
    first_dispatch: float
    spans: tuple[Span, ...]
    #: How the lifecycle ended: ``completed`` / ``aborted`` / ``shed``.
    outcome: str = "completed"
    #: Fault-retry count (``retry`` events observed).
    retries: int = 0
    #: Served work discarded by abort rollbacks (rework the transaction
    #: had to repeat; 0 under checkpoint-resume work loss).
    rework: float = 0.0
    #: Extra service injected by transient stalls.
    stall_extra: float = 0.0

    def total(self, kind: SpanKind) -> float:
        """Summed duration of every span of ``kind``."""
        return sum((s.duration for s in self.spans if s.kind is kind), 0.0)

    @property
    def queued_time(self) -> float:
        return self.total(SpanKind.QUEUED)

    @property
    def running_time(self) -> float:
        """Actual service received.

        Fault-free this equals the transaction's length; under faults it
        is length + :attr:`rework` + :attr:`stall_extra` for completed
        transactions (aborted work is re-served, stalls inject work).
        """
        return self.total(SpanKind.RUNNING)

    @property
    def preempted_time(self) -> float:
        return self.total(SpanKind.PREEMPTED)

    @property
    def retry_wait_time(self) -> float:
        """Time spent backing off between an abort and its retry."""
        return self.total(SpanKind.RETRY_WAIT)

    @property
    def overhead_time(self) -> float:
        return self.total(SpanKind.OVERHEAD)

    @property
    def dependency_wait(self) -> float:
        """Part of the queued time spent blocked on unfinished deps."""
        return self.ready_time - self.arrival

    @property
    def is_tardy(self) -> bool:
        return self.tardiness > 0.0

    @property
    def deadline(self) -> float | None:
        """The soft deadline, recoverable exactly only for tardy txns."""
        if not self.is_tardy:
            return None
        return self.completion - self.tardiness

    @property
    def conservation_error(self) -> float:
        """|sum(spans) - (completion - arrival)| — ~0 by construction."""
        total = sum(s.duration for s in self.spans)
        return abs(total - (self.completion - self.arrival))


class _TxnBuilder:
    """Per-transaction state machine over its own event sub-stream."""

    __slots__ = (
        "txn_id",
        "arrival",
        "deps",
        "completion",
        "tardiness",
        "response_time",
        "segments",
        "gaps",
        "outcome",
        "retries",
        "rework",
        "stall_extra",
        "_running_since",
        "_running_overhead",
        "_waiting_since",
        "_wait_kind",
        "_dispatched_once",
    )

    def __init__(self, txn_id: int) -> None:
        self.txn_id = txn_id
        self.arrival: float | None = None
        self.deps: tuple[int, ...] = ()
        self.completion: float | None = None
        self.tardiness = 0.0
        self.response_time: float | None = None
        self.segments: list[Segment] = []
        #: Waiting intervals, chronological: (start, end, kind).
        self.gaps: list[tuple[float, float, SpanKind]] = []
        self.outcome = "completed"
        self.retries = 0
        self.rework = 0.0
        self.stall_extra = 0.0
        self._running_since: float | None = None
        self._running_overhead = 0.0
        self._waiting_since: float | None = None
        #: Overrides the kind of the currently open wait (retry backoff).
        self._wait_kind: SpanKind | None = None
        self._dispatched_once = False

    def _fail(self, message: str) -> ObservabilityError:
        return ObservabilityError(f"transaction {self.txn_id}: {message}")

    def on_arrival(self, t: float, deps: tuple[int, ...]) -> None:
        if self.arrival is not None:
            raise self._fail(f"duplicate arrival at t={t}")
        self.arrival = t
        self.deps = deps
        self._waiting_since = t

    def on_dispatch(self, t: float) -> None:
        if self.arrival is None:
            raise self._fail(f"dispatch at t={t} before arrival")
        if self._running_since is not None:
            # Continuation across a scheduling point: the engine emits a
            # fresh dispatch for a transaction that keeps its server; the
            # segment simply continues.
            return
        if self._waiting_since is None:  # pragma: no cover - defensive
            raise self._fail(f"dispatch at t={t} with no open wait")
        default = SpanKind.PREEMPTED if self._dispatched_once else SpanKind.QUEUED
        self.gaps.append((self._waiting_since, t, self._wait_kind or default))
        self._waiting_since = None
        self._wait_kind = None
        self._running_since = t
        self._running_overhead = 0.0
        self._dispatched_once = True

    def on_overhead(self, t: float, amount: float) -> None:
        if self._running_since is None:
            raise self._fail(f"overhead charged at t={t} while not running")
        self._running_overhead += amount

    def _close_segment(self, t: float) -> None:
        if self._running_since is None:
            raise self._fail(f"segment closed at t={t} while not running")
        self.segments.append(
            Segment(
                txn_id=self.txn_id,
                start=self._running_since,
                end=t,
                overhead=self._running_overhead,
            )
        )
        self._running_since = None
        self._running_overhead = 0.0

    def on_preempt(self, t: float) -> None:
        self._close_segment(t)
        self._waiting_since = t

    def on_completion(
        self, t: float, tardiness: float, response_time: float | None
    ) -> None:
        if self.completion is not None:
            raise self._fail(f"duplicate completion at t={t}")
        self._close_segment(t)
        self.completion = t
        self.tardiness = tardiness
        self.response_time = response_time

    def on_stall(self, amount: float) -> None:
        if self._running_since is None:
            raise self._fail("stall while not running")
        self.stall_extra += amount

    def on_abort(self, t: float, lost: float, exhausted: bool) -> None:
        self._close_segment(t)
        self.rework += lost
        if exhausted:
            if self.completion is not None:
                raise self._fail(f"terminal abort at t={t} after completion")
            self.completion = t
            self.outcome = "aborted"
        else:
            self._waiting_since = t
            self._wait_kind = SpanKind.RETRY_WAIT

    def on_retry(self, t: float) -> None:
        if self._waiting_since is None or self._wait_kind is not SpanKind.RETRY_WAIT:
            raise self._fail(f"retry at t={t} without a pending abort")
        self.retries += 1
        self.gaps.append((self._waiting_since, t, SpanKind.RETRY_WAIT))
        # Back in the ready pool; the time until the next dispatch is an
        # ordinary (preempted) scheduling wait, not retry backoff.
        self._waiting_since = t
        self._wait_kind = None

    def on_shed(self, t: float) -> None:
        if self.completion is not None:
            raise self._fail(f"shed at t={t} after completion")
        if self._waiting_since is None:  # pragma: no cover - defensive
            raise self._fail(f"shed at t={t} with no open wait")
        default = SpanKind.PREEMPTED if self._dispatched_once else SpanKind.QUEUED
        self.gaps.append((self._waiting_since, t, self._wait_kind or default))
        self._waiting_since = None
        self._wait_kind = None
        self.completion = t
        self.outcome = "shed"

    @property
    def is_complete(self) -> bool:
        return self.arrival is not None and self.completion is not None

    def build(self, ready_time: float) -> TxnLifecycle:
        if self.arrival is None or self.completion is None:
            raise self._fail("cannot build an incomplete lifecycle")
        spans: list[Span] = []
        # Gaps and segments strictly alternate (gap, segment, gap, ...);
        # zip them back into one chronological, contiguous span list.
        pieces: list[tuple[float, float, SpanKind, float]] = [
            (start, end, kind, 0.0) for start, end, kind in self.gaps
        ]
        pieces += [
            (seg.start, seg.end, SpanKind.RUNNING, seg.overhead)
            for seg in self.segments
        ]
        pieces.sort(key=lambda p: (p[0], p[1]))
        for start, end, kind, overhead in pieces:
            if kind is SpanKind.RUNNING:
                # Overhead is served contiguously from the segment start.
                split = start + min(overhead, end - start)
                if split > start:
                    spans.append(Span(SpanKind.OVERHEAD, start, split))
                if end > split:
                    spans.append(Span(SpanKind.RUNNING, split, end))
            elif end > start:
                spans.append(Span(kind, start, end))
        first_dispatch = (
            self.segments[0].start if self.segments else self.completion
        )
        return TxnLifecycle(
            txn_id=self.txn_id,
            arrival=self.arrival,
            completion=self.completion,
            tardiness=self.tardiness,
            response_time=(
                self.response_time
                if self.response_time is not None
                else self.completion - self.arrival
            ),
            deps=self.deps,
            ready_time=ready_time,
            first_dispatch=first_dispatch,
            spans=tuple(spans),
            outcome=self.outcome,
            retries=self.retries,
            rework=self.rework,
            stall_extra=self.stall_extra,
        )


@dataclass(frozen=True, slots=True)
class RunLifecycles:
    """Every reconstructed lifecycle of one run, plus run metadata."""

    policy: str
    #: Transaction count announced by the run header.
    n: int
    servers: int
    #: Completion time of the last transaction (run_end ``t``).
    makespan: float
    #: Finished lifecycles (any outcome), keyed by transaction id.
    lifecycles: Mapping[int, TxnLifecycle]
    #: Every server occupation of the run, sorted by (start, txn_id).
    segments: tuple[Segment, ...]
    #: Ids seen in the log that never finished (partial / truncated logs).
    incomplete: tuple[int, ...]
    #: Server crash windows from ``fault.crash``/``fault.recover`` pairs;
    #: a window still open at run end is closed at the makespan.
    crash_windows: tuple[tuple[float, float], ...] = ()
    #: Torn trailing lines dropped by the tolerant loader (0 or 1).
    truncated_lines: int = 0
    #: Record-sampling rate declared by the run header (``"sample"``);
    #: ``1.0`` for full logs.  When below 1, per-transaction counts here
    #: cover only the sampled population — scale thinned totals by
    #: ``1 / sample_rate`` to estimate run-level volumes.
    sample_rate: float = 1.0
    #: Tardy completions of transactions thinned out by sampling.  The
    #: sampler keeps every tardy completion (flagged ``"sampled": false``)
    #: so deadline-miss accounting stays *exact* on sampled logs; these
    #: counters hold the ones whose lifecycles could not be rebuilt.
    unsampled_tardy: int = 0
    unsampled_tardiness: float = 0.0
    #: Per-scheduling-point ``(ready_depth, select_seconds)`` samples from
    #: the log's ``sched`` records — the input of the "select cost by
    #: queue depth" report section (:mod:`repro.obs.profile` fits the
    #: scaling exponent).  Empty for logs recorded without sampling.
    sched_samples: tuple[tuple[int, float], ...] = ()

    def __iter__(self) -> Iterator[TxnLifecycle]:
        for txn_id in sorted(self.lifecycles):
            yield self.lifecycles[txn_id]

    def __len__(self) -> int:
        return len(self.lifecycles)

    def get(self, txn_id: int) -> TxnLifecycle:
        try:
            return self.lifecycles[txn_id]
        except KeyError:
            raise ObservabilityError(
                f"no completed lifecycle for transaction {txn_id}"
            ) from None

    def tardy(self) -> list[TxnLifecycle]:
        """Tardy lifecycles, worst first (ties broken by id)."""
        return sorted(
            (lc for lc in self if lc.is_tardy),
            key=lambda lc: (-lc.tardiness, lc.txn_id),
        )

    def outcome_counts(self) -> dict[str, int]:
        """``{"completed": ..., "aborted": ..., "shed": ...}`` totals."""
        counts = {"completed": 0, "aborted": 0, "shed": 0}
        for lc in self.lifecycles.values():
            counts[lc.outcome] = counts.get(lc.outcome, 0) + 1
        return counts

    @property
    def total_tardiness(self) -> float:
        return sum((lc.tardiness for lc in self.lifecycles.values()), 0.0)


def reconstruct(
    records: Iterable[dict], truncated_lines: int = 0
) -> RunLifecycles:
    """Fold an event-record stream into a :class:`RunLifecycles`.

    ``records`` is anything yielding schema-1 event dicts headed by a
    ``run_start`` record — :func:`repro.obs.jsonl.iter_records` output or
    a live :attr:`repro.obs.recorder.Recorder.events` list.
    ``truncated_lines`` is passed through from a tolerant load so the
    result records how much of the log was torn off.
    """
    iterator = iter(records)
    try:
        header = next(iterator)
    except StopIteration:
        raise ObservabilityError("empty event stream: no run_start header")
    if header.get("kind") != "run_start":
        raise ObservabilityError(
            "event stream must start with a 'run_start' header, got "
            f"kind={header.get('kind')!r}"
        )
    schema = header.get("schema")
    if not isinstance(schema, int) or schema > jsonl.SCHEMA_VERSION:
        raise ObservabilityError(
            f"unsupported event-log schema {schema!r}; this analyzer "
            f"supports <= {jsonl.SCHEMA_VERSION}"
        )
    builders: dict[int, _TxnBuilder] = {}
    makespan = 0.0
    open_crashes: deque[float] = deque()
    crash_windows: list[tuple[float, float]] = []
    sample_rate = float(header.get("sample", 1.0))
    unsampled_tardy = 0
    unsampled_tardiness = 0.0
    sched_samples: list[tuple[int, float]] = []

    def builder(record: dict) -> _TxnBuilder:
        txn_id = record["txn"]
        if txn_id not in builders:
            builders[txn_id] = _TxnBuilder(txn_id)
        return builders[txn_id]

    for record in iterator:
        kind = record.get("kind")
        t = float(record.get("t", 0.0))
        if record.get("sampled") is False:
            # A tardy completion of a transaction the sampler thinned
            # out: kept for exact miss accounting, but its arrival and
            # dispatch events are gone, so it must never reach a builder
            # (which would reject a completion while idle).
            if kind == "completion":
                unsampled_tardy += 1
                unsampled_tardiness += float(record.get("tardiness", 0.0))
                makespan = max(makespan, t)
            continue
        if kind == "arrival":
            builder(record).on_arrival(t, tuple(record.get("deps", ())))
        elif kind == "dispatch":
            builder(record).on_dispatch(t)
        elif kind == "preempt":
            builder(record).on_preempt(t)
        elif kind == "overhead":
            builder(record).on_overhead(t, float(record["amount"]))
        elif kind == "completion":
            response = record.get("response_time")
            builder(record).on_completion(
                t,
                float(record["tardiness"]),
                None if response is None else float(response),
            )
            makespan = max(makespan, t)
        elif kind == "fault.stall":
            builder(record).on_stall(float(record["amount"]))
        elif kind == "fault.abort":
            builder(record).on_abort(
                t, float(record["lost"]), bool(record.get("exhausted", False))
            )
            makespan = max(makespan, t)
        elif kind == "retry":
            builder(record).on_retry(t)
        elif kind == "shed":
            builder(record).on_shed(t)
            makespan = max(makespan, t)
        elif kind == "fault.crash":
            open_crashes.append(t)
        elif kind == "fault.recover":
            # Crash and recover events are totally ordered per window
            # (FIFO: the earliest unclosed crash recovers first).
            if open_crashes:
                crash_windows.append((open_crashes.popleft(), t))
        elif kind == "sched":
            sched_samples.append(
                (int(record["ready"]), float(record["select_s"]))
            )
        elif kind == "run_end":
            makespan = max(makespan, t)
        # Unknown (future additive) kinds are skipped.

    lifecycles: dict[int, TxnLifecycle] = {}
    incomplete: list[int] = []
    completions = {
        b.txn_id: b.completion
        for b in builders.values()
        if b.completion is not None
    }
    for txn_id in sorted(builders):
        b = builders[txn_id]
        if not b.is_complete:
            incomplete.append(txn_id)
            continue
        assert b.arrival is not None  # narrowed by is_complete
        gate = b.arrival
        for dep in b.deps:
            dep_completion = completions.get(dep)
            if dep_completion is not None:
                gate = max(gate, dep_completion)
        # Clamp: a corrupt log must not push readiness past the first
        # dispatch (the engine only dispatches schedulable transactions).
        first_dispatch = b.segments[0].start if b.segments else gate
        ready_time = min(max(b.arrival, gate), first_dispatch)
        lifecycles[txn_id] = b.build(ready_time)

    segments = sorted(
        (seg for b in builders.values() for seg in b.segments),
        key=lambda seg: (seg.start, seg.txn_id),
    )
    # A crash window still open at run end (truncated log, or a recovery
    # scheduled past the last completion) closes at the makespan.
    for start in open_crashes:
        crash_windows.append((start, max(start, makespan)))
    return RunLifecycles(
        policy=str(header.get("policy", "?")),
        n=int(header.get("n", len(builders))),
        servers=int(header.get("servers", 1)),
        makespan=makespan,
        lifecycles=lifecycles,
        segments=tuple(segments),
        incomplete=tuple(incomplete),
        crash_windows=tuple(sorted(crash_windows)),
        truncated_lines=truncated_lines,
        sample_rate=sample_rate,
        unsampled_tardy=unsampled_tardy,
        unsampled_tardiness=unsampled_tardiness,
        sched_samples=tuple(sched_samples),
    )


def reconstruct_file(
    path: str | pathlib.Path, strict: bool = True
) -> RunLifecycles:
    """Reconstruct lifecycles straight from a ``.jsonl`` event log.

    Loads via :func:`repro.obs.jsonl.read_tolerant`, so a log whose
    final line was torn by a crash still reconstructs (the drop is
    recorded in :attr:`RunLifecycles.truncated_lines`).
    """
    records, truncated = jsonl.read_tolerant(path, strict=strict)
    return reconstruct(records, truncated_lines=truncated)
