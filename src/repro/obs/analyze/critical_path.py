"""Workflow-aware critical-path walk for chained transactions.

A dependent transaction can be tardy through no fault of the scheduler's
treatment of *it*: its slack was already gone by the time its last
predecessor completed.  :func:`critical_path` walks that chain backwards
— from a transaction to the dependency that gated its readiness, then to
the dependency that gated *that* one, and so on — producing the path a
slack budget actually travelled along.

Each step records ``gated_for``: how long past the successor's arrival
the predecessor kept it unready (the successor's dependency wait that
this link explains).  The head of the path (the transaction under
analysis) carries ``gated_for = 0``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.analyze.lifecycle import RunLifecycles, TxnLifecycle

__all__ = ["CriticalPathStep", "critical_path"]


@dataclass(frozen=True, slots=True)
class CriticalPathStep:
    """One transaction on a dependency critical path."""

    txn_id: int
    arrival: float
    completion: float
    tardiness: float
    #: Time this transaction kept its *successor* on the path unready
    #: (``completion - successor.arrival``); 0 for the path head.
    gated_for: float


def _blocking_dep(
    run: RunLifecycles, lc: TxnLifecycle
) -> TxnLifecycle | None:
    """The latest-completing dependency (smallest id on ties), if any."""
    best: TxnLifecycle | None = None
    for dep_id in sorted(lc.deps):
        dep = run.lifecycles.get(dep_id)
        if dep is None:
            continue
        if best is None or dep.completion > best.completion:
            best = dep
    return best


def critical_path(
    run: RunLifecycles, txn_id: int
) -> tuple[CriticalPathStep, ...]:
    """Walk the gating-dependency chain back from ``txn_id``.

    The walk stops when a transaction has no dependencies, when its
    gating predecessor finished before it arrived (no delay to explain),
    or — defensively, on corrupt logs — when a cycle is detected.
    """
    lc = run.get(txn_id)
    path = [
        CriticalPathStep(
            txn_id=lc.txn_id,
            arrival=lc.arrival,
            completion=lc.completion,
            tardiness=lc.tardiness,
            gated_for=0.0,
        )
    ]
    visited = {lc.txn_id}
    current = lc
    while True:
        blocking = _blocking_dep(run, current)
        if blocking is None or blocking.txn_id in visited:
            break
        gated = blocking.completion - current.arrival
        if gated <= 0.0:
            break
        path.append(
            CriticalPathStep(
                txn_id=blocking.txn_id,
                arrival=blocking.arrival,
                completion=blocking.completion,
                tardiness=blocking.tardiness,
                gated_for=gated,
            )
        )
        visited.add(blocking.txn_id)
        current = blocking
    return tuple(path)
