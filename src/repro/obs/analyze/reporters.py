"""Forensics reporters: aligned text for terminals, versioned JSON for CI.

Mirrors the :mod:`repro.lint.reporters` conventions — a human format
with one headline per finding, and a schema-versioned (``version: 1``)
JSON document that downstream tooling can consume without scraping
text.
"""

from __future__ import annotations

import json
from typing import Any, Sequence

from repro.obs.analyze.blame import BlameReport
from repro.obs.analyze.diff import RunDiff, TxnDelta
from repro.obs.analyze.lifecycle import RunLifecycles
from repro.obs.profile import (
    depth_bucket_range,
    depth_rows_from_samples,
    fit_depth_exponent,
)

__all__ = [
    "JSON_SCHEMA_VERSION",
    "render_analysis_text",
    "render_analysis_json",
    "render_diff_text",
    "render_diff_json",
]

#: Bump when either JSON report layout changes shape.
JSON_SCHEMA_VERSION = 1


def _fmt(value: float) -> str:
    return f"{value:.3f}"


def _blame_dict(report: BlameReport) -> dict[str, Any]:
    return {
        "txn": report.txn_id,
        "tardiness": report.tardiness,
        "deadline": report.deadline,
        "components": dict(report.components),
        "residual": report.residual,
        "culprits": [
            {"txn": c.txn_id, "seconds": c.seconds} for c in report.culprits
        ],
        "critical_path": [
            {
                "txn": step.txn_id,
                "arrival": step.arrival,
                "completion": step.completion,
                "tardiness": step.tardiness,
                "gated_for": step.gated_for,
            }
            for step in report.critical_path
        ],
    }


def _blame_lines(report: BlameReport, culprit_limit: int = 3) -> list[str]:
    parts = " | ".join(
        f"{name} {_fmt(amount)}" for name, amount in report.components
    )
    lines = [
        f"txn {report.txn_id}: tardiness {_fmt(report.tardiness)} "
        f"(deadline {_fmt(report.deadline)})",
        f"  {parts}",
    ]
    if report.culprits:
        shown = report.culprits[:culprit_limit]
        rendered = ", ".join(
            ("idle" if c.txn_id is None else f"txn {c.txn_id}")
            + f" ({_fmt(c.seconds)})"
            for c in shown
        )
        more = len(report.culprits) - len(shown)
        suffix = f" +{more} more" if more > 0 else ""
        lines.append(f"  waited behind: {rendered}{suffix}")
    if len(report.critical_path) > 1:
        chain = " <- ".join(
            f"txn {step.txn_id}"
            + (f" (gated {_fmt(step.gated_for)})" if step.gated_for else "")
            for step in report.critical_path
        )
        lines.append(f"  critical path: {chain}")
    return lines


def _depth_fit(
    run: RunLifecycles,
) -> tuple[list[tuple[int, int, float, float]], float | None]:
    """Depth-bucketed select-cost rows + fitted exponent from ``sched``
    samples (both empty/None when the log carries none)."""
    if not run.sched_samples:
        return [], None
    rows = depth_rows_from_samples(run.sched_samples)
    exponent = fit_depth_exponent(
        (mean_depth, mean_cost, count)
        for _, count, mean_depth, mean_cost in rows
    )
    return rows, exponent


def _depth_lines(run: RunLifecycles) -> list[str]:
    rows, exponent = _depth_fit(run)
    if not rows:
        return []
    fit = f" (~depth^{exponent:.2f})" if exponent is not None else ""
    lines = [f"select cost by ready-queue depth{fit}:"]
    for bucket, count, mean_depth, mean_cost in rows:
        low, high = depth_bucket_range(bucket)
        label = f"{low}" if low == high else f"{low}-{high}"
        lines.append(
            f"  depth {label:>9}: n={count:<7} "
            f"mean={mean_cost * 1e6:.2f}us (mean depth {mean_depth:.1f})"
        )
    return lines


def _depth_dict(run: RunLifecycles) -> dict[str, Any] | None:
    rows, exponent = _depth_fit(run)
    if not rows:
        return None
    return {
        "exponent": exponent,
        "buckets": [
            {
                "depth_range": list(depth_bucket_range(bucket)),
                "count": count,
                "mean_depth": mean_depth,
                "mean_cost_s": mean_cost,
            }
            for bucket, count, mean_depth, mean_cost in rows
        ],
    }


def render_analysis_text(
    run: RunLifecycles, blames: Sequence[BlameReport], top: int = 5
) -> str:
    """Human-readable forensics report for one run."""
    tardy = len(run.tardy())
    lines = [
        f"Deadline forensics — {run.policy}: "
        f"n={len(run)} servers={run.servers} makespan={_fmt(run.makespan)}",
        f"tardy {tardy}/{len(run)}, "
        f"total tardiness {_fmt(run.total_tardiness)}",
    ]
    if run.sample_rate < 1.0:
        est = round(len(run) / run.sample_rate)
        lines.append(
            f"sampled log (rate {run.sample_rate:g}): lifecycles cover "
            f"{len(run)} of ~{est} transactions; tardy counts are exact"
        )
        if run.unsampled_tardy:
            lines.append(
                f"unsampled tardy completions: {run.unsampled_tardy} "
                f"(+{_fmt(run.unsampled_tardiness)} tardiness, "
                f"exact, lifecycles unavailable)"
            )
    if run.incomplete:
        lines.append(f"incomplete transactions in log: {len(run.incomplete)}")
    counts = run.outcome_counts()
    if counts["aborted"] or counts["shed"]:
        lines.append(
            f"outcomes: completed {counts['completed']}, "
            f"aborted {counts['aborted']}, shed {counts['shed']}"
        )
    if run.crash_windows:
        total_down = sum(end - start for start, end in run.crash_windows)
        lines.append(
            f"server crash windows: {len(run.crash_windows)} "
            f"(down {_fmt(total_down)} time units)"
        )
    if run.truncated_lines:
        lines.append(
            f"log truncated: dropped {run.truncated_lines} torn trailing "
            f"line(s)"
        )
    lines += _depth_lines(run)
    shown = list(blames[:top])
    if shown:
        lines.append(f"worst {len(shown)} tardy transaction(s):")
        for report in shown:
            lines += _blame_lines(report)
    else:
        lines.append("no tardy transactions — nothing to attribute")
    return "\n".join(lines)


def render_analysis_json(
    run: RunLifecycles, blames: Sequence[BlameReport]
) -> str:
    """Machine-readable forensics report (schema-versioned)."""
    counts = run.outcome_counts()
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "policy": run.policy,
        "n": len(run),
        "servers": run.servers,
        "makespan": run.makespan,
        "tardy": len(run.tardy()),
        "total_tardiness": run.total_tardiness,
        "incomplete": list(run.incomplete),
        "aborted": counts["aborted"],
        "shed": counts["shed"],
        "crash_windows": [list(w) for w in run.crash_windows],
        "truncated_lines": run.truncated_lines,
        "sample_rate": run.sample_rate,
        "unsampled_tardy": run.unsampled_tardy,
        "unsampled_tardiness": run.unsampled_tardiness,
        "select_by_depth": _depth_dict(run),
        "transactions": [_blame_dict(b) for b in blames],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _delta_lines(delta: TxnDelta) -> list[str]:
    labels = {
        "a_only_tardy": "tardy under A only (B fixed it)",
        "b_only_tardy": "tardy under B only (B broke it)",
        "both_tardy": "tardy under both",
    }
    moved = ", ".join(
        f"{key} {delta.delta(key):+.3f}"
        for key in (
            "dependency_wait",
            "wait_behind",
            "preemption_gap",
            "retry_wait",
            "rework",
            "overhead",
        )
        if abs(delta.delta(key)) > 5e-4
    )
    lines = [
        f"txn {delta.txn_id}: {labels[delta.flip]}, "
        f"tardiness {_fmt(delta.a['tardiness'])} -> "
        f"{_fmt(delta.b['tardiness'])} ({delta.tardiness_delta:+.3f})"
    ]
    if moved:
        lines.append(f"  time moved: {moved}")
    return lines


def render_diff_text(diff: RunDiff, top: int = 5) -> str:
    """Human-readable cross-run diff."""
    lines = [
        f"Run diff — A={diff.policy_a} vs B={diff.policy_b} (n={diff.n})",
        f"total tardiness: {_fmt(diff.total_tardiness_a)} -> "
        f"{_fmt(diff.total_tardiness_b)} ({diff.total_tardiness_delta:+.3f})",
        f"tardy: {len(diff.tardy_a)} -> {len(diff.tardy_b)} "
        f"(fixed by B: {len(diff.fixed_by_b)}, "
        f"broken by B: {len(diff.broken_by_b)}, "
        f"tardy in both: {len(diff.tardy_in_both)})",
    ]
    flipped = diff.flipped()
    if flipped:
        shown = flipped[:top]
        lines.append(f"top {len(shown)} flipped transaction(s):")
        for delta in shown:
            lines += _delta_lines(delta)
    else:
        lines.append("no transactions flipped on-time<->tardy")
    return "\n".join(lines)


def render_diff_json(diff: RunDiff) -> str:
    """Machine-readable cross-run diff (schema-versioned)."""
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "policy_a": diff.policy_a,
        "policy_b": diff.policy_b,
        "n": diff.n,
        "total_tardiness_a": diff.total_tardiness_a,
        "total_tardiness_b": diff.total_tardiness_b,
        "tardy_a": list(diff.tardy_a),
        "tardy_b": list(diff.tardy_b),
        "fixed_by_b": list(diff.fixed_by_b),
        "broken_by_b": list(diff.broken_by_b),
        "tardy_in_both": list(diff.tardy_in_both),
        "deltas": [
            {
                "txn": d.txn_id,
                "flip": d.flip,
                "a": dict(d.a),
                "b": dict(d.b),
                "tardiness_delta": d.tardiness_delta,
            }
            for d in diff.deltas
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
