"""Cross-run diffing: same workload, two policies, where did time move?

Given two reconstructed runs of the *same* workload (same seed, so the
same transaction ids, arrivals and service demands), the diff answers
the question the paper's aggregate figures cannot: **which** transactions
flipped between on-time and tardy under the other policy, and which
lifecycle component (queue wait, preemption churn, overhead, dependency
gating) absorbed or released the time.

The workloads must match: differing transaction id sets or arrival
times raise :class:`~repro.errors.ObservabilityError` rather than
produce a nonsense diff.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import ObservabilityError
from repro.obs.analyze.lifecycle import RunLifecycles, TxnLifecycle

__all__ = ["TxnDelta", "RunDiff", "diff_runs"]

#: Arrival times of a replayed workload are bit-identical; this slop
#: only forgives JSON round-trip noise.
_ARRIVAL_TOLERANCE = 1e-9


def _breakdown(lc: TxnLifecycle) -> dict[str, float]:
    return {
        "tardiness": lc.tardiness,
        "dependency_wait": lc.dependency_wait,
        "wait_behind": lc.queued_time - lc.dependency_wait,
        "preemption_gap": lc.preempted_time,
        "retry_wait": lc.retry_wait_time,
        "rework": lc.rework,
        "overhead": lc.overhead_time,
        "response_time": lc.response_time,
        "completion": lc.completion,
    }


@dataclass(frozen=True, slots=True)
class TxnDelta:
    """One transaction's lifecycle under run A vs run B."""

    txn_id: int
    #: ``"a_only_tardy"`` | ``"b_only_tardy"`` | ``"both_tardy"``.
    flip: str
    a: Mapping[str, float]
    b: Mapping[str, float]

    @property
    def tardiness_delta(self) -> float:
        """B minus A; positive = worse under B."""
        return self.b["tardiness"] - self.a["tardiness"]

    def delta(self, key: str) -> float:
        return self.b[key] - self.a[key]


@dataclass(frozen=True, slots=True)
class RunDiff:
    """The full A-vs-B comparison of one workload under two policies."""

    policy_a: str
    policy_b: str
    n: int
    total_tardiness_a: float
    total_tardiness_b: float
    tardy_a: tuple[int, ...]
    tardy_b: tuple[int, ...]
    #: Tardy under A, on time under B (B fixed them).
    fixed_by_b: tuple[int, ...]
    #: On time under A, tardy under B (B broke them).
    broken_by_b: tuple[int, ...]
    #: Tardy under both policies.
    tardy_in_both: tuple[int, ...]
    #: Per-transaction breakdowns for every flipped or still-tardy
    #: transaction, largest absolute tardiness swing first.
    deltas: tuple[TxnDelta, ...]

    @property
    def total_tardiness_delta(self) -> float:
        return self.total_tardiness_b - self.total_tardiness_a

    def flipped(self) -> tuple[TxnDelta, ...]:
        """Only the transactions that changed on-time/tardy status."""
        return tuple(d for d in self.deltas if d.flip != "both_tardy")


def diff_runs(a: RunLifecycles, b: RunLifecycles) -> RunDiff:
    """Diff two reconstructed runs of the same workload."""
    ids_a, ids_b = set(a.lifecycles), set(b.lifecycles)
    if ids_a != ids_b:
        only_a = sorted(ids_a - ids_b)[:5]
        only_b = sorted(ids_b - ids_a)[:5]
        raise ObservabilityError(
            "cannot diff runs over different transaction sets "
            f"(only in A: {only_a}..., only in B: {only_b}...)"
        )
    for txn_id in sorted(ids_a):
        arr_a = a.lifecycles[txn_id].arrival
        arr_b = b.lifecycles[txn_id].arrival
        if abs(arr_a - arr_b) > _ARRIVAL_TOLERANCE:
            raise ObservabilityError(
                f"transaction {txn_id} arrives at {arr_a} in A but "
                f"{arr_b} in B; the logs are not the same workload"
            )
    tardy_a = tuple(sorted(t.txn_id for t in a.tardy()))
    tardy_b = tuple(sorted(t.txn_id for t in b.tardy()))
    set_a, set_b = set(tardy_a), set(tardy_b)
    fixed = tuple(sorted(set_a - set_b))
    broken = tuple(sorted(set_b - set_a))
    both = tuple(sorted(set_a & set_b))
    deltas = []
    for txn_id in (*fixed, *broken, *both):
        if txn_id in set_a and txn_id in set_b:
            flip = "both_tardy"
        elif txn_id in set_a:
            flip = "a_only_tardy"
        else:
            flip = "b_only_tardy"
        deltas.append(
            TxnDelta(
                txn_id=txn_id,
                flip=flip,
                a=_breakdown(a.lifecycles[txn_id]),
                b=_breakdown(b.lifecycles[txn_id]),
            )
        )
    deltas.sort(key=lambda d: (-abs(d.tardiness_delta), d.txn_id))
    return RunDiff(
        policy_a=a.policy,
        policy_b=b.policy,
        n=len(a.lifecycles),
        total_tardiness_a=a.total_tardiness,
        total_tardiness_b=b.total_tardiness,
        tardy_a=tardy_a,
        tardy_b=tardy_b,
        fixed_by_b=fixed,
        broken_by_b=broken,
        tardy_in_both=both,
        deltas=tuple(deltas),
    )
