"""Tardiness blame attribution: where a tardy transaction's slack went.

For a completed transaction, its timeline decomposes exactly::

    completion = arrival + dependency_wait + wait_behind
               + preemption_gap + retry_wait + overhead + service

so its tardiness ``T = completion - deadline`` satisfies the identity ::

    T = dependency_wait + wait_behind + preemption_gap + retry_wait
      + rework + stall + overhead
      + (arrival + first_attempt_service - deadline)

Under a :mod:`repro.faults` plan the service received splits into the
transaction's intrinsic length plus the ``rework`` re-served after abort
rollbacks plus the ``stall`` work injected by transient stalls;
``retry_wait`` is the backoff time between an abort and its
re-submission.  All three are identically zero fault-free, collapsing
the identity to its classic form.

The last term is the (negated) slack the transaction was born with —
reported as the ``slack_credit`` component, normally negative: the slack
absorbed that much of the total wait before tardiness accrued.  (It is
positive only for a transaction whose deadline was infeasible from the
start.)  The components therefore **sum to the measured tardiness
exactly** (to float rounding); a round-trip test enforces the 1e-9
budget on 1000-transaction instrumented runs.

Beyond the component sums, :class:`BlameReport` names names: the ranked
list of transactions that held a server while this one was ready
(:attr:`~BlameReport.culprits`), and the workflow critical path that
explains its dependency wait (:mod:`repro.obs.analyze.critical_path`).

On a single server the culprit times plus any server-idle time add up to
the waiting time exactly (server occupations are disjoint); with
``servers > 1`` the overlaps are reported per server and can exceed the
wall-clock gap.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.errors import ObservabilityError
from repro.obs.analyze.critical_path import CriticalPathStep, critical_path
from repro.obs.analyze.lifecycle import RunLifecycles, SpanKind, TxnLifecycle

__all__ = ["COMPONENTS", "Culprit", "BlameReport", "attribute", "attribute_all"]

#: Component keys, in reporting order.
COMPONENTS = (
    "dependency_wait",
    "wait_behind",
    "preemption_gap",
    "retry_wait",
    "rework",
    "stall",
    "overhead",
    "slack_credit",
)


@dataclass(frozen=True, slots=True)
class Culprit:
    """One transaction (or server idleness) a tardy txn waited behind.

    ``txn_id`` is ``None`` for time the transaction was ready while no
    server ran anything — possible only under a non-work-conserving
    policy or in a partial log.
    """

    txn_id: int | None
    seconds: float


@dataclass(frozen=True, slots=True)
class BlameReport:
    """Exact decomposition of one tardy transaction's tardiness."""

    txn_id: int
    tardiness: float
    deadline: float
    #: (component name, simulated-time amount), in :data:`COMPONENTS`
    #: order; ``slack_credit`` is normally negative.
    components: tuple[tuple[str, float], ...]
    #: Who held the server while this transaction was ready, ranked by
    #: time (largest first).
    culprits: tuple[Culprit, ...]
    #: Gating-dependency chain; length 1 for independent transactions.
    critical_path: tuple[CriticalPathStep, ...]

    @property
    def attributed(self) -> float:
        """Sum of all components — equals :attr:`tardiness` to rounding."""
        return sum(amount for _, amount in self.components)

    @property
    def residual(self) -> float:
        """Float-rounding residue of the conservation identity."""
        return self.tardiness - self.attributed

    def component(self, name: str) -> float:
        for key, amount in self.components:
            if key == name:
                return amount
        raise KeyError(f"unknown blame component {name!r}")


def _waiting_intervals(lc: TxnLifecycle) -> list[tuple[float, float]]:
    """Intervals where ``lc`` was ready but not holding a server.

    ``retry_wait`` spans are deliberately excluded: a transaction
    backing off after an abort is *not* schedulable, so nobody can be
    blamed for the server time it missed.
    """
    intervals: list[tuple[float, float]] = []
    for span in lc.spans:
        if span.kind is SpanKind.QUEUED:
            start = max(span.start, lc.ready_time)
            if span.end > start:
                intervals.append((start, span.end))
        elif span.kind is SpanKind.PREEMPTED:
            if span.end > span.start:
                intervals.append((span.start, span.end))
    return intervals


def _culprits(run: RunLifecycles, lc: TxnLifecycle) -> tuple[Culprit, ...]:
    """Per-transaction overlap of others' server time with lc's waits."""
    starts = [seg.start for seg in run.segments]
    held: dict[int, float] = {}
    idle = 0.0
    for start, end in _waiting_intervals(lc):
        hi = bisect.bisect_left(starts, end)
        covered: list[tuple[float, float]] = []
        for seg in run.segments[:hi]:
            if seg.end <= start or seg.txn_id == lc.txn_id:
                continue
            lo_clip = max(start, seg.start)
            hi_clip = min(end, seg.end)
            if hi_clip > lo_clip:
                held[seg.txn_id] = held.get(seg.txn_id, 0.0) + (
                    hi_clip - lo_clip
                )
                covered.append((lo_clip, hi_clip))
        # Union of coverage -> how much of the wait some server was busy.
        covered.sort()
        busy = 0.0
        cursor = start
        for lo_clip, hi_clip in covered:
            if hi_clip > cursor:
                busy += hi_clip - max(cursor, lo_clip)
                cursor = max(cursor, hi_clip)
        idle += max(0.0, (end - start) - busy)
    ranked = sorted(held.items(), key=lambda item: (-item[1], item[0]))
    culprits = [Culprit(txn_id, seconds) for txn_id, seconds in ranked]
    if idle > 1e-12:
        culprits.append(Culprit(None, idle))
    return tuple(culprits)


def attribute(run: RunLifecycles, txn_id: int) -> BlameReport:
    """Blame report for one tardy transaction.

    Raises :class:`~repro.errors.ObservabilityError` for a transaction
    that met its deadline — its deadline is not recoverable from the log
    and there is no tardiness to attribute.
    """
    lc = run.get(txn_id)
    deadline = lc.deadline
    if deadline is None:
        raise ObservabilityError(
            f"transaction {txn_id} met its deadline; nothing to attribute"
        )
    dependency_wait = lc.dependency_wait
    wait_behind = lc.queued_time - dependency_wait
    # The slack credit is measured against the *first-attempt* service:
    # rework and stall inflation are billed as their own components.
    first_attempt = lc.running_time - lc.rework - lc.stall_extra
    components = (
        ("dependency_wait", dependency_wait),
        ("wait_behind", wait_behind),
        ("preemption_gap", lc.preempted_time),
        ("retry_wait", lc.retry_wait_time),
        ("rework", lc.rework),
        ("stall", lc.stall_extra),
        ("overhead", lc.overhead_time),
        ("slack_credit", (lc.arrival + first_attempt) - deadline),
    )
    return BlameReport(
        txn_id=txn_id,
        tardiness=lc.tardiness,
        deadline=deadline,
        components=components,
        culprits=_culprits(run, lc),
        critical_path=critical_path(run, txn_id),
    )


def attribute_all(run: RunLifecycles) -> list[BlameReport]:
    """Blame reports for every tardy transaction, worst first."""
    return [attribute(run, lc.txn_id) for lc in run.tardy()]
