"""The standard full-fidelity instrument.

:class:`Recorder` subscribes to every engine hook and maintains, in one
object, the three observability products of this package:

* a :class:`~repro.obs.metrics.MetricsRegistry` of counters and
  histograms (preemption counts, queue-depth samples, ``select()``
  latency, overhead paid);
* a structured event list, one dict per engine event, in the
  schema-versioned JSONL format of :mod:`repro.obs.jsonl`
  (disable with ``keep_events=False`` for long runs);
* a :class:`~repro.obs.timeline.Timeline` of ready-queue depth, busy
  servers and running tardiness sampled at every scheduling point.

After the run, :meth:`report` condenses everything into a
:class:`~repro.obs.summary.RunReport` and :meth:`write_events` exports
the event log::

    recorder = Recorder()
    result = Simulator(txns, policy, instrument=recorder).run()
    print(recorder.report().render())
    recorder.write_events("run.jsonl")

A recorder observes exactly one run; attach a fresh one per run.
"""

from __future__ import annotations

import pathlib
from typing import TYPE_CHECKING

from repro.errors import ObservabilityError
from repro.obs import jsonl
from repro.obs.hooks import Instrument
from repro.obs.metrics import LATENCY_BUCKETS, MetricsRegistry
from repro.obs.summary import RunReport
from repro.obs.timeline import Timeline

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.transaction import Transaction

__all__ = [
    "Recorder",
    "abort_record",
    "arrival_record",
    "completion_record",
    "crash_record",
    "dispatch_record",
    "overhead_record",
    "preempt_record",
    "recover_record",
    "retry_record",
    "run_end_record",
    "run_start_record",
    "sched_record",
    "shed_record",
    "stall_record",
]


# ----------------------------------------------------------------------
# Event-record builders.
#
# These define the one canonical dict shape per event kind (the schema
# table in :mod:`repro.obs.jsonl`).  Both :class:`Recorder` and the
# constant-memory :class:`~repro.obs.streaming.StreamingRecorder` build
# their records here, so a streamed log is byte-identical to a buffered
# one and :mod:`repro.obs.analyze` reads either.
# ----------------------------------------------------------------------
def run_start_record(
    schema: int, policy: str, n: int, servers: int
) -> dict:
    return {
        "schema": schema,
        "kind": "run_start",
        "t": 0.0,
        "policy": policy,
        "n": n,
        "servers": servers,
    }


def arrival_record(txn: "Transaction", now: float) -> dict:
    record = {"kind": "arrival", "t": now, "txn": txn.txn_id}
    if txn.depends_on:
        record["deps"] = list(txn.depends_on)
    return record


def dispatch_record(txn: "Transaction", now: float, overhead: float) -> dict:
    return {
        "kind": "dispatch",
        "t": now,
        "txn": txn.txn_id,
        "overhead": overhead,
    }


def preempt_record(txn: "Transaction", now: float) -> dict:
    return {"kind": "preempt", "t": now, "txn": txn.txn_id}


def overhead_record(txn: "Transaction", amount: float, now: float) -> dict:
    return {"kind": "overhead", "t": now, "txn": txn.txn_id, "amount": amount}


def completion_record(txn: "Transaction", now: float, tardiness: float) -> dict:
    return {
        "kind": "completion",
        "t": now,
        "txn": txn.txn_id,
        "tardiness": tardiness,
        "response_time": now - txn.arrival,
    }


def stall_record(txn: "Transaction", amount: float, now: float) -> dict:
    return {"kind": "fault.stall", "t": now, "txn": txn.txn_id, "amount": amount}


def abort_record(
    txn: "Transaction", now: float, lost: float, attempt: int, exhausted: bool
) -> dict:
    record = {
        "kind": "fault.abort",
        "t": now,
        "txn": txn.txn_id,
        "lost": lost,
        "attempt": attempt,
    }
    if exhausted:
        record["exhausted"] = True
    return record


def retry_record(
    txn: "Transaction", now: float, attempt: int, deadline: float
) -> dict:
    return {
        "kind": "retry",
        "t": now,
        "txn": txn.txn_id,
        "attempt": attempt,
        "deadline": deadline,
    }


def crash_record(now: float, down: int) -> dict:
    return {"kind": "fault.crash", "t": now, "down": down}


def recover_record(now: float, down: int) -> dict:
    return {"kind": "fault.recover", "t": now, "down": down}


def shed_record(txn: "Transaction", now: float, reason: str) -> dict:
    return {"kind": "shed", "t": now, "txn": txn.txn_id, "reason": reason}


def sched_record(
    now: float, ready: int, running: int, select_seconds: float
) -> dict:
    return {
        "kind": "sched",
        "t": now,
        "ready": ready,
        "running": running,
        "select_s": select_seconds,
    }


def run_end_record(
    now: float,
    completed: int,
    tardy: int,
    aborted: int = 0,
    shed: int = 0,
    retries: int = 0,
) -> dict:
    record = {
        "kind": "run_end",
        "t": now,
        "completed": completed,
        "tardy": tardy,
        "makespan": now,
    }
    # Additive schema-1 keys, present only when nonzero so a fault-free
    # log stays byte-identical to the pre-fault format.
    if aborted:
        record["aborted"] = aborted
    if shed:
        record["shed"] = shed
    if retries:
        record["retries"] = retries
    return record


class Recorder(Instrument):
    """Collect metrics, events and a timeline from one simulation run.

    Parameters
    ----------
    keep_events:
        When True (default) every engine event is kept as a dict for
        JSONL export.  Disable on very long runs to keep only metrics
        and the timeline.
    """

    def __init__(self, keep_events: bool = True) -> None:
        self.registry = MetricsRegistry()
        self.timeline = Timeline()
        self.events: list[dict] = []
        self._keep_events = keep_events
        self._select_samples: list[float] = []
        self._arrivals = self.registry.counter("arrivals")
        self._dispatches = self.registry.counter("dispatches")
        self._preemptions = self.registry.counter("preemptions")
        self._completions = self.registry.counter("completions")
        self._sched_points = self.registry.counter("scheduling_points")
        self._overhead = self.registry.counter("overhead_paid")
        self._aborts = self.registry.counter("aborts")
        self._retries = self.registry.counter("retries")
        self._sheds = self.registry.counter("sheds")
        self._crashes = self.registry.counter("crashes")
        self._stalls = self.registry.counter("stalls")
        self._queue_depth = self.registry.histogram("queue_depth")
        self._select_hist = self.registry.histogram(
            "select_seconds", bounds=LATENCY_BUCKETS
        )
        self._aborted_exhausted = 0
        self._policy = "?"
        self._n = 0
        self._servers = 1
        self._tardy = 0
        self._total_tardiness = 0.0
        self._end_time = 0.0
        self._started = False
        self._finished = False

    # ------------------------------------------------------------------
    # Instrument callbacks.
    # ------------------------------------------------------------------
    def on_run_start(
        self, policy_name: str, n_transactions: int, servers: int
    ) -> None:
        if self._started:
            raise ObservabilityError(
                "a Recorder observes exactly one run; attach a fresh one"
            )
        self._started = True
        self._policy = policy_name
        self._n = n_transactions
        self._servers = servers
        if self._keep_events:
            self.events.append(
                run_start_record(
                    jsonl.SCHEMA_VERSION, policy_name, n_transactions, servers
                )
            )

    def on_arrival(self, txn: "Transaction", now: float) -> None:
        self._arrivals.inc()
        if self._keep_events:
            self.events.append(arrival_record(txn, now))

    def on_dispatch(self, txn: "Transaction", now: float, overhead: float) -> None:
        self._dispatches.inc()
        if self._keep_events:
            self.events.append(dispatch_record(txn, now, overhead))

    def on_preempt(self, txn: "Transaction", now: float) -> None:
        self._preemptions.inc()
        if self._keep_events:
            self.events.append(preempt_record(txn, now))

    def on_overhead(self, txn: "Transaction", amount: float, now: float) -> None:
        self._overhead.inc(amount)
        if self._keep_events:
            self.events.append(overhead_record(txn, amount, now))

    def on_completion(self, txn: "Transaction", now: float) -> None:
        self._completions.inc()
        tardiness = max(0.0, now - txn.deadline)
        self._total_tardiness += tardiness
        if tardiness > 0.0:
            self._tardy += 1
        if self._keep_events:
            self.events.append(completion_record(txn, now, tardiness))

    # ------------------------------------------------------------------
    # Fault-injection callbacks (schema-1 additive event kinds; a
    # fault-free run emits none of them, keeping its log byte-identical).
    # ------------------------------------------------------------------
    def on_stall(self, txn: "Transaction", amount: float, now: float) -> None:
        self._stalls.inc()
        if self._keep_events:
            self.events.append(stall_record(txn, amount, now))

    def on_abort(
        self,
        txn: "Transaction",
        now: float,
        lost: float,
        attempt: int,
        exhausted: bool,
    ) -> None:
        self._aborts.inc()
        if exhausted:
            self._aborted_exhausted += 1
        if self._keep_events:
            self.events.append(abort_record(txn, now, lost, attempt, exhausted))

    def on_retry(
        self, txn: "Transaction", now: float, attempt: int, deadline: float
    ) -> None:
        self._retries.inc()
        if self._keep_events:
            self.events.append(retry_record(txn, now, attempt, deadline))

    def on_crash(self, now: float, down: int) -> None:
        self._crashes.inc()
        if self._keep_events:
            self.events.append(crash_record(now, down))

    def on_recover(self, now: float, down: int) -> None:
        if self._keep_events:
            self.events.append(recover_record(now, down))

    def on_shed(self, txn: "Transaction", now: float, reason: str) -> None:
        self._sheds.inc()
        if self._keep_events:
            self.events.append(shed_record(txn, now, reason))

    def on_scheduling_point(
        self, now: float, ready: int, running: int, select_seconds: float
    ) -> None:
        self._sched_points.inc()
        self._queue_depth.observe(ready)
        self._select_hist.observe(select_seconds)
        self._select_samples.append(select_seconds)
        self.timeline.append(now, ready, running, self._total_tardiness)
        if self._keep_events:
            self.events.append(
                sched_record(now, ready, running, select_seconds)
            )

    def on_run_end(self, now: float) -> None:
        self._finished = True
        self._end_time = now
        if self._keep_events:
            self.events.append(
                run_end_record(
                    now,
                    completed=int(self._completions.value),
                    tardy=self._tardy,
                    aborted=self._aborted_exhausted,
                    shed=int(self._sheds.value),
                    retries=int(self._retries.value),
                )
            )

    # ------------------------------------------------------------------
    # Products.
    # ------------------------------------------------------------------
    @property
    def select_samples(self) -> list[float]:
        """Per-scheduling-point ``select()`` wall-times, in seconds."""
        return list(self._select_samples)

    def report(self) -> RunReport:
        """Condense the observed run into a :class:`RunReport`."""
        if not self._started:
            raise ObservabilityError("recorder has not observed a run yet")
        p50, p90, p99, pmax = RunReport.select_percentiles(self._select_samples)
        return RunReport(
            policy=self._policy,
            n_transactions=self._n,
            servers=self._servers,
            makespan=self._end_time,
            scheduling_points=int(self._sched_points.value),
            preemptions=int(self._preemptions.value),
            arrivals=int(self._arrivals.value),
            dispatches=int(self._dispatches.value),
            completions=int(self._completions.value),
            overhead_paid=self._overhead.value,
            total_tardiness=self._total_tardiness,
            max_ready_depth=self.timeline.max_ready_depth,
            mean_ready_depth=self.timeline.mean_ready_depth,
            select_total_seconds=sum(self._select_samples),
            select_p50=p50,
            select_p90=p90,
            select_p99=p99,
            select_max=pmax,
            aborted=self._aborted_exhausted,
            shed=int(self._sheds.value),
            retries=int(self._retries.value),
            crashes=int(self._crashes.value),
            stalls=int(self._stalls.value),
        )

    def write_events(self, path: str | pathlib.Path) -> pathlib.Path:
        """Export the event log as schema-versioned JSONL."""
        if not self._keep_events:
            raise ObservabilityError(
                "recorder was created with keep_events=False; no event log"
            )
        if not self.events:
            raise ObservabilityError("no events recorded; run a simulation first")
        return jsonl.write(self.events, path)

    def __repr__(self) -> str:
        return (
            f"Recorder(policy={self._policy!r}, events={len(self.events)}, "
            f"scheduling_points={int(self._sched_points.value)})"
        )
