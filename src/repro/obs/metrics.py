"""A lightweight metrics registry: counters, gauges, fixed-bucket histograms.

No third-party dependencies — the shapes mirror the Prometheus client's
core types, scaled down to what a simulation run needs:

* :class:`Counter` — a monotonically increasing total (events, time paid);
* :class:`Gauge` — a value that moves both ways (queue depth), tracking
  its min/max along the way;
* :class:`Histogram` — fixed upper-bound buckets with a cumulative-count
  quantile estimate, for queue-length samples and ``select()`` latency.

:class:`MetricsRegistry` is a typed name → metric map; asking for an
existing name returns the existing metric, asking for a name registered
as a different type raises :class:`~repro.errors.ObservabilityError`.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Sequence

from repro.errors import ObservabilityError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing counter (ints or floats)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value!r})"


class Gauge:
    """A value that moves both ways; remembers its extremes."""

    __slots__ = ("name", "value", "min", "max", "_seen")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0
        self.min: float = 0
        self.max: float = 0
        self._seen = False

    def set(self, value: float) -> None:
        self.value = value
        if self._seen:
            self.min = min(self.min, value)
            self.max = max(self.max, value)
        else:
            self.min = self.max = value
            self._seen = True

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value!r})"


#: Default bucket bounds, tuned for queue depths and event counts.
DEFAULT_BUCKETS: tuple[float, ...] = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512)

#: Default bounds for ``select()`` wall-time in seconds (1 µs ... 0.1 s).
LATENCY_BUCKETS: tuple[float, ...] = (
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 1e-2, 1e-1
)


class Histogram:
    """Fixed-bucket histogram with cumulative counts.

    ``bounds`` are inclusive upper bounds of the finite buckets; one
    implicit overflow bucket catches everything above the last bound.

    Examples
    --------
    >>> h = Histogram("depth", bounds=(1, 2, 4))
    >>> for v in (0, 1, 1, 3, 9):
    ...     h.observe(v)
    >>> h.count, h.total
    (5, 14)
    >>> h.bucket_counts
    [3, 0, 1, 1]
    >>> h.quantile(0.5)
    1
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "max", "min")

    def __init__(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        bounds = tuple(bounds)
        if not bounds:
            raise ObservabilityError(f"histogram {name!r} needs >= 1 bucket bound")
        if list(bounds) != sorted(set(bounds)):
            raise ObservabilityError(
                f"histogram {name!r} bounds must be strictly increasing: {bounds}"
            )
        self.name = name
        self.bounds = bounds
        self.bucket_counts: list[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.total: float = 0.0
        self.max: float = 0.0
        self.min: float = 0.0

    def observe(self, value: float) -> None:
        if self.count == 0:
            self.max = self.min = value
        else:
            if value > self.max:
                self.max = value
            if value < self.min:
                self.min = value
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile: the smallest bucket upper bound
        whose cumulative count covers fraction ``q`` of observations.

        Returns the histogram maximum for the overflow bucket (the true
        max is tracked exactly), and 0.0 on an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile q must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        threshold = q * self.count
        cumulative = 0
        for bound, n in zip(self.bounds, self.bucket_counts):
            cumulative += n
            if cumulative >= threshold:
                return bound
        return self.max

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count}, mean={self.mean:g})"


class MetricsRegistry:
    """Typed name → metric map with get-or-create semantics."""

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, kind: type, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise ObservabilityError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(name, Histogram, lambda: Histogram(name, bounds))

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def as_dict(self) -> dict[str, dict]:
        """A JSON-ready snapshot of every metric."""
        out: dict[str, dict] = {}
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                out[name] = {"type": "counter", "value": metric.value}
            elif isinstance(metric, Gauge):
                out[name] = {
                    "type": "gauge",
                    "value": metric.value,
                    "min": metric.min,
                    "max": metric.max,
                }
            else:
                out[name] = {
                    "type": "histogram",
                    "count": metric.count,
                    "total": metric.total,
                    "mean": metric.mean,
                    "max": metric.max,
                    "bounds": list(metric.bounds),
                    "bucket_counts": list(metric.bucket_counts),
                }
        return out
