"""Observability for the simulation engine.

The paper's evaluation reads out end-state aggregates; this subpackage
opens the black box.  It provides:

* :mod:`repro.obs.hooks` — the :class:`Instrument` callback protocol the
  engine drives (``Simulator(..., instrument=...)``), with a no-op
  :class:`NullInstrument` and a fan-out :class:`MultiInstrument`;
* :mod:`repro.obs.metrics` — a dependency-free registry of counters,
  gauges and fixed-bucket histograms;
* :mod:`repro.obs.jsonl` — a schema-versioned JSON-lines event-log
  writer/reader, so any run can be exported and analyzed offline;
* :mod:`repro.obs.timeline` — ready-queue depth, busy servers and
  running tardiness sampled at every scheduling point;
* :mod:`repro.obs.summary` — the per-run :class:`RunReport`;
* :mod:`repro.obs.recorder` — :class:`Recorder`, the standard instrument
  combining all of the above;
* :mod:`repro.obs.streaming` — constant-memory telemetry: mergeable
  quantile sketches, streaming moments, top-k culprits, tumbling-window
  time-series and the :class:`StreamingRecorder` instrument that keeps a
  10\\ :sup:`6`-transaction run in bounded memory;
* :mod:`repro.obs.progress` — wall-clock :class:`Heartbeat` /
  :class:`SweepHeartbeat` progress lines (outside the deterministic
  boundary; armed by the CLI's ``--progress``);
* :mod:`repro.obs.profile` — the hot-path profiler
  (``Simulator(..., profiler=PhaseProfiler())``): engine phase timers,
  policy :class:`Probe` spans, cost-vs-depth scaling fits and
  collapsed-stack/speedscope flamegraph exports (docs/profiling.md);
* :mod:`repro.obs.analyze` — deadline-miss forensics over recorded
  event logs: lifecycle spans, tardiness blame attribution, Perfetto
  trace export and cross-run diffing (imported explicitly via
  ``from repro.obs import analyze`` — it is an offline analysis layer,
  not part of the recording hot path).

Quickstart::

    from repro.obs import Recorder
    recorder = Recorder()
    result = Simulator(txns, policy, instrument=recorder).run()
    print(recorder.report().render())
    recorder.write_events("run.jsonl")

With ``instrument=None`` (the default) the engine's hot path pays a
single ``is not None`` check per call site — enforced by an overhead
guard test.
"""

from repro.obs.hooks import Instrument, MultiInstrument, NullInstrument
from repro.obs.jsonl import (
    SCHEMA_VERSION,
    EventSampler,
    JsonlWriter,
    RotatingJsonlWriter,
    iter_records,
    read,
    read_tolerant,
    write,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import (
    PhaseProfiler,
    PhaseStat,
    Probe,
    ProfileSnapshot,
    validate_speedscope,
)
from repro.obs.progress import Heartbeat, SweepHeartbeat
from repro.obs.recorder import Recorder
from repro.obs.streaming import (
    QuantileSketch,
    RunTelemetry,
    StreamingMoments,
    StreamingRecorder,
    TopK,
    WindowAggregator,
)
from repro.obs.summary import RunReport
from repro.obs.timeline import Timeline, TimelineSample

__all__ = [
    "Instrument",
    "NullInstrument",
    "MultiInstrument",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SCHEMA_VERSION",
    "JsonlWriter",
    "RotatingJsonlWriter",
    "EventSampler",
    "write",
    "read",
    "read_tolerant",
    "iter_records",
    "Timeline",
    "TimelineSample",
    "RunReport",
    "Recorder",
    "StreamingRecorder",
    "RunTelemetry",
    "QuantileSketch",
    "StreamingMoments",
    "TopK",
    "WindowAggregator",
    "Heartbeat",
    "SweepHeartbeat",
    "PhaseProfiler",
    "PhaseStat",
    "Probe",
    "ProfileSnapshot",
    "validate_speedscope",
]
