"""Per-run reports: what the engine actually did, beyond tardiness.

A :class:`RunReport` condenses one instrumented run into the quantities
a scheduler engineer asks about first — how often the engine made a
decision, how much preemption churn the policy caused, how much
context-switch overhead was paid, and how long ``policy.select()`` took
(wall-clock percentiles).  It renders both as a plain dict (for JSON /
tabulation) and as aligned text (for terminals and CI logs).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.metrics.distributions import percentile

__all__ = ["RunReport"]


def _fmt_seconds(seconds: float) -> str:
    """Human scale for sub-second latencies."""
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    return f"{seconds * 1e6:.1f} us"


@dataclass(frozen=True, slots=True)
class RunReport:
    """Summary of one instrumented simulation run.

    Build one with :meth:`repro.obs.recorder.Recorder.report`; every
    field is also reachable individually for assertions and dashboards.
    """

    policy: str
    n_transactions: int
    servers: int
    makespan: float
    #: Scheduling points the engine executed (arrival/completion/tick batches).
    scheduling_points: int
    #: Transactions that lost their server to another transaction.
    preemptions: int
    arrivals: int
    dispatches: int
    completions: int
    #: Context-switch overhead actually served, in simulated time units.
    overhead_paid: float
    #: Cumulative tardiness over all completed transactions.
    total_tardiness: float
    #: Peak ready-queue depth observed at a scheduling point.
    max_ready_depth: int
    #: Sample-mean ready-queue depth over scheduling points.
    mean_ready_depth: float
    #: Wall-clock seconds spent in ``policy.select`` over the whole run.
    select_total_seconds: float
    #: ``select()`` wall-time percentiles (seconds per scheduling point).
    select_p50: float = 0.0
    select_p90: float = 0.0
    select_p99: float = 0.0
    select_max: float = 0.0
    #: Fault-injection outcomes (:mod:`repro.faults`); all zero — and
    #: absent from the rendered report — in a fault-free run.
    aborted: int = 0
    shed: int = 0
    retries: int = 0
    crashes: int = 0
    stalls: int = 0
    #: Streaming-telemetry quantiles (:mod:`repro.obs.streaming`).
    #: ``quantile_accuracy`` is the sketch's relative-error bound α and
    #: doubles as the presence flag: ``None`` (exact / non-streaming
    #: runs) leaves these fields out of the rendered report.  Each
    #: estimate is within ``α × true value`` of the exact quantile.
    quantile_accuracy: float | None = None
    tardiness_p50: float = 0.0
    tardiness_p90: float = 0.0
    tardiness_p99: float = 0.0
    response_p50: float = 0.0
    response_p95: float = 0.0
    response_p99: float = 0.0
    miss_ratio: float = 0.0
    extras: dict = field(default_factory=dict)

    @staticmethod
    def select_percentiles(
        samples: list[float],
    ) -> tuple[float, float, float, float]:
        """(p50, p90, p99, max) of per-point ``select()`` wall-times."""
        if not samples:
            return (0.0, 0.0, 0.0, 0.0)
        return (
            percentile(samples, 50),
            percentile(samples, 90),
            percentile(samples, 99),
            max(samples),
        )

    @property
    def preemptions_per_transaction(self) -> float:
        if self.n_transactions == 0:
            return 0.0
        return self.preemptions / self.n_transactions

    def as_dict(self) -> dict:
        """A JSON-ready dict of every field."""
        return asdict(self)

    def render(self) -> str:
        """Aligned text, suitable for terminals and CI logs."""
        rows: list[tuple[str, str]] = [
            ("policy", self.policy),
            ("transactions", str(self.n_transactions)),
            ("servers", str(self.servers)),
            ("makespan", f"{self.makespan:g}"),
            ("scheduling points", str(self.scheduling_points)),
            ("preemptions", f"{self.preemptions} "
                            f"({self.preemptions_per_transaction:.2f}/txn)"),
            ("arrivals", str(self.arrivals)),
            ("dispatches", str(self.dispatches)),
            ("completions", str(self.completions)),
            ("overhead paid", f"{self.overhead_paid:g}"),
            ("total tardiness", f"{self.total_tardiness:g}"),
            ("ready depth max/mean", f"{self.max_ready_depth} / "
                                     f"{self.mean_ready_depth:.1f}"),
            ("select total", _fmt_seconds(self.select_total_seconds)),
            ("select p50/p90/p99/max",
             " / ".join(_fmt_seconds(v) for v in (
                 self.select_p50, self.select_p90,
                 self.select_p99, self.select_max))),
        ]
        if self.quantile_accuracy is not None:
            rows.append((
                "tardiness p50/p90/p99",
                f"{self.tardiness_p50:g} / {self.tardiness_p90:g} / "
                f"{self.tardiness_p99:g} (±{self.quantile_accuracy:.0%} rel)",
            ))
            rows.append((
                "response p50/p95/p99",
                f"{self.response_p50:g} / {self.response_p95:g} / "
                f"{self.response_p99:g}",
            ))
            rows.append(("deadline miss ratio", f"{self.miss_ratio:.4f}"))
        if self.aborted or self.shed or self.retries or self.crashes or self.stalls:
            rows.append((
                "faults",
                f"aborted={self.aborted} shed={self.shed} "
                f"retries={self.retries} crashes={self.crashes} "
                f"stalls={self.stalls}",
            ))
        for key, value in sorted(self.extras.items()):
            rows.append((key, str(value)))
        width = max(len(label) for label, _ in rows)
        lines = [f"Run report — {self.policy}"]
        lines += [f"  {label:<{width}}  {value}" for label, value in rows]
        return "\n".join(lines)
