"""Engine instrumentation hooks.

The simulator accepts an optional *instrument* — an object implementing
the :class:`Instrument` callback protocol — and notifies it of every
interesting engine event: arrivals, dispatches, preemptions, completions
and scheduling points.  The design goals, in order:

1. **Zero cost when off.**  With ``instrument=None`` (the default) the
   engine's hot path pays a single ``is not None`` check per call site —
   no attribute lookups, no method calls, no ``perf_counter`` reads.
   A guard test (``tests/obs/test_overhead_guard.py``) enforces this.
2. **Small surface.**  Hooks receive the live
   :class:`~repro.core.transaction.Transaction` objects, not copies;
   instruments must treat them as read-only and must not retain them
   past the callback (the engine mutates them freely).
3. **Composability.**  :class:`MultiInstrument` fans every callback out
   to several instruments, so a metrics collector and an event logger
   can observe the same run without knowing about each other.

:class:`Instrument` is a concrete base class whose callbacks are all
no-ops; subclasses override only the events they care about.
:class:`NullInstrument` is an explicit do-nothing instrument, useful
when an API requires *some* instrument, and as the reference point for
the overhead guard.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.transaction import Transaction

__all__ = ["Instrument", "NullInstrument", "MultiInstrument"]


class Instrument:
    """Base instrumentation protocol: every callback is a no-op.

    Callback order within one simulated instant: event handlers first
    (``on_arrival`` / ``on_completion`` in event order), then
    ``on_dispatch`` / ``on_preempt`` for the scheduling decision, and
    finally one ``on_scheduling_point`` closing the instant.
    """

    def on_run_start(
        self, policy_name: str, n_transactions: int, servers: int
    ) -> None:
        """The run is about to execute its first event."""

    def on_arrival(self, txn: "Transaction", now: float) -> None:
        """``txn`` was submitted (it may still wait on dependencies)."""

    def on_dispatch(self, txn: "Transaction", now: float, overhead: float) -> None:
        """``txn`` was handed a server; ``overhead`` is the context-switch
        cost it still has to serve before real work resumes."""

    def on_preempt(self, txn: "Transaction", now: float) -> None:
        """``txn`` lost its server to another transaction."""

    def on_overhead(self, txn: "Transaction", amount: float, now: float) -> None:
        """``txn`` actually paid ``amount`` time units of context-switch
        overhead (reported when charged, not when assigned)."""

    def on_completion(self, txn: "Transaction", now: float) -> None:
        """``txn`` finished all its work."""

    # ------------------------------------------------------------------
    # Fault-injection hooks (:mod:`repro.faults`); never called without
    # a fault plan.
    # ------------------------------------------------------------------
    def on_stall(self, txn: "Transaction", amount: float, now: float) -> None:
        """A transient stall inflated ``txn``'s true remaining work by
        ``amount`` time units (the scheduler's belief is untouched)."""

    def on_abort(
        self,
        txn: "Transaction",
        now: float,
        lost: float,
        attempt: int,
        exhausted: bool,
    ) -> None:
        """Attempt ``attempt`` (0-based) of ``txn`` was aborted.

        ``lost`` is the served work discarded by the rollback (0 under
        checkpoint-resume work loss).  ``exhausted`` marks the terminal
        abort: the retry budget is spent and ``txn`` will never run
        again."""

    def on_retry(
        self, txn: "Transaction", now: float, attempt: int, deadline: float
    ) -> None:
        """``txn`` was re-submitted as attempt ``attempt`` (1-based)
        with the backoff-extended ``deadline``."""

    def on_crash(self, now: float, down: int) -> None:
        """A server crash window opened; ``down`` servers are now down."""

    def on_recover(self, now: float, down: int) -> None:
        """A crash window closed; ``down`` servers remain down."""

    def on_shed(self, txn: "Transaction", now: float, reason: str) -> None:
        """Admission control rejected ready ``txn`` (overload);
        ``reason`` names the shed policy that picked it."""

    def on_scheduling_point(
        self, now: float, ready: int, running: int, select_seconds: float
    ) -> None:
        """The engine finished one scheduling point.

        Parameters
        ----------
        now:
            Simulated time of the scheduling point.
        ready:
            Transactions ready but *not* dispatched (the backlog).
        running:
            Servers busy after the dispatch decisions.
        select_seconds:
            Wall-clock seconds spent inside ``policy.select`` at this
            point (measured with ``perf_counter``; 0.0 only if the
            policy was never consulted).
        """

    def on_run_end(self, now: float) -> None:
        """The last transaction completed at simulated time ``now``."""


class NullInstrument(Instrument):
    """An instrument that ignores everything (explicit no-op)."""

    __slots__ = ()


class MultiInstrument(Instrument):
    """Fan every callback out to several instruments, in order.

    Examples
    --------
    >>> from repro.obs.hooks import MultiInstrument, NullInstrument
    >>> multi = MultiInstrument([NullInstrument(), NullInstrument()])
    >>> len(multi.instruments)
    2
    """

    __slots__ = ("instruments",)

    def __init__(self, instruments: Iterable[Instrument]) -> None:
        self.instruments: Sequence[Instrument] = tuple(instruments)

    def on_run_start(
        self, policy_name: str, n_transactions: int, servers: int
    ) -> None:
        for ins in self.instruments:
            ins.on_run_start(policy_name, n_transactions, servers)

    def on_arrival(self, txn: "Transaction", now: float) -> None:
        for ins in self.instruments:
            ins.on_arrival(txn, now)

    def on_dispatch(self, txn: "Transaction", now: float, overhead: float) -> None:
        for ins in self.instruments:
            ins.on_dispatch(txn, now, overhead)

    def on_preempt(self, txn: "Transaction", now: float) -> None:
        for ins in self.instruments:
            ins.on_preempt(txn, now)

    def on_overhead(self, txn: "Transaction", amount: float, now: float) -> None:
        for ins in self.instruments:
            ins.on_overhead(txn, amount, now)

    def on_completion(self, txn: "Transaction", now: float) -> None:
        for ins in self.instruments:
            ins.on_completion(txn, now)

    def on_stall(self, txn: "Transaction", amount: float, now: float) -> None:
        for ins in self.instruments:
            ins.on_stall(txn, amount, now)

    def on_abort(
        self,
        txn: "Transaction",
        now: float,
        lost: float,
        attempt: int,
        exhausted: bool,
    ) -> None:
        for ins in self.instruments:
            ins.on_abort(txn, now, lost, attempt, exhausted)

    def on_retry(
        self, txn: "Transaction", now: float, attempt: int, deadline: float
    ) -> None:
        for ins in self.instruments:
            ins.on_retry(txn, now, attempt, deadline)

    def on_crash(self, now: float, down: int) -> None:
        for ins in self.instruments:
            ins.on_crash(now, down)

    def on_recover(self, now: float, down: int) -> None:
        for ins in self.instruments:
            ins.on_recover(now, down)

    def on_shed(self, txn: "Transaction", now: float, reason: str) -> None:
        for ins in self.instruments:
            ins.on_shed(txn, now, reason)

    def on_scheduling_point(
        self, now: float, ready: int, running: int, select_seconds: float
    ) -> None:
        for ins in self.instruments:
            ins.on_scheduling_point(now, ready, running, select_seconds)

    def on_run_end(self, now: float) -> None:
        for ins in self.instruments:
            ins.on_run_end(now)
