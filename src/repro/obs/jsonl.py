"""Structured JSON-lines event logs: write, read, validate.

One simulation run serialises to one ``.jsonl`` file — one JSON object
per line, schema-versioned so readers can reject logs they do not
understand.  The format is deliberately boring: it round-trips through
``json`` exactly, greps cleanly, and loads into any dataframe library.

Schema (version 1)
------------------
The first record is the run header::

    {"schema": 1, "kind": "run_start", "t": 0.0,
     "policy": "asets", "n": 1000, "servers": 1}

Every subsequent record carries ``kind`` and ``t`` (simulated time):

============= ==========================================================
``kind``       extra fields
============= ==========================================================
arrival        ``txn`` [+ ``deps``]
dispatch       ``txn``, ``overhead``
preempt        ``txn``
overhead       ``txn``, ``amount``
completion     ``txn``, ``tardiness`` [+ ``response_time``]
sched          ``ready``, ``running``, ``select_s``
fault.stall    ``txn``, ``amount``
fault.abort    ``txn``, ``lost``, ``attempt`` [+ ``exhausted``]
retry          ``txn``, ``attempt``, ``deadline``
fault.crash    ``down``
fault.recover  ``down``
shed           ``txn``, ``reason``
run_end        [+ ``completed``, ``tardy``, ``makespan``,
               ``aborted``, ``shed``, ``retries``]
============= ==========================================================

Fields in brackets are *additive* schema-1 extensions (still schema 1):
``deps`` is the transaction's dependency list (omitted when empty),
``response_time`` is ``f_i - a_i``, and the ``run_end`` trailer carries
the run totals.  The fault kinds (``fault.*``, ``retry``, ``shed``) are
likewise additive: only runs under a :mod:`repro.faults` plan emit them,
and the ``run_end`` outcome counters appear only when nonzero — a
fault-free log is byte-identical to the pre-fault format.  Logs written
before these fields existed remain valid; readers — including
:mod:`repro.obs.analyze` — must tolerate their absence.

Two additive schema-1 extensions support constant-memory streaming
(:mod:`repro.obs.streaming`):

* ``window.snapshot`` records — one per closed tumbling window, carrying
  ``window``, ``start``, ``end``, ``arrivals``, ``completions``,
  ``tardy``, ``miss_rate``, ``throughput``, ``tardiness``,
  ``utilization``, ``queue_max``, ``queue_mean`` [+ ``partial``];
* sampled logs — the header gains ``"sample": r`` (the per-transaction
  keep rate) and completions of *unsampled* tardy transactions are still
  written, marked ``"sampled": false``, so tardy counts and tardiness
  totals stay exact under sampling (:class:`EventSampler`).

Reading is strict by default: a missing/alien header or an unparseable
line raises :class:`~repro.errors.ObservabilityError`.  Pass
``strict=False`` to read partial logs (e.g. from an aborted run), or use
:func:`read_tolerant` to accept a log whose *final* line was cut short
by a crash (the writer flushes per event, so at most one trailing line
can ever be torn).

Rotation
--------
:class:`RotatingJsonlWriter` splits one logical log over size-bounded
parts — ``events-0001.jsonl``, ``events-0002.jsonl``, ... — described by
a manifest (``events.manifest.json``)::

    {"schema": 1, "kind": "manifest", "base": "events.jsonl",
     "parts": ["events-0001.jsonl", ...], "records": 12345,
     "max_bytes": 1048576}

The manifest is rewritten at every rotation and at close, so after a
crash it lists every part that exists (the final part may end in a torn
line, exactly like the single-file case).  :func:`read_tolerant` accepts
the base path, the manifest path, or a plain single-file log, and
iterates the whole set transparently.
"""

from __future__ import annotations

import json
import os
import pathlib
import warnings
from dataclasses import dataclass, field
from typing import IO, Iterable, Iterator, Mapping, Protocol

from repro.errors import CheckpointError, ObservabilityError

__all__ = [
    "SCHEMA_VERSION",
    "KEEP_ALWAYS_KINDS",
    "EVENT_SCHEMAS",
    "EventSchema",
    "EventSink",
    "EventSampler",
    "JsonlWriter",
    "RotatingJsonlWriter",
    "write",
    "read",
    "read_tolerant",
    "iter_records",
]

#: Current event-log schema version; bumped on incompatible changes.
SCHEMA_VERSION = 1

#: Event kinds an :class:`EventSampler` must never drop: run framing,
#: aggregate window snapshots, and whole-system fault transitions.
KEEP_ALWAYS_KINDS = frozenset(
    {"run_start", "run_end", "window.snapshot", "fault.crash", "fault.recover"}
)


@dataclass(frozen=True)
class EventSchema:
    """The declared field contract of one event kind.

    ``required`` fields appear in every record of the kind; ``optional``
    fields are the *additive* schema-1 extensions (present only under
    the conditions documented in the module header).  A field in
    neither set is undeclared — emitting it is a schema drift.
    """

    required: frozenset[str]
    optional: frozenset[str] = field(default_factory=frozenset)

    @property
    def all_fields(self) -> frozenset[str]:
        return self.required | self.optional


#: The declarative schema-1 registry: one entry per event kind, kept in
#: sync with the record builders in :mod:`repro.obs.recorder` and the
#: window snapshots of :mod:`repro.obs.streaming`.  The lint rule RL012
#: parses this literal statically and cross-checks every emit site and
#: every :mod:`repro.obs.analyze` consumer against it, so edit the
#: builders and this table together.  Evolution is additive-only: a
#: required field can never be removed or demoted within schema 1.
#:
#: ``sampled`` is universal (the :class:`EventSampler` may stamp it on
#: any kept record) and is therefore not repeated per kind.
EVENT_SCHEMAS: dict[str, EventSchema] = {
    "run_start": EventSchema(
        required=frozenset({"schema", "kind", "t", "policy", "n", "servers"}),
        optional=frozenset({"sample"}),
    ),
    "arrival": EventSchema(
        required=frozenset({"kind", "t", "txn"}),
        optional=frozenset({"deps"}),
    ),
    "dispatch": EventSchema(
        required=frozenset({"kind", "t", "txn", "overhead"}),
    ),
    "preempt": EventSchema(
        required=frozenset({"kind", "t", "txn"}),
    ),
    "overhead": EventSchema(
        required=frozenset({"kind", "t", "txn", "amount"}),
    ),
    "completion": EventSchema(
        required=frozenset({"kind", "t", "txn", "tardiness"}),
        optional=frozenset({"response_time"}),
    ),
    "sched": EventSchema(
        required=frozenset({"kind", "t", "ready", "running", "select_s"}),
    ),
    "fault.stall": EventSchema(
        required=frozenset({"kind", "t", "txn", "amount"}),
    ),
    "fault.abort": EventSchema(
        required=frozenset({"kind", "t", "txn", "lost", "attempt"}),
        optional=frozenset({"exhausted"}),
    ),
    "retry": EventSchema(
        required=frozenset({"kind", "t", "txn", "attempt", "deadline"}),
    ),
    "fault.crash": EventSchema(
        required=frozenset({"kind", "t", "down"}),
    ),
    "fault.recover": EventSchema(
        required=frozenset({"kind", "t", "down"}),
    ),
    "shed": EventSchema(
        required=frozenset({"kind", "t", "txn", "reason"}),
    ),
    "run_end": EventSchema(
        required=frozenset({"kind", "t", "completed", "tardy", "makespan"}),
        optional=frozenset({"aborted", "shed", "retries"}),
    ),
    "window.snapshot": EventSchema(
        required=frozenset(
            {
                "kind",
                "t",
                "window",
                "start",
                "end",
                "arrivals",
                "completions",
                "tardy",
                "miss_rate",
                "throughput",
                "tardiness",
                "utilization",
                "queue_max",
                "queue_mean",
            }
        ),
        optional=frozenset({"partial"}),
    ),
    "manifest": EventSchema(
        required=frozenset(
            {"schema", "kind", "base", "parts", "records", "max_bytes"}
        ),
    ),
}


class EventSink(Protocol):
    """Anything that accepts event records one at a time."""

    def write(self, record: dict) -> None: ...  # pragma: no cover


class JsonlWriter:
    """Stream records to a ``.jsonl`` file, one JSON object per line.

    Usable as a context manager::

        with JsonlWriter(path) as out:
            for record in events:
                out.write(record)
    """

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)
        self._file: IO[str] | None = self.path.open("w", encoding="utf-8")
        self.records_written = 0

    def write(self, record: dict) -> None:
        if self._file is None:
            raise ObservabilityError(f"writer for {self.path} already closed")
        self._file.write(json.dumps(record, separators=(",", ":")))
        self._file.write("\n")
        # Crash tolerance: flush per event so a killed process loses at
        # most the line it was writing — which :func:`read_tolerant`
        # then tolerates instead of rejecting the whole log.
        self._file.flush()
        self.records_written += 1

    def ckpt_state(self) -> dict:
        """Checkpoint state: the position to truncate-and-continue from.

        Only the path and the committed record count are needed: every
        record is flushed before the engine can checkpoint past it, so
        a resume cuts the file back to ``records`` complete lines and
        reopens it for append (:meth:`resume`).
        """
        return {
            "writer": "plain",
            "path": str(self.path),
            "records": self.records_written,
        }

    @classmethod
    def resume(cls, state: Mapping) -> "JsonlWriter":
        """Reopen a crashed run's log at its checkpointed position.

        Truncates the file back to the checkpoint's record count —
        discarding everything written between the checkpoint and the
        crash, torn tail included — and continues appending, so the
        finished log is byte-identical to an uninterrupted run's.
        """
        path = pathlib.Path(str(state["path"]))
        records = int(state["records"])
        _truncate_to_records(path, records)
        writer = cls.__new__(cls)
        writer.path = path
        writer._file = path.open("a", encoding="utf-8")
        writer.records_written = records
        return writer

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class RotatingJsonlWriter:
    """A :class:`JsonlWriter` that rotates into size-bounded parts.

    ``path`` is the *logical* log path (e.g. ``out/events.jsonl``); the
    actual bytes land in numbered sibling parts
    (``out/events-0001.jsonl``, ...) listed by a manifest at
    ``out/events.manifest.json``.  A record never straddles parts: when
    appending a line would push the current part past ``max_bytes`` (and
    the part already holds at least one record), the writer rolls over
    first.  The manifest is rewritten on every rotation and on close, so
    it is never more than one part behind reality.
    """

    def __init__(
        self,
        path: str | pathlib.Path,
        max_bytes: int = 64 * 1024 * 1024,
    ) -> None:
        if max_bytes < 1:
            raise ObservabilityError(f"max_bytes must be >= 1, got {max_bytes}")
        self.path = pathlib.Path(path)
        self.max_bytes = max_bytes
        self._stem = self.path.stem
        self._dir = self.path.parent
        self.manifest_path = self._dir / f"{self._stem}.manifest.json"
        self.parts: list[pathlib.Path] = []
        self.records_written = 0
        self._part_bytes = 0
        self._part_records = 0
        self._file: IO[str] | None = None
        self._open_part()

    def _open_part(self) -> None:
        part = self._dir / f"{self._stem}-{len(self.parts) + 1:04d}.jsonl"
        self.parts.append(part)
        self._file = part.open("w", encoding="utf-8")
        self._part_bytes = 0
        self._part_records = 0
        self._write_manifest()

    def _write_manifest(self) -> None:
        manifest = {
            "schema": SCHEMA_VERSION,
            "kind": "manifest",
            "base": self.path.name,
            "parts": [p.name for p in self.parts],
            "records": self.records_written,
            "max_bytes": self.max_bytes,
        }
        # Atomic rewrite: a crash mid-write must leave either the old
        # manifest or the new one, never a torn file — write a sibling
        # temp file (same directory, so the rename cannot cross
        # filesystems) and swap it in with one os.replace.
        tmp = self.manifest_path.with_name(self.manifest_path.name + ".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(manifest, handle, separators=(",", ":"))
            handle.write("\n")
        os.replace(tmp, self.manifest_path)

    def write(self, record: dict) -> None:
        if self._file is None:
            raise ObservabilityError(f"writer for {self.path} already closed")
        line = json.dumps(record, separators=(",", ":")) + "\n"
        size = len(line.encode("utf-8"))
        if self._part_records and self._part_bytes + size > self.max_bytes:
            self._file.close()
            self._open_part()
        assert self._file is not None
        self._file.write(line)
        self._file.flush()
        self._part_bytes += size
        self._part_records += 1
        self.records_written += 1

    def ckpt_state(self) -> dict:
        """Checkpoint state: part list and both record/byte cursors.

        Captures everything :meth:`resume` needs to reproduce this
        writer mid-stream: the committed part names, the total record
        count, and the current part's record and byte cursors (rotation
        decisions depend on ``_part_bytes``, so it must round-trip
        exactly for resumed rotation points to match the golden run).
        """
        return {
            "writer": "rotating",
            "path": str(self.path),
            "max_bytes": self.max_bytes,
            "parts": [p.name for p in self.parts],
            "records": self.records_written,
            "part_bytes": self._part_bytes,
            "part_records": self._part_records,
        }

    @classmethod
    def resume(cls, state: Mapping) -> "RotatingJsonlWriter":
        """Reopen a crashed rotated log at its checkpointed position.

        Parts the crashed run opened *after* the checkpoint are deleted,
        the checkpointed final part is truncated back to its recorded
        line count, and the manifest is rewritten to match — after which
        appending continues exactly where the checkpoint left off.
        """
        path = pathlib.Path(str(state["path"]))
        part_names = [str(name) for name in state["parts"]]
        if not part_names:
            raise CheckpointError(f"{path}: checkpoint lists no log parts")
        directory = path.parent
        stem = path.stem
        parts = [directory / name for name in part_names]
        for part in parts:
            if not part.exists():
                raise CheckpointError(
                    f"{part}: checkpointed log part is missing"
                )
        listed = set(part_names)
        for stray in sorted(
            directory.glob(f"{stem}-[0-9][0-9][0-9][0-9].jsonl")
        ):
            if stray.name not in listed:
                stray.unlink()
        _truncate_to_records(parts[-1], int(state["part_records"]))
        writer = cls.__new__(cls)
        writer.path = path
        writer.max_bytes = int(state["max_bytes"])
        writer._stem = stem
        writer._dir = directory
        writer.manifest_path = directory / f"{stem}.manifest.json"
        writer.parts = parts
        writer.records_written = int(state["records"])
        writer._part_bytes = int(state["part_bytes"])
        writer._part_records = int(state["part_records"])
        writer._file = parts[-1].open("a", encoding="utf-8")
        writer._write_manifest()
        return writer

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
            self._write_manifest()

    def __enter__(self) -> "RotatingJsonlWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _truncate_to_records(path: pathlib.Path, keep: int) -> None:
    """Cut ``path`` back to its first ``keep`` newline-terminated lines.

    Raises :class:`~repro.errors.CheckpointError` when the file is
    missing or holds fewer complete lines than the checkpoint claims —
    either way it cannot be the log the checkpoint was taken against.
    """
    if not path.exists():
        raise CheckpointError(f"{path}: cannot resume, log file is missing")
    with path.open("r+b") as handle:
        offset = 0
        remaining = keep
        while remaining:
            chunk = handle.read(1 << 20)
            if not chunk:
                raise CheckpointError(
                    f"{path}: log holds fewer than {keep} complete "
                    "records; it does not match the checkpoint"
                )
            newlines = chunk.count(b"\n")
            if newlines >= remaining:
                position = -1
                for _ in range(remaining):
                    position = chunk.find(b"\n", position + 1)
                offset += position + 1
                remaining = 0
            else:
                remaining -= newlines
                offset += len(chunk)
        handle.truncate(offset)


class EventSampler:
    """Deterministic per-transaction event sampling, tail-exact.

    Thins an event stream to roughly ``rate`` of its transactions while
    keeping the records analysis cannot afford to lose:

    * kinds in :data:`KEEP_ALWAYS_KINDS` always pass;
    * a transaction is *sampled* iff
      ``(txn_id * 2654435761) % 2**32 < rate * 2**32`` (Fibonacci
      hashing — deterministic, uniform, seed-free), and every event of a
      sampled transaction passes;
    * **tardy completions of unsampled transactions pass anyway**,
      marked ``"sampled": false`` — so deadline misses and tardiness
      mass survive sampling exactly, only the on-time bulk is thinned
      (the "head/tail bias": heads of the log and tails of the
      distribution are kept);
    * transaction-less ``sched`` points pass every ``round(1/rate)``-th
      occurrence.

    Readers estimate thinned totals as ``count / rate``
    (:mod:`repro.obs.analyze` applies this scale correction when the
    header carries ``"sample"``).
    """

    #: Knuth's multiplicative-hash constant (2^32 / φ).
    _HASH = 2654435761
    _MOD = 2**32

    def __init__(self, rate: float) -> None:
        if not 0.0 < rate <= 1.0:
            raise ObservabilityError(
                f"sample rate must be in (0, 1], got {rate}"
            )
        self.rate = rate
        self._threshold = int(rate * self._MOD)
        self._sched_stride = max(1, round(1.0 / rate))
        self._sched_seen = 0

    def keeps_txn(self, txn_id: int) -> bool:
        """Whether ``txn_id`` is in the sampled subset."""
        return (txn_id * self._HASH) % self._MOD < self._threshold

    def filter(self, record: dict) -> dict | None:
        """The record to persist, or ``None`` to drop it."""
        if self.rate == 1.0:
            return record
        kind = record.get("kind", "")
        if kind in KEEP_ALWAYS_KINDS:
            return record
        txn = record.get("txn")
        if txn is None:
            if kind == "sched":
                self._sched_seen += 1
                if (self._sched_seen - 1) % self._sched_stride == 0:
                    return record
            return None
        if self.keeps_txn(int(txn)):
            return record
        if kind == "completion" and record.get("tardiness", 0.0) > 0.0:
            kept = dict(record)
            kept["sampled"] = False
            return kept
        return None


def write(records: Iterable[dict], path: str | pathlib.Path) -> pathlib.Path:
    """Write ``records`` to ``path``; returns the path written."""
    path = pathlib.Path(path)
    with JsonlWriter(path) as out:
        for record in records:
            out.write(record)
    return path


def iter_records(
    path: str | pathlib.Path, strict: bool = True
) -> Iterator[dict]:
    """Yield records from a ``.jsonl`` event log, validating the header.

    With ``strict=True`` (default) the first record must be a
    ``run_start`` header whose ``schema`` this reader supports.
    """
    path = pathlib.Path(path)
    first = True
    with path.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ObservabilityError(
                    f"{path}:{lineno}: invalid JSON: {exc}"
                ) from exc
            if not isinstance(record, dict):
                raise ObservabilityError(
                    f"{path}:{lineno}: expected a JSON object, got "
                    f"{type(record).__name__}"
                )
            if first and strict:
                _validate_header(record, path)
            first = False
            yield record


def _validate_header(record: dict, path: pathlib.Path) -> None:
    if record.get("kind") != "run_start":
        raise ObservabilityError(
            f"{path}: first record must be a 'run_start' header, "
            f"got kind={record.get('kind')!r}"
        )
    schema = record.get("schema")
    if not isinstance(schema, int) or schema < 1:
        raise ObservabilityError(
            f"{path}: header carries invalid schema version {schema!r}"
        )
    if schema > SCHEMA_VERSION:
        raise ObservabilityError(
            f"{path}: event log uses schema {schema}, this reader "
            f"supports <= {SCHEMA_VERSION}"
        )


def read(path: str | pathlib.Path, strict: bool = True) -> list[dict]:
    """Read a whole event log into memory (header included)."""
    return list(iter_records(path, strict=strict))


def _glob_fallback(
    manifest_path: pathlib.Path, reason: object
) -> list[pathlib.Path]:
    """Recover a rotated set's parts by filename when the manifest is torn.

    The writer names parts ``{stem}-NNNN.jsonl`` with zero-padded
    four-digit indices, so a lexicographic sort restores read order.
    Raises :class:`~repro.errors.ObservabilityError` when no part files
    exist either — then there is nothing to recover from.
    """
    stem = manifest_path.name[: -len(".manifest.json")]
    parts = sorted(
        manifest_path.parent.glob(f"{stem}-[0-9][0-9][0-9][0-9].jsonl")
    )
    if not parts:
        raise ObservabilityError(
            f"{manifest_path}: unreadable manifest ({reason}) and no "
            "part files to recover from"
        )
    warnings.warn(
        f"{manifest_path}: unreadable manifest ({reason}); recovered "
        f"{len(parts)} part(s) by filename glob",
        UserWarning,
        stacklevel=4,
    )
    return parts


def _resolve_parts(path: pathlib.Path) -> tuple[list[pathlib.Path], int]:
    """The file(s) making up one logical log, in read order.

    Accepts a plain single-file log, a rotated set's manifest, or a
    rotated set's *base* path (the logical name the writer was given —
    the manifest is looked up next to it).  Returns ``(parts,
    recovered)``: ``recovered`` is 1 when the manifest was torn or
    corrupt and the parts were reconstructed by filename glob
    (:func:`_glob_fallback`), 0 when the manifest was healthy.
    """
    if path.name.endswith(".manifest.json"):
        manifest_path = path
    else:
        manifest_path = path.parent / f"{path.stem}.manifest.json"
        if path.exists() or not manifest_path.exists():
            if not path.exists():
                raise ObservabilityError(f"{path}: no such event log")
            return [path], 0
    try:
        with manifest_path.open("r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except OSError as exc:
        raise ObservabilityError(
            f"{manifest_path}: unreadable manifest: {exc}"
        ) from exc
    except json.JSONDecodeError as exc:
        return _glob_fallback(manifest_path, exc), 1
    if manifest.get("kind") != "manifest" or "parts" not in manifest:
        return _glob_fallback(manifest_path, "not an event-log manifest"), 1
    parts = [manifest_path.parent / name for name in manifest["parts"]]
    if not parts:
        raise ObservabilityError(f"{manifest_path}: manifest lists no parts")
    for part in parts:
        if not part.exists():
            raise ObservabilityError(
                f"{manifest_path}: listed part {part.name} is missing"
            )
    return parts, 0


def _parse_lines(
    path: pathlib.Path, tolerate_tail: bool
) -> tuple[list[dict], int]:
    """Parse one physical file; drop a torn final line if tolerated."""
    raw: list[tuple[int, str]] = []
    with path.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if line:
                raw.append((lineno, line))
    records: list[dict] = []
    truncated = 0
    for index, (lineno, line) in enumerate(raw):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if tolerate_tail and index == len(raw) - 1:
                warnings.warn(
                    f"{path}:{lineno}: dropping truncated trailing line "
                    f"({exc})",
                    UserWarning,
                    stacklevel=3,
                )
                truncated = 1
                break
            raise ObservabilityError(
                f"{path}:{lineno}: invalid JSON: {exc}"
            ) from exc
        if not isinstance(record, dict):
            raise ObservabilityError(
                f"{path}:{lineno}: expected a JSON object, got "
                f"{type(record).__name__}"
            )
        records.append(record)
    return records, truncated


def read_tolerant(
    path: str | pathlib.Path, strict: bool = True
) -> tuple[list[dict], int]:
    """Read an event log, tolerating a truncated *final* line.

    The per-event flush of :class:`JsonlWriter` guarantees a crashed run
    loses at most the one line it was mid-write, so only the last
    non-empty line may legally fail to parse: it is dropped with a
    :class:`UserWarning` and counted in the returned
    ``(records, truncated_lines)`` pair.
    An unparseable line anywhere *else* still raises
    :class:`~repro.errors.ObservabilityError` — that is corruption, not
    truncation.

    ``path`` may also be a :class:`RotatingJsonlWriter` base path or
    manifest: the rotated parts are then read in order as one logical
    log (only the *last* part's tail may be torn; the run header lives
    in the first part).  A torn or corrupt *manifest* is tolerated too:
    the parts are recovered by filename glob with a :class:`UserWarning`
    and the recovery is added to the returned counter (so a crash that
    tears both the manifest and the final line reports 2).
    """
    parts, recovered = _resolve_parts(pathlib.Path(path))
    records: list[dict] = []
    truncated = 0
    for index, part in enumerate(parts):
        part_records, truncated = _parse_lines(
            part, tolerate_tail=(index == len(parts) - 1)
        )
        records.extend(part_records)
    if records and strict:
        _validate_header(records[0], parts[0])
    if not records:
        raise ObservabilityError(f"{path}: no parseable records")
    return records, truncated + recovered
