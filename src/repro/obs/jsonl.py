"""Structured JSON-lines event logs: write, read, validate.

One simulation run serialises to one ``.jsonl`` file — one JSON object
per line, schema-versioned so readers can reject logs they do not
understand.  The format is deliberately boring: it round-trips through
``json`` exactly, greps cleanly, and loads into any dataframe library.

Schema (version 1)
------------------
The first record is the run header::

    {"schema": 1, "kind": "run_start", "t": 0.0,
     "policy": "asets", "n": 1000, "servers": 1}

Every subsequent record carries ``kind`` and ``t`` (simulated time):

============= ==========================================================
``kind``       extra fields
============= ==========================================================
arrival        ``txn`` [+ ``deps``]
dispatch       ``txn``, ``overhead``
preempt        ``txn``
overhead       ``txn``, ``amount``
completion     ``txn``, ``tardiness`` [+ ``response_time``]
sched          ``ready``, ``running``, ``select_s``
fault.stall    ``txn``, ``amount``
fault.abort    ``txn``, ``lost``, ``attempt`` [+ ``exhausted``]
retry          ``txn``, ``attempt``, ``deadline``
fault.crash    ``down``
fault.recover  ``down``
shed           ``txn``, ``reason``
run_end        [+ ``completed``, ``tardy``, ``makespan``,
               ``aborted``, ``shed``, ``retries``]
============= ==========================================================

Fields in brackets are *additive* schema-1 extensions (still schema 1):
``deps`` is the transaction's dependency list (omitted when empty),
``response_time`` is ``f_i - a_i``, and the ``run_end`` trailer carries
the run totals.  The fault kinds (``fault.*``, ``retry``, ``shed``) are
likewise additive: only runs under a :mod:`repro.faults` plan emit them,
and the ``run_end`` outcome counters appear only when nonzero — a
fault-free log is byte-identical to the pre-fault format.  Logs written
before these fields existed remain valid; readers — including
:mod:`repro.obs.analyze` — must tolerate their absence.

Reading is strict by default: a missing/alien header or an unparseable
line raises :class:`~repro.errors.ObservabilityError`.  Pass
``strict=False`` to read partial logs (e.g. from an aborted run), or use
:func:`read_tolerant` to accept a log whose *final* line was cut short
by a crash (the writer flushes per event, so at most one trailing line
can ever be torn).
"""

from __future__ import annotations

import json
import pathlib
import warnings
from typing import IO, Iterable, Iterator

from repro.errors import ObservabilityError

__all__ = [
    "SCHEMA_VERSION",
    "JsonlWriter",
    "write",
    "read",
    "read_tolerant",
    "iter_records",
]

#: Current event-log schema version; bumped on incompatible changes.
SCHEMA_VERSION = 1


class JsonlWriter:
    """Stream records to a ``.jsonl`` file, one JSON object per line.

    Usable as a context manager::

        with JsonlWriter(path) as out:
            for record in events:
                out.write(record)
    """

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)
        self._file: IO[str] | None = self.path.open("w", encoding="utf-8")
        self.records_written = 0

    def write(self, record: dict) -> None:
        if self._file is None:
            raise ObservabilityError(f"writer for {self.path} already closed")
        self._file.write(json.dumps(record, separators=(",", ":")))
        self._file.write("\n")
        # Crash tolerance: flush per event so a killed process loses at
        # most the line it was writing — which :func:`read_tolerant`
        # then tolerates instead of rejecting the whole log.
        self._file.flush()
        self.records_written += 1

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def write(records: Iterable[dict], path: str | pathlib.Path) -> pathlib.Path:
    """Write ``records`` to ``path``; returns the path written."""
    path = pathlib.Path(path)
    with JsonlWriter(path) as out:
        for record in records:
            out.write(record)
    return path


def iter_records(
    path: str | pathlib.Path, strict: bool = True
) -> Iterator[dict]:
    """Yield records from a ``.jsonl`` event log, validating the header.

    With ``strict=True`` (default) the first record must be a
    ``run_start`` header whose ``schema`` this reader supports.
    """
    path = pathlib.Path(path)
    first = True
    with path.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ObservabilityError(
                    f"{path}:{lineno}: invalid JSON: {exc}"
                ) from exc
            if not isinstance(record, dict):
                raise ObservabilityError(
                    f"{path}:{lineno}: expected a JSON object, got "
                    f"{type(record).__name__}"
                )
            if first and strict:
                _validate_header(record, path)
            first = False
            yield record


def _validate_header(record: dict, path: pathlib.Path) -> None:
    if record.get("kind") != "run_start":
        raise ObservabilityError(
            f"{path}: first record must be a 'run_start' header, "
            f"got kind={record.get('kind')!r}"
        )
    schema = record.get("schema")
    if not isinstance(schema, int) or schema < 1:
        raise ObservabilityError(
            f"{path}: header carries invalid schema version {schema!r}"
        )
    if schema > SCHEMA_VERSION:
        raise ObservabilityError(
            f"{path}: event log uses schema {schema}, this reader "
            f"supports <= {SCHEMA_VERSION}"
        )


def read(path: str | pathlib.Path, strict: bool = True) -> list[dict]:
    """Read a whole event log into memory (header included)."""
    return list(iter_records(path, strict=strict))


def read_tolerant(
    path: str | pathlib.Path, strict: bool = True
) -> tuple[list[dict], int]:
    """Read an event log, tolerating a truncated *final* line.

    The per-event flush of :class:`JsonlWriter` guarantees a crashed run
    loses at most the one line it was mid-write, so only the last
    non-empty line may legally fail to parse: it is dropped with a
    :class:`UserWarning` and counted in the returned
    ``(records, truncated_lines)`` pair (``truncated_lines`` is 0 or 1).
    An unparseable line anywhere *else* still raises
    :class:`~repro.errors.ObservabilityError` — that is corruption, not
    truncation.
    """
    path = pathlib.Path(path)
    raw: list[tuple[int, str]] = []
    with path.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if line:
                raw.append((lineno, line))
    records: list[dict] = []
    truncated = 0
    for index, (lineno, line) in enumerate(raw):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if index == len(raw) - 1:
                warnings.warn(
                    f"{path}:{lineno}: dropping truncated trailing line "
                    f"({exc})",
                    UserWarning,
                    stacklevel=2,
                )
                truncated = 1
                break
            raise ObservabilityError(
                f"{path}:{lineno}: invalid JSON: {exc}"
            ) from exc
        if not isinstance(record, dict):
            raise ObservabilityError(
                f"{path}:{lineno}: expected a JSON object, got "
                f"{type(record).__name__}"
            )
        records.append(record)
    if records and strict:
        _validate_header(records[0], path)
    if not records:
        raise ObservabilityError(f"{path}: no parseable records")
    return records, truncated
