"""Wall-clock progress heartbeats for long runs and sweeps.

This module deliberately lives *outside* the deterministic boundary
(``repro.lint``'s ``DETERMINISTIC_PACKAGES``): heartbeats read
``time.perf_counter`` and write to a terminal, neither of which belongs
anywhere near the engine or a pure sketch.  Nothing here ever feeds back
into simulation state — a heartbeat is a read-only observer, and a run
with one attached is event-for-event identical to a run without.

:class:`Heartbeat`
    An :class:`~repro.obs.hooks.Instrument` that prints one status line
    to ``stderr`` at most every ``interval`` wall-clock seconds:
    simulated time, backlog (ready-queue depth), completion throughput
    (txns per wall second) and running deadline-miss rate.  Compose it
    with another instrument through
    :class:`~repro.obs.hooks.MultiInstrument`.  Off by default
    everywhere; the CLI arms it via ``--progress[=seconds]`` (RL006
    conventions: the engine pays nothing when no instrument is
    attached).

:class:`SweepHeartbeat`
    A rate-limited progress callback for the sweep harness: counts
    finished cell groups and prints at most one line per interval,
    however chatty the sweep is.
"""

from __future__ import annotations

import sys
from time import perf_counter
from typing import IO, TYPE_CHECKING

from repro.errors import ObservabilityError
from repro.obs.hooks import Instrument

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.transaction import Transaction

__all__ = ["Heartbeat", "SweepHeartbeat", "DEFAULT_INTERVAL"]

#: Heartbeat period (wall-clock seconds) when ``--progress`` is given
#: without a value.
DEFAULT_INTERVAL = 10.0


class Heartbeat(Instrument):
    """Periodic one-line run status on ``stderr`` (wall-clock paced).

    Parameters
    ----------
    interval:
        Minimum wall-clock seconds between lines (> 0).
    out:
        Output stream; defaults to ``sys.stderr`` so heartbeats never
        pollute piped report/JSON output.

    The clock is only consulted at scheduling points — between them the
    instrument costs two integer bumps per completion — and each line
    reports simulated time, backlog, cumulative wall-clock throughput
    and the running miss rate::

        [hb] t=1234.5 backlog=17 done=40000/100000 rate=52310/s miss=12.3%
    """

    def __init__(
        self, interval: float = DEFAULT_INTERVAL, out: IO[str] | None = None
    ) -> None:
        if interval <= 0:
            raise ObservabilityError(
                f"heartbeat interval must be > 0, got {interval}"
            )
        self.interval = interval
        self._out = out if out is not None else sys.stderr
        self._n = 0
        self._completed = 0
        self._tardy = 0
        self._started_at = 0.0
        self._last_beat = 0.0
        self.beats = 0

    def on_run_start(
        self, policy_name: str, n_transactions: int, servers: int
    ) -> None:
        self._n = n_transactions
        self._started_at = perf_counter()
        self._last_beat = self._started_at

    def on_completion(self, txn: "Transaction", now: float) -> None:
        self._completed += 1
        if now > txn.deadline:
            self._tardy += 1

    def on_scheduling_point(
        self, now: float, ready: int, running: int, select_seconds: float
    ) -> None:
        wall = perf_counter()
        if wall - self._last_beat < self.interval:
            return
        self._last_beat = wall
        self.beats += 1
        elapsed = max(wall - self._started_at, 1e-9)
        rate = self._completed / elapsed
        miss = self._tardy / self._completed if self._completed else 0.0
        self._out.write(
            f"[hb] t={now:.1f} backlog={ready} "
            f"done={self._completed}/{self._n} "
            f"rate={rate:.0f}/s miss={miss:.1%}\n"
        )
        self._out.flush()

    def on_run_end(self, now: float) -> None:
        # A final line so short runs (quieter than one interval) still
        # confirm liveness — but only if at least one beat fired or the
        # run outlived the interval; a fast run stays silent.
        wall = perf_counter()
        if self.beats == 0 and wall - self._started_at < self.interval:
            return
        elapsed = max(wall - self._started_at, 1e-9)
        miss = self._tardy / self._completed if self._completed else 0.0
        self._out.write(
            f"[hb] done t={now:.1f} completed={self._completed}/{self._n} "
            f"rate={self._completed / elapsed:.0f}/s miss={miss:.1%} "
            f"wall={elapsed:.1f}s\n"
        )
        self._out.flush()


class SweepHeartbeat:
    """Rate-limited sweep progress: at most one line per interval.

    Usable anywhere the sweep harness accepts a ``progress`` callable.
    Every call counts one finished cell group; a line is printed only
    when ``interval`` wall-clock seconds have passed since the last one
    (plus a final line at 100% when ``total`` is known).
    """

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL,
        total: int | None = None,
        out: IO[str] | None = None,
    ) -> None:
        if interval <= 0:
            raise ObservabilityError(
                f"heartbeat interval must be > 0, got {interval}"
            )
        self.interval = interval
        self.total = total
        self._out = out if out is not None else sys.stderr
        self._seen = 0
        self._started_at = perf_counter()
        self._last_beat = self._started_at

    def __call__(self, line: str) -> None:
        self._seen += 1
        wall = perf_counter()
        final = self.total is not None and self._seen >= self.total
        if not final and wall - self._last_beat < self.interval:
            return
        self._last_beat = wall
        elapsed = max(wall - self._started_at, 1e-9)
        of_total = f"/{self.total}" if self.total is not None else ""
        self._out.write(
            f"[hb] {self._seen}{of_total} groups "
            f"({self._seen / elapsed:.2f}/s) last: {line}\n"
        )
        self._out.flush()
