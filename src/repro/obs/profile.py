"""Hot-path profiling: engine phase timers, policy probes, depth scaling.

BENCH_engine.json has long shown *that* ASETS*'s ``select`` is ~20x
slower than the simple policies; this module shows *where* the time goes
and *how it scales*, which is the evidence the planned incremental-select
refactor (ROADMAP item 1) will be judged against.  Three layers:

**Engine phase timers.**  With a :class:`PhaseProfiler` attached
(``Simulator(..., profiler=...)``), the engine splits its main-loop wall
time into named phases instead of the single ``select_s`` lump:

========== ==========================================================
``pop``     event-queue ``pop_batch``
``sync``    charging running transactions (``_sync_running``)
``events``  arrival / completion / activation handling
``faults``  fault, crash, recover and retry handling
``select``  ``policy.select`` calls (overhead-corrected; see below)
``dispatch`` suspend/requeue/dispatch/preempt bookkeeping
``emit``    the per-scheduling-point instrument emission
========== ==========================================================

**Policy probes.**  Policies attribute their internal select stages via
a :class:`Probe` (``with probe.span("scan"): ...``).  The engine attaches
the probe at bind time only when a profiler is present, so the
profiler-off hot path keeps its zero-cost contract (RL001 / the
overhead-guard test): a policy pays one ``self._probe is None`` check
and nothing else.  Spans may nest; a nested span records under the
joined path (``"scan/feasibility"``).  Probe spans are **select-scoped**
by convention — they must only fire inside ``select`` — because the
select overhead correction counts them per scheduling point.

**Cost vs depth.**  Every select sample (and every top-level probe span)
is bucketed by the ready-queue depth at the scheduling point
(power-of-two buckets, :func:`depth_bucket`); a least-squares fit of
log-cost against log-depth per phase yields the empirical scaling
exponent — the "is it O(n) or O(n log n), and which phase" table.

**Overhead correction.**  Timers measure themselves too.  The profiler
calibrates its own costs at construction (``timer_overhead_s`` for one
``perf_counter`` pair, ``span_overhead_s`` for a full empty probe span)
and subtracts the probe self-time from every select sample; the applied
correction is carried in the snapshot (``select_correction_s``) so
profiler-on/off BENCH comparisons stay honest.

A run's results freeze into a picklable, mergeable
:class:`ProfileSnapshot` with text (:meth:`ProfileSnapshot.render`),
JSON (:meth:`ProfileSnapshot.as_dict`), collapsed-stack
(:meth:`ProfileSnapshot.to_collapsed`) and speedscope
(:meth:`ProfileSnapshot.to_speedscope`) exports — see
``docs/profiling.md`` for the methodology and flamegraph how-to.

All wall-clock reads live behind ``self.enabled`` guards: disabling a
profiler turns every accumulation into a no-op, and lint rule RL001
(which covers this module) enforces that no ``perf_counter`` read ever
sits on an unguarded path.
"""

from __future__ import annotations

import math
from time import perf_counter
from typing import Any, Iterable, Mapping

__all__ = [
    "ENGINE_PHASES",
    "PhaseProfiler",
    "PhaseStat",
    "Probe",
    "ProfileSnapshot",
    "depth_bucket",
    "depth_bucket_range",
    "fit_depth_exponent",
    "depth_rows_from_samples",
    "validate_speedscope",
]

#: Canonical engine phase order (reports and flamegraphs render in it).
ENGINE_PHASES = ("pop", "sync", "events", "faults", "select", "dispatch", "emit")

#: Quarter-octave histogram resolution: 4 sub-buckets per power of two
#: of nanoseconds, so percentile estimates carry <= ~12% relative error.
_SUB_BUCKETS = 4
_N_BUCKETS = 256


def _bucket_index(ns: int) -> int:
    """Histogram bucket of a nanosecond duration (quarter-octave log scale)."""
    if ns < 1:
        return 0
    octave = ns.bit_length() - 1
    base = 1 << octave
    frac = ((ns - base) * _SUB_BUCKETS) // base
    index = octave * _SUB_BUCKETS + frac
    return index if index < _N_BUCKETS else _N_BUCKETS - 1


def _bucket_seconds(index: int) -> float:
    """Geometric midpoint of one histogram bucket, in seconds."""
    octave, frac = divmod(index, _SUB_BUCKETS)
    low = (1 << octave) * (1.0 + frac / _SUB_BUCKETS)
    high = (1 << octave) * (1.0 + (frac + 1) / _SUB_BUCKETS)
    return math.sqrt(low * high) * 1e-9


class PhaseStat:
    """Mergeable accumulator for one phase: count, total, max, quantiles.

    Durations land in a quarter-octave log histogram (constant memory,
    associative merge), from which :meth:`percentile` answers p50/p95
    with bounded relative error — the same constant-memory discipline as
    :mod:`repro.obs.streaming`.
    """

    __slots__ = ("count", "total_s", "max_s", "_hist")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0
        self._hist: dict[int, int] = {}

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        if seconds > self.max_s:
            self.max_s = seconds
        index = _bucket_index(int(seconds * 1e9))
        self._hist[index] = self._hist.get(index, 0) + 1

    def merge(self, other: "PhaseStat") -> None:
        self.count += other.count
        self.total_s += other.total_s
        if other.max_s > self.max_s:
            self.max_s = other.max_s
        for index, n in sorted(other._hist.items()):
            self._hist[index] = self._hist.get(index, 0) + n

    def copy(self) -> "PhaseStat":
        out = PhaseStat()
        out.merge(self)
        return out

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate q-th percentile (0 <= q <= 100) from the histogram."""
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(self.count * q / 100.0))
        seen = 0
        for index in sorted(self._hist):
            seen += self._hist[index]
            if seen >= rank:
                return _bucket_seconds(index)
        return self.max_s  # pragma: no cover - defensive

    def as_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "max_s": self.max_s,
            "p50_s": self.percentile(50),
            "p95_s": self.percentile(95),
        }

    def __repr__(self) -> str:
        return (
            f"PhaseStat(count={self.count}, total_s={self.total_s:.6f}, "
            f"max_s={self.max_s:.6f})"
        )


# ----------------------------------------------------------------------
# Depth bucketing and scaling-exponent fits.
# ----------------------------------------------------------------------
def depth_bucket(depth: int) -> int:
    """Power-of-two bucket of a ready-queue depth (0 -> 0, 1 -> 1, 2-3 -> 2...)."""
    return depth.bit_length() if depth > 0 else 0


def depth_bucket_range(bucket: int) -> tuple[int, int]:
    """Inclusive ``(low, high)`` depth range covered by one bucket."""
    if bucket <= 0:
        return (0, 0)
    return (1 << (bucket - 1), (1 << bucket) - 1)


def fit_depth_exponent(
    rows: Iterable[tuple[float, float, int]],
) -> float | None:
    """Least-squares scaling exponent of cost against depth.

    ``rows`` yields ``(mean_depth, mean_cost_s, count)`` per depth
    bucket; the fit runs on ``log2`` of both axes, weighted by count.
    Returns ``None`` with fewer than two usable buckets (no slope to
    estimate).
    """
    points = [
        (math.log2(depth), math.log2(cost), float(n))
        for depth, cost, n in rows
        if depth >= 1.0 and cost > 0.0 and n > 0
    ]
    if len(points) < 2:
        return None
    total_w = sum(w for _, _, w in points)
    mean_x = sum(x * w for x, _, w in points) / total_w
    mean_y = sum(y * w for _, y, w in points) / total_w
    var_x = sum(w * (x - mean_x) ** 2 for x, _, w in points)
    if var_x <= 0.0:
        return None
    cov = sum(w * (x - mean_x) * (y - mean_y) for x, y, w in points)
    return cov / var_x


def depth_rows_from_samples(
    samples: Iterable[tuple[int, float]],
) -> list[tuple[int, int, float, float]]:
    """Bucket raw ``(depth, cost_s)`` samples into depth-table rows.

    Returns ``[(bucket, count, mean_depth, mean_cost_s), ...]`` sorted by
    bucket — the shape :func:`fit_depth_exponent` and the analyze
    report's depth section consume.
    """
    table: dict[int, list[float]] = {}
    for depth, cost in samples:
        cell = table.get(depth_bucket(depth))
        if cell is None:
            table[depth_bucket(depth)] = [1.0, float(depth), cost]
        else:
            cell[0] += 1.0
            cell[1] += float(depth)
            cell[2] += cost
    return [
        (bucket, int(n), depth_total / n, cost_total / n)
        for bucket, (n, depth_total, cost_total) in sorted(table.items())
    ]


# ----------------------------------------------------------------------
# The live profiler and its probe.
# ----------------------------------------------------------------------
class Probe:
    """Select-scoped span timer handed to a policy by the engine.

    ``with probe.span("scan"): ...`` attributes the block's wall time to
    the named probe phase.  The probe only exists while a profiler is
    attached; a policy without one holds ``None`` and pays a single
    ``is None`` check (the zero-cost-when-off contract).
    """

    __slots__ = ("_profiler",)

    def __init__(self, profiler: "PhaseProfiler") -> None:
        self._profiler = profiler

    def span(self, name: str) -> "_SpanTimer":
        return _SpanTimer(self._profiler, name)


class _SpanTimer:
    """Context manager for one probe span; records on exit.

    Besides the span window itself (``_start`` .. the stop read), the
    timer measures its *own* bracketing work — stack push on enter, path
    join and stat recording on exit — and credits it to the profiler's
    per-point overhead accumulator, so the select overhead correction is
    a direct measurement rather than a calibration guess.  Only the span
    object construction, the ``with``-statement glue and the final
    ``perf_counter`` read escape measurement; that small residual is
    calibrated once per profiler (``span_residual_s``).
    """

    __slots__ = ("_profiler", "_name", "_enter", "_start")

    def __init__(self, profiler: "PhaseProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name
        self._enter = 0.0
        self._start = 0.0

    def __enter__(self) -> "_SpanTimer":
        profiler = self._profiler
        if profiler.enabled:
            self._enter = perf_counter()
            profiler._stack.append(self._name)
            self._start = perf_counter()
        else:
            profiler._stack.append(self._name)
        return self

    def __exit__(self, *exc_info: object) -> None:
        profiler = self._profiler
        if profiler.enabled:
            stop = perf_counter()
            path = "/".join(profiler._stack)
            profiler._stack.pop()
            profiler._record_span(path, stop - self._start)
            profiler._point_overhead_s += (
                (self._start - self._enter) + (perf_counter() - stop)
            )
        else:
            profiler._stack.pop()


class PhaseProfiler:
    """Collects phase timings for one run; attach via ``Simulator(profiler=...)``.

    The engine drives :meth:`engine_phase`, :meth:`select_begin`,
    :meth:`select_end` and :meth:`point_end`; policies drive spans
    through the :class:`Probe` from :meth:`probe`.  Setting
    :attr:`enabled` to ``False`` freezes accumulation (every wall-clock
    read is guarded on it).  :meth:`snapshot` freezes the collected data
    into a :class:`ProfileSnapshot`.
    """

    def __init__(self, calibrate: bool = True) -> None:
        #: Master switch guarding every ``perf_counter`` read (RL001).
        self.enabled = True
        #: Measured cost of one bare ``perf_counter()`` pair.
        self.timer_overhead_s = 0.0
        #: Measured cost of one full empty probe span (enter + exit + record).
        self.span_overhead_s = 0.0
        #: The per-span slice of that cost the span timer cannot measure
        #: about itself (construction, ``with`` glue, the last clock read).
        self.span_residual_s = 0.0
        self._phases: dict[str, PhaseStat] = {}
        self._probes: dict[str, PhaseStat] = {}
        #: phase -> depth bucket -> [count, depth_total, cost_total_s].
        self._depth: dict[str, dict[int, list[float]]] = {}
        self._stack: list[str] = []
        self._current_depth = 0
        self._point_spans = 0
        self._point_overhead_s = 0.0
        self._select_raw_s = 0.0
        self._select_correction_s = 0.0
        if calibrate:
            self._calibrate()

    # -- calibration ---------------------------------------------------
    def _calibrate(self) -> None:
        """Measure the profiler's own costs.

        The span timer measures most of its own overhead directly at run
        time (see :class:`_SpanTimer`); calibration pins down the two
        constants that direct measurement cannot see — the cost of a
        bare ``perf_counter`` pair and the per-span residual (batch wall
        time minus everything the spans accounted for themselves, min
        over batches).
        """
        if self.enabled:
            best = math.inf
            for _ in range(32):
                start = perf_counter()
                stop = perf_counter()
                delta = stop - start
                if delta < best:
                    best = delta
            self.timer_overhead_s = max(0.0, best)
            probe = Probe(self)
            reps = 64
            best_residual = math.inf
            best_full = math.inf
            for _ in range(8):
                self._probes.clear()
                self._depth.clear()
                self._point_spans = 0
                self._point_overhead_s = 0.0
                start = perf_counter()
                for _ in range(reps):
                    with probe.span("calibration"):
                        pass
                total = perf_counter() - start
                stat = self._probes.get("calibration")
                inner = stat.total_s if stat is not None else 0.0
                residual = (total - inner - self._point_overhead_s) / reps
                if residual < best_residual:
                    best_residual = residual
                if total / reps < best_full:
                    best_full = total / reps
            self.span_residual_s = max(0.0, best_residual)
            self.span_overhead_s = max(0.0, best_full)
        # Calibration spans must not pollute the run's data.
        self._probes.clear()
        self._depth.clear()
        self._point_spans = 0
        self._point_overhead_s = 0.0

    # -- engine-side hooks ---------------------------------------------
    def probe(self) -> Probe:
        """The span timer the engine hands to the policy at bind time."""
        return Probe(self)

    def engine_phase(self, phase: str, seconds: float) -> None:
        """Accumulate one measured duration under an engine phase."""
        if not self.enabled:
            return
        stat = self._phases.get(phase)
        if stat is None:
            stat = self._phases[phase] = PhaseStat()
        stat.add(seconds)

    def select_begin(self, ready_depth: int) -> None:
        """A ``policy.select`` call is starting at the given queue depth."""
        self._current_depth = ready_depth
        self._point_spans = 0
        self._point_overhead_s = 0.0

    def select_end(self, seconds: float) -> None:
        """A ``policy.select`` call took ``seconds`` (raw, probe-inflated).

        The probe self-time the spans measured about themselves during
        this call, plus the calibrated per-span residual, is subtracted
        before the sample is recorded; the total applied correction is
        carried in the snapshot so profiler-on/off comparisons stay
        honest.
        """
        if not self.enabled:
            return
        corrected = seconds - self._point_overhead_s
        corrected -= self._point_spans * self.span_residual_s
        if corrected < 0.0:
            corrected = 0.0
        self._select_raw_s += seconds
        self._select_correction_s += seconds - corrected
        self.engine_phase("select", corrected)
        self._record_depth("select", self._current_depth, corrected)

    def point_end(self, select_s: float, body_s: float, emit_s: float) -> None:
        """Close one scheduling point: emit and dispatch-bookkeeping phases.

        ``body_s`` is the whole reschedule body (which contains the
        select calls); the dispatch/preempt bookkeeping phase is the
        remainder after the measured select time.
        """
        if not self.enabled:
            return
        self.engine_phase("emit", emit_s)
        dispatch = body_s - select_s
        if dispatch < 0.0:
            dispatch = 0.0
        self.engine_phase("dispatch", dispatch)

    # -- probe plumbing ------------------------------------------------
    def _record_span(self, path: str, seconds: float) -> None:
        self._point_spans += 1
        stat = self._probes.get(path)
        if stat is None:
            stat = self._probes[path] = PhaseStat()
        stat.add(seconds)
        if "/" not in path:
            self._record_depth(path, self._current_depth, seconds)

    def _record_depth(self, phase: str, depth: int, seconds: float) -> None:
        table = self._depth.get(phase)
        if table is None:
            table = self._depth[phase] = {}
        bucket = depth_bucket(depth)
        cell = table.get(bucket)
        if cell is None:
            table[bucket] = [1.0, float(depth), seconds]
        else:
            cell[0] += 1.0
            cell[1] += float(depth)
            cell[2] += seconds

    # -- freezing ------------------------------------------------------
    def snapshot(self, policy: str = "") -> "ProfileSnapshot":
        """Freeze the collected data (copies; the profiler keeps counting)."""
        snap = ProfileSnapshot(policy=policy)
        snap.timer_overhead_s = self.timer_overhead_s
        snap.span_overhead_s = self.span_overhead_s
        snap.span_residual_s = self.span_residual_s
        snap.select_raw_s = self._select_raw_s
        snap.select_correction_s = self._select_correction_s
        for name, stat in sorted(self._phases.items()):
            snap.phases[name] = stat.copy()
        for name, stat in sorted(self._probes.items()):
            snap.probes[name] = stat.copy()
        for phase, table in sorted(self._depth.items()):
            snap.depth[phase] = {
                bucket: [cell[0], cell[1], cell[2]]
                for bucket, cell in sorted(table.items())
            }
        return snap


# ----------------------------------------------------------------------
# The frozen, mergeable result.
# ----------------------------------------------------------------------
class ProfileSnapshot:
    """Frozen profile of one run (or a deterministic merge of several).

    Picklable (plain data), so sweep workers ship snapshots home;
    :meth:`merge` is associative and commutative over the accumulators,
    and the sweep merges cells in fixed grid order, so a merged snapshot
    is independent of worker count and completion order.
    """

    __slots__ = (
        "policy",
        "phases",
        "probes",
        "depth",
        "select_raw_s",
        "select_correction_s",
        "timer_overhead_s",
        "span_overhead_s",
        "span_residual_s",
    )

    def __init__(self, policy: str = "") -> None:
        self.policy = policy
        self.phases: dict[str, PhaseStat] = {}
        self.probes: dict[str, PhaseStat] = {}
        self.depth: dict[str, dict[int, list[float]]] = {}
        self.select_raw_s = 0.0
        self.select_correction_s = 0.0
        self.timer_overhead_s = 0.0
        self.span_overhead_s = 0.0
        self.span_residual_s = 0.0

    # -- merging -------------------------------------------------------
    def merge(self, other: "ProfileSnapshot") -> None:
        """Fold another snapshot in (counts and totals sum; calibration
        keeps the conservative maximum)."""
        if not self.policy:
            self.policy = other.policy
        for name, stat in sorted(other.phases.items()):
            mine = self.phases.get(name)
            if mine is None:
                mine = self.phases[name] = PhaseStat()
            mine.merge(stat)
        for name, stat in sorted(other.probes.items()):
            mine = self.probes.get(name)
            if mine is None:
                mine = self.probes[name] = PhaseStat()
            mine.merge(stat)
        for phase, table in sorted(other.depth.items()):
            mine_table = self.depth.get(phase)
            if mine_table is None:
                mine_table = self.depth[phase] = {}
            for bucket, cell in sorted(table.items()):
                mine_cell = mine_table.get(bucket)
                if mine_cell is None:
                    mine_table[bucket] = [cell[0], cell[1], cell[2]]
                else:
                    mine_cell[0] += cell[0]
                    mine_cell[1] += cell[1]
                    mine_cell[2] += cell[2]
        self.select_raw_s += other.select_raw_s
        self.select_correction_s += other.select_correction_s
        if other.timer_overhead_s > self.timer_overhead_s:
            self.timer_overhead_s = other.timer_overhead_s
        if other.span_overhead_s > self.span_overhead_s:
            self.span_overhead_s = other.span_overhead_s
        if other.span_residual_s > self.span_residual_s:
            self.span_residual_s = other.span_residual_s

    # -- derived views -------------------------------------------------
    @property
    def select_total_s(self) -> float:
        stat = self.phases.get("select")
        return stat.total_s if stat is not None else 0.0

    def top_level_probes(self) -> list[tuple[str, PhaseStat]]:
        """Probe phases recorded at stack depth one, sorted by name."""
        return [
            (name, stat)
            for name, stat in sorted(self.probes.items())
            if "/" not in name
        ]

    def attribution(self) -> tuple[float, float]:
        """``(attributed_fraction, unattributed_s)`` of select wall time.

        The fraction of the (overhead-corrected) select total covered by
        top-level probe spans; the remainder is reported as
        ``unattributed``.  With no probes the whole select time is
        unattributed (fraction 0).
        """
        total = self.select_total_s
        if total <= 0.0:
            return (1.0, 0.0)
        covered = sum(stat.total_s for _, stat in self.top_level_probes())
        if covered > total:
            covered = total
        return (covered / total, total - covered)

    def depth_rows(self, phase: str) -> list[tuple[int, int, float, float]]:
        """``[(bucket, count, mean_depth, mean_cost_s), ...]`` for one phase."""
        table = self.depth.get(phase, {})
        return [
            (bucket, int(cell[0]), cell[1] / cell[0], cell[2] / cell[0])
            for bucket, cell in sorted(table.items())
            if cell[0] > 0
        ]

    def depth_exponent(self, phase: str) -> float | None:
        """Fitted cost-vs-depth scaling exponent for one phase."""
        return fit_depth_exponent(
            (mean_depth, mean_cost, count)
            for _, count, mean_depth, mean_cost in self.depth_rows(phase)
        )

    def _phase_order(self) -> list[str]:
        order = [name for name in ENGINE_PHASES if name in self.phases]
        order += sorted(set(self.phases) - set(ENGINE_PHASES))
        return order

    # -- exports -------------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        """JSON-ready view (the ``profile`` section of BENCH schema 3)."""
        attributed, unattributed_s = self.attribution()
        depth_scaling: dict[str, Any] = {}
        for phase in sorted(self.depth):
            rows = self.depth_rows(phase)
            depth_scaling[phase] = {
                "exponent": self.depth_exponent(phase),
                "buckets": [
                    {
                        "depth_range": list(depth_bucket_range(bucket)),
                        "count": count,
                        "mean_depth": mean_depth,
                        "mean_cost_s": mean_cost,
                    }
                    for bucket, count, mean_depth, mean_cost in rows
                ],
            }
        return {
            "policy": self.policy,
            "phases": {
                name: self.phases[name].as_dict()
                for name in self._phase_order()
            },
            "probes": {
                name: stat.as_dict()
                for name, stat in sorted(self.probes.items())
            },
            "depth_scaling": depth_scaling,
            "select_raw_s": self.select_raw_s,
            "select_correction_s": self.select_correction_s,
            "select_attributed_fraction": attributed,
            "select_unattributed_s": unattributed_s,
            "timer_overhead_s": self.timer_overhead_s,
            "span_overhead_s": self.span_overhead_s,
            "span_residual_s": self.span_residual_s,
        }

    def render(self) -> str:
        """Aligned text report: phase table, probes, depth scaling."""
        lines = [f"profile — {self.policy or '?'}"]
        total = sum(stat.total_s for stat in self.phases.values())
        lines.append(
            f"{'phase':<12} {'count':>9} {'total_s':>10} {'share':>6} "
            f"{'p50_us':>9} {'p95_us':>9} {'max_us':>9}"
        )
        for name in self._phase_order():
            stat = self.phases[name]
            share = stat.total_s / total if total > 0 else 0.0
            lines.append(
                f"{name:<12} {stat.count:>9} {stat.total_s:>10.4f} "
                f"{share:>6.1%} {stat.percentile(50) * 1e6:>9.2f} "
                f"{stat.percentile(95) * 1e6:>9.2f} {stat.max_s * 1e6:>9.2f}"
            )
        attributed, unattributed_s = self.attribution()
        if self.probes:
            lines.append("select probes (policy-internal stages):")
            for name, stat in sorted(self.probes.items()):
                lines.append(
                    f"  {name:<18} {stat.count:>9} {stat.total_s:>10.4f} "
                    f"p95={stat.percentile(95) * 1e6:.2f}us"
                )
            lines.append(
                f"  select attribution: {attributed:.1%} "
                f"({unattributed_s:.4f}s unattributed)"
            )
        if self.select_correction_s > 0.0:
            lines.append(
                f"probe self-time correction: -{self.select_correction_s:.4f}s "
                f"(span_overhead={self.span_overhead_s * 1e9:.0f}ns, "
                f"timer_overhead={self.timer_overhead_s * 1e9:.0f}ns)"
            )
        if self.depth:
            lines.append("select cost by ready-queue depth:")
            for phase in sorted(self.depth):
                exponent = self.depth_exponent(phase)
                fit = f"~depth^{exponent:.2f}" if exponent is not None else "n/a"
                lines.append(f"  {phase} ({fit}):")
                for bucket, count, mean_depth, mean_cost in self.depth_rows(
                    phase
                ):
                    low, high = depth_bucket_range(bucket)
                    span = f"{low}" if low == high else f"{low}-{high}"
                    lines.append(
                        f"    depth {span:>9}: n={count:<7} "
                        f"mean={mean_cost * 1e6:.2f}us "
                        f"(mean depth {mean_depth:.1f})"
                    )
        return "\n".join(lines)

    def _stacks(self) -> list[tuple[tuple[str, ...], float]]:
        """(frame stack, weight) leaves of the phase/probe tree."""
        stacks: list[tuple[tuple[str, ...], float]] = []
        for name in self._phase_order():
            if name == "select":
                continue
            stacks.append((("engine", name), self.phases[name].total_s))
        select_total = self.select_total_s
        covered = 0.0
        for name, stat in sorted(self.probes.items()):
            parts = tuple(name.split("/"))
            if len(parts) == 1:
                covered += stat.total_s
            stacks.append((("engine", "select") + parts, stat.total_s))
        if "select" in self.phases:
            remainder = select_total - covered
            if remainder < 0.0:
                remainder = 0.0
            stacks.append((("engine", "select", "(unattributed)"), remainder))
        return [(stack, weight) for stack, weight in stacks if weight > 0.0]

    def to_collapsed(self) -> str:
        """Brendan-Gregg collapsed-stack format (weights in nanoseconds)."""
        lines = [
            f"{';'.join(stack)} {max(1, round(weight * 1e9))}"
            for stack, weight in self._stacks()
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def to_speedscope(self) -> dict[str, Any]:
        """A speedscope.app 'sampled' profile of the phase/probe tree."""
        frames: list[dict[str, str]] = []
        index: dict[str, int] = {}

        def frame(name: str) -> int:
            if name not in index:
                index[name] = len(frames)
                frames.append({"name": name})
            return index[name]

        samples: list[list[int]] = []
        weights: list[float] = []
        for stack, weight in self._stacks():
            samples.append([frame(name) for name in stack])
            weights.append(weight)
        total = sum(weights)
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "name": f"repro engine profile — {self.policy or '?'}",
            "exporter": "repro.obs.profile",
            "activeProfileIndex": 0,
            "shared": {"frames": frames},
            "profiles": [
                {
                    "type": "sampled",
                    "name": self.policy or "engine",
                    "unit": "seconds",
                    "startValue": 0.0,
                    "endValue": total,
                    "samples": samples,
                    "weights": weights,
                }
            ],
        }


def validate_speedscope(payload: Mapping[str, Any]) -> str:
    """Structurally validate a speedscope export; raise ``ValueError``.

    Checks the invariants the speedscope file-format schema pins for
    ``sampled`` profiles: the frame table, per-profile sample/weight
    alignment, in-range frame indices and non-negative weights.  Returns
    a one-line summary on success (CI prints it).
    """
    schema = payload.get("$schema")
    if schema != "https://www.speedscope.app/file-format-schema.json":
        raise ValueError(f"not a speedscope file: $schema={schema!r}")
    shared = payload.get("shared")
    if not isinstance(shared, Mapping):
        raise ValueError("missing 'shared' section")
    frames = shared.get("frames")
    if not isinstance(frames, list) or not frames:
        raise ValueError("'shared.frames' must be a non-empty list")
    for i, entry in enumerate(frames):
        if not isinstance(entry, Mapping) or not isinstance(
            entry.get("name"), str
        ):
            raise ValueError(f"frame {i} lacks a string 'name'")
    profiles = payload.get("profiles")
    if not isinstance(profiles, list) or not profiles:
        raise ValueError("'profiles' must be a non-empty list")
    n_samples = 0
    for p, profile in enumerate(profiles):
        if not isinstance(profile, Mapping):
            raise ValueError(f"profile {p} is not an object")
        if profile.get("type") != "sampled":
            raise ValueError(f"profile {p}: expected type 'sampled'")
        samples = profile.get("samples")
        weights = profile.get("weights")
        if not isinstance(samples, list) or not isinstance(weights, list):
            raise ValueError(f"profile {p}: samples/weights must be lists")
        if len(samples) != len(weights):
            raise ValueError(
                f"profile {p}: {len(samples)} samples vs "
                f"{len(weights)} weights"
            )
        for s, stack in enumerate(samples):
            if not isinstance(stack, list) or not stack:
                raise ValueError(f"profile {p} sample {s}: empty stack")
            for frame_index in stack:
                if not isinstance(frame_index, int) or not (
                    0 <= frame_index < len(frames)
                ):
                    raise ValueError(
                        f"profile {p} sample {s}: frame index "
                        f"{frame_index!r} out of range"
                    )
        for w, weight in enumerate(weights):
            if not isinstance(weight, (int, float)) or weight < 0:
                raise ValueError(
                    f"profile {p} weight {w}: {weight!r} is not a "
                    "non-negative number"
                )
        n_samples += len(samples)
    return (
        f"speedscope export ok: {len(frames)} frame(s), "
        f"{len(profiles)} profile(s), {n_samples} sample(s)"
    )
