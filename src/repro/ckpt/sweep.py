"""Resumable sweeps: the append-only per-cell completion manifest.

A grid sweep is hours of independent cells; losing all of them to one
interrupt is the binding cost of large grids.  The manifest is a JSONL
file next to the sweep:

* a header line ``{"kind": "sweep-manifest", "version": 1,
  "fingerprint": "<sha256>"}`` pinning the exact grid it belongs to;
* one line per completed cell, ``{"i": column, "s": seed, "p": policy,
  "v": value}``, appended and flushed the moment the cell's result is
  merged.

The fingerprint hashes the full grid definition (columns, specs, server
counts, policies, metric, seeds, fault spec), so resuming against a
*different* sweep fails loudly instead of silently mixing grids.  JSON
floats round-trip exactly (shortest-repr), so a resumed merge is
byte-identical to a fresh single-process run.  A torn final line —
the flush guarantees at most one — is dropped on open, exactly like
:func:`repro.obs.jsonl.read_tolerant`; that cell simply reruns.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from typing import IO, TYPE_CHECKING, Iterable, Sequence

from repro.errors import CheckpointError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.config import PolicySpec
    from repro.experiments.parallel import SweepColumn
    from repro.faults import FaultSpec

__all__ = ["SweepManifest", "grid_fingerprint"]

#: Current sweep-manifest format version.
_MANIFEST_VERSION = 1


def grid_fingerprint(
    columns: "Sequence[SweepColumn]",
    policies: "Sequence[PolicySpec]",
    metric: str,
    seeds: Iterable[int],
    fault_spec: "FaultSpec | None",
) -> str:
    """A stable digest of one grid's full definition.

    Built from the dataclass reprs of the columns (x, servers, workload
    spec) and the fault spec, the policy display names, the metric and
    the seed list — everything that determines a cell's coordinates and
    value.  Two sweeps share a manifest iff they share this digest.
    """
    parts = [
        f"metric={metric}",
        "seeds=" + ",".join(str(seed) for seed in seeds),
        "policies=" + "|".join(policy.display for policy in policies),
        f"faults={fault_spec!r}",
    ]
    for column in columns:
        parts.append(
            f"column x={column.x!r} servers={column.servers} "
            f"spec={column.spec!r}"
        )
    return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()


class SweepManifest:
    """Append-only record of which sweep cells already completed.

    Create/resume via :meth:`open`; the sweep calls :meth:`record` per
    merged cell and :meth:`close` when done (also safe mid-interrupt:
    every record is flushed as written, so the file never lags the
    merge by more than the line being written).
    """

    def __init__(
        self,
        path: pathlib.Path,
        fingerprint: str,
        completed: dict[tuple[int, int, int], float],
        file: IO[str],
    ) -> None:
        self.path = path
        self.fingerprint = fingerprint
        #: Cells already completed by earlier attempts:
        #: ``(column_index, seed, policy_position) -> value``.
        self.completed = completed
        self._file: IO[str] | None = file

    @classmethod
    def open(
        cls, path: str | pathlib.Path, fingerprint: str
    ) -> "SweepManifest":
        """Open (or create) the manifest for the grid ``fingerprint``.

        A fresh path starts an empty manifest; an existing file is read
        back tolerantly (a torn final line is dropped — that cell just
        reruns), its fingerprint is checked against the grid's, and the
        file is reopened for append.
        """
        path = pathlib.Path(path)
        if not path.exists():
            file = path.open("w", encoding="utf-8")
            header = {
                "kind": "sweep-manifest",
                "version": _MANIFEST_VERSION,
                "fingerprint": fingerprint,
            }
            file.write(json.dumps(header, separators=(",", ":")) + "\n")
            file.flush()
            return cls(path, fingerprint, {}, file)
        completed, keep = cls._read(path, fingerprint)
        if keep < path.stat().st_size:
            # Cut the torn tail before appending: a new record written
            # after an unterminated fragment would concatenate onto it
            # and corrupt the line for the *next* resume.
            with path.open("r+b") as handle:
                handle.truncate(keep)
        return cls(path, fingerprint, completed, path.open("a", encoding="utf-8"))

    @staticmethod
    def _read(
        path: pathlib.Path, fingerprint: str
    ) -> tuple[dict[tuple[int, int, int], float], int]:
        data = path.read_bytes()
        lines: list[tuple[int, bytes]] = []
        offset = 0
        for piece in data.split(b"\n"):
            stripped = piece.strip()
            if stripped:
                lines.append((offset, stripped))
            offset += len(piece) + 1
        if not lines:
            raise CheckpointError(f"{path}: empty sweep manifest")
        keep = len(data)
        records: list[dict] = []
        for lineno, (start, line) in enumerate(lines, start=1):
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if lineno == len(lines):
                    keep = start  # torn final line: truncated, cell reruns
                    break
                raise CheckpointError(
                    f"{path}:{lineno}: corrupt sweep manifest: {exc}"
                ) from exc
            if not isinstance(record, dict):
                raise CheckpointError(
                    f"{path}:{lineno}: corrupt sweep manifest entry"
                )
            records.append(record)
        if not records or records[0].get("kind") != "sweep-manifest":
            raise CheckpointError(
                f"{path}: first line must be a sweep-manifest header"
            )
        header = records[0]
        if header.get("version") != _MANIFEST_VERSION:
            raise CheckpointError(
                f"{path}: sweep manifest version {header.get('version')!r}, "
                f"this reader supports {_MANIFEST_VERSION}"
            )
        if header.get("fingerprint") != fingerprint:
            raise CheckpointError(
                f"{path}: sweep manifest belongs to a different grid "
                "(fingerprint mismatch) — pass a fresh --resume path or "
                "rerun the original sweep definition"
            )
        completed: dict[tuple[int, int, int], float] = {}
        for record in records[1:]:
            try:
                coord = (
                    int(record["i"]),
                    int(record["s"]),
                    int(record["p"]),
                )
                completed[coord] = float(record["v"])
            except (KeyError, TypeError, ValueError) as exc:
                raise CheckpointError(
                    f"{path}: corrupt sweep manifest cell {record!r}"
                ) from exc
        return completed, keep

    def record(self, index: int, seed: int, pos: int, value: float) -> None:
        """Persist one completed cell (flushed immediately)."""
        if self._file is None:
            raise CheckpointError(f"{self.path}: sweep manifest closed")
        self._file.write(
            json.dumps(
                {"i": index, "s": seed, "p": pos, "v": value},
                separators=(",", ":"),
            )
            + "\n"
        )
        self._file.flush()

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "SweepManifest":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
