"""The versioned run-checkpoint format: save, load, validate, restore.

File layout
-----------
A checkpoint is one binary file::

    b"REPROCKPT\\n"            -- magic, rejects alien files cheaply
    {"version": 1, ...}\\n      -- JSON header line (UTF-8)
    <pickle blob>              -- everything else, one object graph

The header carries only JSON-safe summary fields (version, policy name,
pool size, server count, events processed, simulated time, caller
metadata) so tooling can inspect a checkpoint without unpickling it.
The blob holds the engine core (one entry per
:data:`repro.sim.engine._CKPT_CORE_FIELDS` name), the policy type and
its :meth:`~repro.policies.base.Scheduler.snapshot` state, and the
optional instrument/writer states — all in a **single** pickle, so
every :class:`~repro.core.transaction.Transaction` shared between the
pool, the SoA table, the event queue, the running map and the policy's
internal structures keeps its object identity on load.  That shared
identity is what makes a resumed run decision-identical to an
uninterrupted one (lazy-heap tie-breaks included).

Writes are atomic (sibling temp file + ``os.replace``): a crash during
``save`` leaves the previous checkpoint intact, never a torn file.

Checkpoints are *trusted local artifacts* of your own runs: loading
unpickles arbitrary objects, exactly like any pickle file.  Validation
(magic, version, header keys, core-field schema) guards against
corruption and version skew, not against adversarial input.
"""

from __future__ import annotations

import json
import os
import pathlib
import pickle
from typing import TYPE_CHECKING, Mapping

from repro.errors import CheckpointError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.jsonl import EventSink
    from repro.policies.base import Scheduler
    from repro.sim.engine import Simulator

__all__ = [
    "CKPT_MAGIC",
    "CKPT_VERSION",
    "Checkpoint",
    "Checkpointer",
    "load_checkpoint",
    "restore_writer",
]

#: Leading bytes of every checkpoint file.
CKPT_MAGIC = b"REPROCKPT\n"

#: Current checkpoint format version; bumped on incompatible changes.
CKPT_VERSION = 1

#: Keys every checkpoint header must carry.
_HEADER_FIELDS = frozenset(
    {
        "version",
        "policy",
        "n",
        "servers",
        "events_processed",
        "now",
        "metadata",
    }
)

#: Keys of the pickled blob.
_BLOB_FIELDS = frozenset(
    {"core", "policy_type", "policy_state", "instrument", "writer"}
)


class Checkpoint:
    """One loaded checkpoint: header summary plus the unpickled state.

    Built by :func:`load_checkpoint` (or by :class:`Checkpointer` in
    tests that skip the file round-trip).  Hand it to
    :meth:`repro.sim.engine.Simulator.resume_from` together with the
    instrument rebuilt by :meth:`restore_instrument` and the writer
    rebuilt by :func:`restore_writer`.
    """

    def __init__(self, header: dict, blob: dict) -> None:
        self.header = header
        self._blob = blob

    # -- header summary -------------------------------------------------
    @property
    def policy_name(self) -> str:
        return str(self.header["policy"])

    @property
    def n(self) -> int:
        return int(self.header["n"])

    @property
    def servers(self) -> int:
        return int(self.header["servers"])

    @property
    def events_processed(self) -> int:
        return int(self.header["events_processed"])

    @property
    def now(self) -> float:
        """Simulated time of the snapshot (exact: JSON floats round-trip)."""
        return float(self.header["now"])

    @property
    def metadata(self) -> dict:
        """Caller metadata (the CLI stores the full run configuration)."""
        return dict(self.header["metadata"])

    # -- pickled state --------------------------------------------------
    @property
    def core(self) -> dict:
        """Engine core state, one entry per ``_CKPT_CORE_FIELDS`` name."""
        return self._blob["core"]

    @property
    def writer_state(self) -> dict | None:
        """The JSONL writer's ``ckpt_state()``, or ``None``."""
        return self._blob["writer"]

    def restore_policy(self) -> "Scheduler":
        """Rebuild the live policy from its snapshotted state."""
        from repro.policies.base import Scheduler

        policy_type = self._blob["policy_type"]
        if not (
            isinstance(policy_type, type) and issubclass(policy_type, Scheduler)
        ):
            raise CheckpointError(
                f"checkpoint policy type {policy_type!r} is not a Scheduler"
            )
        return policy_type.restore(self._blob["policy_state"])

    def restore_instrument(
        self, sink: "EventSink | None" = None
    ) -> object | None:
        """Rebuild the checkpointed instrument, or ``None`` if none rode.

        State-carrying instruments (those with ``to_state``, e.g.
        :class:`~repro.obs.streaming.StreamingRecorder`) are rebuilt via
        their ``from_state(state, sink)``; instruments checkpointed as
        whole objects (e.g. a buffered
        :class:`~repro.obs.recorder.Recorder`, which holds no file
        handles) are returned as unpickled.
        """
        entry = self._blob["instrument"]
        if entry is None:
            return None
        if entry["kind"] == "state":
            return entry["type"].from_state(entry["state"], sink)
        return entry["object"]


class Checkpointer:
    """Persists run snapshots to one file, atomically, as the run goes.

    Attach the same telemetry ``instrument`` and event-log ``writer``
    the run itself uses (or ``None``): their positions are captured in
    the same snapshot as the engine, so a resume restores all three
    layers to the identical cut.  ``metadata`` must be JSON-safe — it
    lands in the inspectable header.  ``max_saves`` bounds how many
    snapshots are taken (the kill-and-recover tests use ``1`` to pin
    the resume point); ``None`` means every due snapshot is written.
    """

    def __init__(
        self,
        path: str | pathlib.Path,
        *,
        instrument: object | None = None,
        writer: object | None = None,
        metadata: Mapping | None = None,
        max_saves: int | None = None,
    ) -> None:
        if max_saves is not None and max_saves < 1:
            raise CheckpointError(
                f"max_saves must be >= 1 or None, got {max_saves}"
            )
        self.path = pathlib.Path(path)
        self.instrument = instrument
        self.writer = writer
        self.metadata = dict(metadata) if metadata is not None else {}
        self.max_saves = max_saves
        self.saves = 0

    def save(self, engine: "Simulator", now: float) -> pathlib.Path:
        """Snapshot ``engine`` (plus instrument/writer) at time ``now``.

        Reads state, never mutates it: a checkpointed run stays
        byte-identical to one that never checkpointed.  The file is
        replaced atomically; the previous snapshot survives a crash
        mid-save.
        """
        if self.max_saves is not None and self.saves >= self.max_saves:
            return self.path
        core = engine._checkpoint_payload()
        policy = engine._policy
        header = {
            "version": CKPT_VERSION,
            "policy": policy.name,
            "n": len(core["_txns"]),  # type: ignore[arg-type]
            "servers": core["_servers"],
            "events_processed": core["_events_processed"],
            "now": now,
            "metadata": self.metadata,
        }
        instrument_entry = None
        if self.instrument is not None:
            to_state = getattr(self.instrument, "to_state", None)
            if to_state is not None:
                instrument_entry = {
                    "kind": "state",
                    "type": type(self.instrument),
                    "state": to_state(),
                }
            else:
                instrument_entry = {"kind": "object", "object": self.instrument}
        blob = {
            "core": core,
            "policy_type": type(policy),
            "policy_state": policy.snapshot(),
            "instrument": instrument_entry,
            "writer": (
                self.writer.ckpt_state()  # type: ignore[attr-defined]
                if self.writer is not None
                else None
            ),
        }
        payload = pickle.dumps(blob, protocol=pickle.HIGHEST_PROTOCOL)
        tmp = self.path.with_name(self.path.name + ".tmp")
        with tmp.open("wb") as handle:
            handle.write(CKPT_MAGIC)
            handle.write(
                json.dumps(
                    header, separators=(",", ":"), sort_keys=True
                ).encode("utf-8")
            )
            handle.write(b"\n")
            handle.write(payload)
        os.replace(tmp, self.path)
        self.saves += 1
        return self.path


def load_checkpoint(path: str | pathlib.Path) -> Checkpoint:
    """Load and validate a checkpoint file.

    Raises :class:`~repro.errors.CheckpointError` on a missing file, a
    wrong magic, an unsupported version, a torn/corrupt payload, or a
    core-state schema that does not match this engine's
    ``_CKPT_CORE_FIELDS`` — version skew must fail loudly, not resume
    into a subtly different run.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise CheckpointError(f"{path}: no such checkpoint")
    data = path.read_bytes()
    if not data.startswith(CKPT_MAGIC):
        raise CheckpointError(f"{path}: not a repro checkpoint (bad magic)")
    header_end = data.find(b"\n", len(CKPT_MAGIC))
    if header_end < 0:
        raise CheckpointError(f"{path}: truncated checkpoint header")
    try:
        header = json.loads(data[len(CKPT_MAGIC) : header_end])
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"{path}: corrupt checkpoint header: {exc}"
        ) from exc
    if not isinstance(header, dict) or set(header) != _HEADER_FIELDS:
        raise CheckpointError(
            f"{path}: checkpoint header fields "
            f"{sorted(header) if isinstance(header, dict) else header!r} "
            f"do not match {sorted(_HEADER_FIELDS)}"
        )
    version = header["version"]
    if version != CKPT_VERSION:
        raise CheckpointError(
            f"{path}: checkpoint version {version!r}, this reader "
            f"supports {CKPT_VERSION}"
        )
    try:
        blob = pickle.loads(data[header_end + 1 :])
    except Exception as exc:  # noqa: BLE001 - pickle raises many types
        raise CheckpointError(
            f"{path}: corrupt checkpoint payload: {exc!r}"
        ) from exc
    if not isinstance(blob, dict) or set(blob) != _BLOB_FIELDS:
        raise CheckpointError(
            f"{path}: checkpoint payload fields do not match "
            f"{sorted(_BLOB_FIELDS)}"
        )
    from repro.sim.engine import _CKPT_CORE_FIELDS

    core = blob["core"]
    if not isinstance(core, dict) or set(core) != set(_CKPT_CORE_FIELDS):
        raise CheckpointError(
            f"{path}: checkpoint core state does not match this engine's "
            "schema (version skew?)"
        )
    return Checkpoint(header, blob)


def restore_writer(state: Mapping | None) -> object | None:
    """Resume the event-log writer a checkpoint captured, if any.

    Dispatches on the state's ``writer`` tag to
    :meth:`~repro.obs.jsonl.JsonlWriter.resume` or
    :meth:`~repro.obs.jsonl.RotatingJsonlWriter.resume`: the log is
    truncated back to the snapshot's record count and reopened for
    append, so the finished file is byte-identical to an uninterrupted
    run's.
    """
    if state is None:
        return None
    from repro.obs.jsonl import JsonlWriter, RotatingJsonlWriter

    tag = state["writer"]
    if tag == "plain":
        return JsonlWriter.resume(state)
    if tag == "rotating":
        return RotatingJsonlWriter.resume(state)
    raise CheckpointError(f"unknown checkpointed writer type {tag!r}")
