"""Crash-resilient runs: deterministic checkpoint/resume.

A long simulation or sweep should survive a SIGKILL, an OOM kill, or a
Ctrl-C without losing hours of work.  This package provides the two
persistence layers that make that possible:

* :mod:`repro.ckpt.snapshot` — a versioned single-file snapshot of one
  *run*: the engine's full state (event queue, SoA columns, ready set,
  running-server book-keeping, fault cursors) in one pickle graph,
  the policy's state via :meth:`repro.policies.base.Scheduler.snapshot`,
  the streaming-telemetry accumulators, and the JSONL writer position.
  ``Simulator.resume_from`` rebuilds the run mid-flight; the contract is
  that a killed-and-resumed run produces **byte-identical** JSONL events
  and an equal :class:`~repro.sim.results.SimulationResult` to an
  uninterrupted run.
* :mod:`repro.ckpt.sweep` — an append-only per-cell completion manifest
  for :func:`repro.experiments.parallel.grid_sweep`: completed
  ``(column, seed, policy)`` cells are skipped on restart and the merged
  series stays byte-identical to a fresh sequential run.

Determinism is the design constraint throughout: saving a checkpoint
never mutates run state, resume restores raw accumulator fields (never
derived values), and shared object identity inside the pickle graph
preserves every tie-break the live run would have made.
"""

from __future__ import annotations

from repro.ckpt.snapshot import (
    CKPT_MAGIC,
    CKPT_VERSION,
    Checkpoint,
    Checkpointer,
    load_checkpoint,
    restore_writer,
)
from repro.ckpt.sweep import SweepManifest, grid_fingerprint

__all__ = [
    "CKPT_MAGIC",
    "CKPT_VERSION",
    "Checkpoint",
    "Checkpointer",
    "SweepManifest",
    "grid_fingerprint",
    "load_checkpoint",
    "restore_writer",
]
