"""Workload specification: every knob of Table I in one frozen dataclass."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import WorkloadError

__all__ = ["WorkloadSpec"]


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """Parameters of one synthetic workload (Table I).

    Attributes
    ----------
    n_transactions:
        Number of transactions per run (paper: 1000).
    utilization:
        Target system utilization; sets the Poisson arrival rate to
        ``utilization / mean_length`` (paper sweeps 0.1 ... 1.0).
    zipf_alpha:
        Skew of the Zipf length distribution (paper default 0.5).
    length_min / length_max:
        Support of the length distribution (paper: [1, 50] time units).
    k_max:
        Upper bound of the uniform slack factor :math:`k_i` (paper
        default 3.0; Figures 11-13 use 1, 2 and 4).
    weighted:
        When True, weights are uniform integers in
        [``weight_min``, ``weight_max``]; otherwise every weight is 1.
    weight_min / weight_max:
        Support of the weight distribution (paper: [1, 10]).
    with_workflows:
        When True, transactions are linked into random dependency chains.
    max_workflow_length:
        Upper bound :math:`L_{max}` of the chain length (paper varies 3-10;
        Figure 14 uses 5).
    max_workflows_per_txn:
        Upper bound :math:`W_{max}` on how many chains one transaction may
        join (paper varies 1-10; Figure 14 uses 1).
    use_empirical_mean:
        When True, the arrival rate uses the mean of the actually sampled
        lengths instead of the analytical Zipf mean, pinning the realised
        utilization to the target exactly.
    length_estimate_error:
        Maximum relative error of the scheduler's length estimates
        (Section II-A assumes profile-based estimates).  0 (default)
        gives perfect estimates; ``e`` draws each estimate uniformly from
        :math:`l (1 \\pm e)`.  True lengths, deadlines and offered load
        are unaffected — only what SRPT/HDF/ASETS believe.
    """

    n_transactions: int = 1000
    utilization: float = 0.5
    zipf_alpha: float = 0.5
    length_min: int = 1
    length_max: int = 50
    k_max: float = 3.0
    weighted: bool = False
    weight_min: int = 1
    weight_max: int = 10
    with_workflows: bool = False
    max_workflow_length: int = 5
    max_workflows_per_txn: int = 1
    use_empirical_mean: bool = False
    length_estimate_error: float = 0.0

    def __post_init__(self) -> None:
        if self.n_transactions < 1:
            raise WorkloadError("n_transactions must be >= 1")
        if not 0 < self.utilization:
            raise WorkloadError(
                f"utilization must be > 0, got {self.utilization}"
            )
        if self.zipf_alpha < 0:
            raise WorkloadError(f"zipf_alpha must be >= 0, got {self.zipf_alpha}")
        if not 1 <= self.length_min <= self.length_max:
            raise WorkloadError(
                f"need 1 <= length_min <= length_max, got "
                f"[{self.length_min}, {self.length_max}]"
            )
        if self.k_max < 0:
            raise WorkloadError(f"k_max must be >= 0, got {self.k_max}")
        if not 1 <= self.weight_min <= self.weight_max:
            raise WorkloadError(
                f"need 1 <= weight_min <= weight_max, got "
                f"[{self.weight_min}, {self.weight_max}]"
            )
        if self.max_workflow_length < 1:
            raise WorkloadError("max_workflow_length must be >= 1")
        if self.max_workflows_per_txn < 1:
            raise WorkloadError("max_workflows_per_txn must be >= 1")
        if self.length_estimate_error < 0:
            raise WorkloadError(
                f"length_estimate_error must be >= 0, "
                f"got {self.length_estimate_error}"
            )

    def with_utilization(self, utilization: float) -> "WorkloadSpec":
        """Copy of this spec at a different utilization (sweep helper)."""
        return replace(self, utilization=utilization)

    def with_k_max(self, k_max: float) -> "WorkloadSpec":
        """Copy of this spec with a different slack-factor bound."""
        return replace(self, k_max=k_max)

    def with_alpha(self, zipf_alpha: float) -> "WorkloadSpec":
        """Copy of this spec with a different length-distribution skew."""
        return replace(self, zipf_alpha=zipf_alpha)
