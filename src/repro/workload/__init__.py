"""Synthetic workload generation (Section IV-A, Table I).

The paper's workloads consist of 1000 transactions whose

* lengths follow a Zipf(:math:`\\alpha`) distribution over [1, 50],
  skewed toward short transactions (default :math:`\\alpha = 0.5`);
* arrival times follow a Poisson process with rate
  ``utilization / average transaction length``;
* deadlines are :math:`d_i = a_i + l_i + k_i l_i` with a slack factor
  :math:`k_i \\sim U[0, k_{max}]` (default :math:`k_{max} = 3`);
* weights are uniform integers in [1, 10] (unit weights in the
  unweighted experiments);
* workflows are random chains with length :math:`\\sim U\\{1..L_{max}\\}`
  where a transaction belongs to up to :math:`W_{max}` chains.

Entry point::

    from repro.workload import WorkloadSpec, generate
    workload = generate(WorkloadSpec(utilization=0.6), seed=1)
"""

from repro.workload.spec import WorkloadSpec
from repro.workload.zipf import ZipfSampler
from repro.workload.arrivals import poisson_arrivals
from repro.workload.deadlines import assign_deadlines
from repro.workload.weights import sample_weights
from repro.workload.workflows import ChainPlan, plan_chains
from repro.workload.generator import Workload, generate
from repro.workload.estimates import sample_estimates
from repro.workload.io import load_workload, save_workload

__all__ = [
    "WorkloadSpec",
    "ZipfSampler",
    "poisson_arrivals",
    "assign_deadlines",
    "sample_weights",
    "ChainPlan",
    "plan_chains",
    "Workload",
    "generate",
    "sample_estimates",
    "save_workload",
    "load_workload",
]
