"""Command-line workload tooling.

Three subcommands around saved workload traces::

    python -m repro.workload generate --n 500 --utilization 0.8 \\
        --workflows --weighted --seed 7 --out trace.json
    python -m repro.workload stats trace.json
    python -m repro.workload simulate trace.json --policy asets --gantt

``generate`` materialises a Table-I workload to JSON; ``stats`` prints
the diagnostics of :mod:`repro.workload.stats` (including the
deadline/precedence conflict rate); ``simulate`` replays the trace under
any registry policy, reports the tardiness metrics, and can render an
ASCII Gantt chart of the schedule.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.errors import ReproError
from repro.metrics.report import format_table
from repro.policies.registry import available_policies, make_policy
from repro.sim.engine import Simulator
from repro.sim.gantt import render_gantt
from repro.workload.generator import generate
from repro.workload.io import load_workload, save_workload
from repro.workload.spec import WorkloadSpec
from repro.workload.stats import summarize

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-workload",
        description="Generate, inspect and replay workload traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a workload and save it")
    gen.add_argument("--n", type=int, default=1000, help="transactions")
    gen.add_argument("--utilization", type=float, default=0.5)
    gen.add_argument("--alpha", type=float, default=0.5, help="Zipf skew")
    gen.add_argument("--k-max", type=float, default=3.0, dest="k_max")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--weighted", action="store_true")
    gen.add_argument("--workflows", action="store_true")
    gen.add_argument(
        "--estimate-error",
        type=float,
        default=0.0,
        help="max relative length-estimation error",
    )
    gen.add_argument("--out", required=True, help="output JSON path")

    stats = sub.add_parser("stats", help="summarize a saved workload")
    stats.add_argument("path", help="workload JSON file")

    sim = sub.add_parser("simulate", help="replay a saved workload")
    sim.add_argument("path", help="workload JSON file")
    sim.add_argument(
        "--policy",
        default="asets",
        choices=available_policies(),
    )
    sim.add_argument("--servers", type=int, default=1)
    sim.add_argument(
        "--gantt", action="store_true", help="render an ASCII Gantt chart"
    )
    sim.add_argument(
        "--gantt-width", type=int, default=72, help="Gantt chart width"
    )
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    spec = WorkloadSpec(
        n_transactions=args.n,
        utilization=args.utilization,
        zipf_alpha=args.alpha,
        k_max=args.k_max,
        weighted=args.weighted,
        with_workflows=args.workflows,
        length_estimate_error=args.estimate_error,
    )
    workload = generate(spec, seed=args.seed)
    path = save_workload(workload, args.out)
    print(
        f"wrote {workload.n} transactions "
        f"(utilization {spec.utilization}, seed {args.seed}) to {path}"
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    workload = load_workload(args.path)
    stats = summarize(workload)
    print(format_table(["property", "value"], stats.as_rows()))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    workload = load_workload(args.path)
    kwargs = {"time_rate": 0.01} if args.policy == "balance-aware" else {}
    result = Simulator(
        workload.transactions,
        make_policy(args.policy, **kwargs),
        workflow_set=workload.workflow_set,
        record_trace=args.gantt,
        servers=args.servers,
    ).run()
    rows = [
        ("policy", args.policy),
        ("transactions", result.n),
        ("average tardiness", result.average_tardiness),
        ("average weighted tardiness", result.average_weighted_tardiness),
        ("max weighted tardiness", result.max_weighted_tardiness),
        ("deadline miss ratio", result.deadline_miss_ratio),
        ("makespan", result.makespan),
    ]
    print(format_table(["metric", "value"], rows))
    if args.gantt:
        print()
        print(render_gantt(result.trace, width=args.gantt_width))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "generate":
            return _cmd_generate(args)
        if args.command == "stats":
            return _cmd_stats(args)
        return _cmd_simulate(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
