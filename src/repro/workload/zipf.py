"""Bounded Zipf sampling for transaction lengths.

The paper draws transaction lengths from a Zipf(:math:`\\alpha`)
distribution over the integers [1, 50], "skewed toward short
transactions": :math:`P(l = j) \\propto 1/j^{\\alpha}`.  Larger
:math:`\\alpha` concentrates more mass on short lengths.
:math:`\\alpha = 0` degenerates to the uniform distribution.
"""

from __future__ import annotations

import bisect
import random

from repro.errors import WorkloadError

__all__ = ["ZipfSampler"]


class ZipfSampler:
    """Inverse-CDF sampler for a bounded Zipf distribution.

    Parameters
    ----------
    alpha:
        Skew parameter :math:`\\alpha \\ge 0`.
    low / high:
        Inclusive integer support bounds.

    Examples
    --------
    >>> s = ZipfSampler(alpha=0.5, low=1, high=50)
    >>> 1 <= s.sample(random.Random(0)) <= 50
    True
    >>> round(s.mean(), 3)  # analytical mean, used for the arrival rate
    18.744
    """

    def __init__(self, alpha: float, low: int = 1, high: int = 50) -> None:
        if alpha < 0:
            raise WorkloadError(f"alpha must be >= 0, got {alpha}")
        if not 1 <= low <= high:
            raise WorkloadError(f"need 1 <= low <= high, got [{low}, {high}]")
        self.alpha = alpha
        self.low = low
        self.high = high
        weights = [1.0 / (j**alpha) for j in range(low, high + 1)]
        total = sum(weights)
        self._pmf = [w / total for w in weights]
        self._cdf: list[float] = []
        acc = 0.0
        for p in self._pmf:
            acc += p
            self._cdf.append(acc)
        self._cdf[-1] = 1.0  # guard against floating-point shortfall

    def pmf(self, value: int) -> float:
        """Probability of drawing ``value``."""
        if not self.low <= value <= self.high:
            return 0.0
        return self._pmf[value - self.low]

    def mean(self) -> float:
        """Analytical mean :math:`E[l] = \\sum j \\cdot p_j`.

        This is the "average transaction length" in the paper's arrival
        rate formula ``rate = utilization / avg length``.
        """
        return sum(
            (self.low + i) * p for i, p in enumerate(self._pmf)
        )

    def sample(self, rng: random.Random) -> int:
        """Draw one length using inverse-CDF sampling."""
        u = rng.random()
        return self.low + bisect.bisect_left(self._cdf, u)

    def sample_many(self, rng: random.Random, n: int) -> list[int]:
        """Draw ``n`` independent lengths."""
        if n < 0:
            raise WorkloadError(f"cannot sample {n} values")
        return [self.sample(rng) for _ in range(n)]
