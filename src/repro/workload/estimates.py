"""Length-estimate noise.

Section II-A: "The length of the transaction :math:`r_i` is typically
computed by the system based on previous statistics and profiles of
transaction execution" — i.e. a real scheduler works with *estimates*.
This module injects controlled multiplicative error into the length
estimates that the length-aware policies (SRPT, HDF, ASETS, ASETS*)
consume, leaving the true lengths — and therefore the deadlines and the
offered load — untouched, so robustness sweeps are paired comparisons on
identical workloads.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.errors import WorkloadError

__all__ = ["sample_estimates"]


def sample_estimates(
    rng: random.Random,
    lengths: Sequence[float],
    relative_error: float,
) -> list[float]:
    """Noisy estimates: :math:`\\hat{l} = l (1 + U[-e, e])`, floored.

    Parameters
    ----------
    rng:
        Source of randomness.
    lengths:
        True transaction lengths.
    relative_error:
        Maximum relative error :math:`e \\ge 0`.  0 returns the true
        lengths; 1 allows estimates from (almost) 0 to twice the truth.

    The floor keeps estimates strictly positive (an estimate of 0 would
    give infinite density); the minimum is a small fraction of the true
    length so that heavily under-estimated transactions still look
    "almost done" to SRPT-style policies — the realistic failure mode.
    """
    if relative_error < 0:
        raise WorkloadError(
            f"relative_error must be >= 0, got {relative_error}"
        )
    if relative_error == 0:
        return [float(l) for l in lengths]
    estimates = []
    for length in lengths:
        noise = rng.uniform(-relative_error, relative_error)
        estimates.append(max(0.05 * length, length * (1.0 + noise)))
    return estimates
