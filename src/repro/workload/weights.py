"""Weight assignment.

In the weighted experiments (Sections IV-E and IV-F) every transaction
gets a weight drawn uniformly from the integers [1, 10]; in the
unweighted experiments all weights are 1, under which HDF reduces to SRPT
and weighted tardiness reduces to plain tardiness.
"""

from __future__ import annotations

import random

from repro.errors import WorkloadError

__all__ = ["sample_weights"]


def sample_weights(
    rng: random.Random,
    n: int,
    weight_min: int = 1,
    weight_max: int = 10,
    weighted: bool = True,
) -> list[float]:
    """Return ``n`` weights; all ones when ``weighted`` is False."""
    if n < 0:
        raise WorkloadError(f"cannot sample {n} weights")
    if not 1 <= weight_min <= weight_max:
        raise WorkloadError(
            f"need 1 <= weight_min <= weight_max, got "
            f"[{weight_min}, {weight_max}]"
        )
    if not weighted:
        return [1.0] * n
    return [float(rng.randint(weight_min, weight_max)) for _ in range(n)]
