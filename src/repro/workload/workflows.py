"""Random workflow (dependency-chain) generation.

Section IV-A generates workflows from two parameters: the **maximum
workflow length** :math:`L_{max}` (chain length drawn uniformly from
:math:`\\{1..L_{max}\\}`) and the **maximum number of workflows**
:math:`W_{max}` a transaction may belong to (membership drawn uniformly
from :math:`\\{1..W_{max}\\}`).

The paper does not say *which* transactions are linked into a chain.  We
link **temporally adjacent** transactions: the members of one chain are
consecutive (in arrival order) transactions, mirroring the application
scenario of Section II-B where the transactions of one dynamic page are
submitted together when the user logs on.  Transactions keep their
individual Poisson arrival times (Table I's stated arrival process) and
their individual deadlines :math:`d_i = a_i + l_i + k_i l_i` (Table I's
stated formula) — which is exactly what produces the paper's
deadline/precedence *conflicts*: a dependent transaction arriving
moments after its predecessor can easily be due before it.

Planning algorithm: every transaction gets a membership budget
:math:`w_i \\sim U\\{1..W_{max}\\}`.  A sliding cursor walks the arrival
order; each step forms a chain from the next :math:`c \\sim U\\{1..L_{max}\\}`
transactions with remaining budget, links them in arrival order (edges
always point forward in the global order, so any union of chains is
acyclic), decrements their budgets, and advances the cursor by a random
offset inside the chain so that chains *overlap* when budgets allow —
that overlap is how one transaction comes to belong to several
workflows.  Every transaction joins at least one chain (a length-1 chain
is a singleton workflow, i.e. an independent transaction).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import WorkloadError

__all__ = ["ChainPlan", "plan_chains"]


@dataclass(slots=True)
class ChainPlan:
    """The outcome of chain planning over one workload.

    Attributes
    ----------
    chains:
        Each chain is a list of transaction indices in arrival order,
        linked leaf-to-root: element ``j+1`` depends on element ``j``.
    depends_on:
        Per-transaction dependency sets implied by the chains (direct
        predecessors only; the transitive closure is the workflow).
    """

    chains: list[list[int]] = field(default_factory=list)
    depends_on: dict[int, set[int]] = field(default_factory=dict)

    @property
    def n_chains(self) -> int:
        return len(self.chains)

    def membership_count(self, index: int) -> int:
        """Number of chains transaction ``index`` was planned into."""
        return sum(1 for chain in self.chains if index in chain)

    def chain_lengths(self) -> list[int]:
        return [len(chain) for chain in self.chains]


def plan_chains(
    rng: random.Random,
    n: int,
    max_workflow_length: int,
    max_workflows_per_txn: int,
) -> ChainPlan:
    """Plan dependency chains over ``n`` transactions (see module docstring).

    Parameters
    ----------
    rng:
        Source of randomness.
    n:
        Number of transactions in the pool (indices 0..n-1, assumed to be
        in arrival order).
    max_workflow_length:
        :math:`L_{max} \\ge 1`.
    max_workflows_per_txn:
        :math:`W_{max} \\ge 1`.
    """
    if n < 1:
        raise WorkloadError("cannot plan chains over an empty workload")
    if max_workflow_length < 1 or max_workflows_per_txn < 1:
        raise WorkloadError("chain parameters must be >= 1")

    budget = [rng.randint(1, max_workflows_per_txn) for _ in range(n)]
    plan = ChainPlan(depends_on={i: set() for i in range(n)})
    cursor = 0
    while cursor < n:
        target_len = rng.randint(1, max_workflow_length)
        members: list[int] = []
        i = cursor
        while i < n and len(members) < target_len:
            if budget[i] > 0:
                members.append(i)
            i += 1
        if not members:
            break
        plan.chains.append(members)
        for prev, succ in zip(members, members[1:]):
            plan.depends_on[succ].add(prev)
        for m in members:
            budget[m] -= 1
        # Advance by a random offset within the chain so later chains can
        # overlap this one while the cursor still makes progress; skip
        # transactions whose budgets are exhausted.
        cursor = members[0] + rng.randint(1, len(members))
        while cursor < n and budget[cursor] == 0:
            cursor += 1

    return plan
