"""Workload persistence: save and load generated traces as JSON.

Reproducibility artifact: a generated workload (or one captured from a
real system in the same shape) can be written to disk and replayed later
— or on another machine — without depending on the generator's RNG
remaining bit-identical across Python versions.  The file stores the
complete per-transaction record plus the generating spec and seed for
provenance.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import asdict

from repro.core.transaction import Transaction
from repro.core.workflow_set import WorkflowSet
from repro.errors import WorkloadError
from repro.workload.generator import Workload
from repro.workload.spec import WorkloadSpec

__all__ = ["save_workload", "load_workload", "workload_to_dict"]

#: Format marker for forward compatibility.
_FORMAT = "repro-workload-v1"


def workload_to_dict(workload: Workload) -> dict:
    """The JSON-ready representation of a workload."""
    return {
        "format": _FORMAT,
        "spec": asdict(workload.spec),
        "seed": workload.seed,
        "mean_length": workload.mean_length,
        "rate": workload.rate,
        "transactions": [
            {
                "id": t.txn_id,
                "arrival": t.arrival,
                "length": t.length,
                "deadline": t.deadline,
                "weight": t.weight,
                "depends_on": list(t.depends_on),
                "length_estimate": t.length_estimate,
            }
            for t in workload.transactions
        ],
    }


def save_workload(workload: Workload, path: str | pathlib.Path) -> pathlib.Path:
    """Write ``workload`` to ``path`` as JSON; returns the path."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(workload_to_dict(workload), indent=2))
    return path


def load_workload(path: str | pathlib.Path) -> Workload:
    """Load a workload previously written by :func:`save_workload`.

    Transactions are rebuilt in a pre-simulation state; the workflow set
    is re-derived from the dependency lists when any exist.
    """
    path = pathlib.Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise WorkloadError(f"cannot read workload file {path}: {exc}") from exc
    if payload.get("format") != _FORMAT:
        raise WorkloadError(
            f"{path} is not a {_FORMAT} file "
            f"(format={payload.get('format')!r})"
        )
    for key in ("spec", "seed", "transactions"):
        if key not in payload:
            raise WorkloadError(f"workload file {path} missing key {key!r}")
    try:
        spec = WorkloadSpec(**payload["spec"])
    except TypeError as exc:
        raise WorkloadError(f"workload file {path} has a bad spec: {exc}") from exc
    transactions = [
        Transaction(
            txn_id=record["id"],
            arrival=record["arrival"],
            length=record["length"],
            deadline=record["deadline"],
            weight=record.get("weight", 1.0),
            depends_on=record.get("depends_on", ()),
            length_estimate=record.get("length_estimate"),
        )
        for record in payload["transactions"]
    ]
    has_deps = any(t.depends_on for t in transactions)
    workflow_set = (
        WorkflowSet(transactions) if (spec.with_workflows or has_deps) else None
    )
    if workflow_set is not None:
        workflow_set.validate_acyclic()
    return Workload(
        spec=spec,
        seed=payload["seed"],
        transactions=transactions,
        workflow_set=workflow_set,
        mean_length=payload.get("mean_length", 0.0),
        rate=payload.get("rate", 0.0),
    )
