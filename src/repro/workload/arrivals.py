"""Poisson arrival process.

Arrival times are the cumulative sums of i.i.d. exponential inter-arrival
gaps with rate ``utilization / mean_length`` (Section IV-A): at rate
:math:`\\lambda` and mean length :math:`E[l]` the long-run demand is
:math:`\\lambda E[l]` server-seconds per second — exactly the target
utilization.
"""

from __future__ import annotations

import random

from repro.errors import WorkloadError

__all__ = ["poisson_arrivals", "arrival_rate"]


def arrival_rate(utilization: float, mean_length: float) -> float:
    """The paper's arrival-rate formula: ``utilization / mean_length``."""
    if utilization <= 0:
        raise WorkloadError(f"utilization must be > 0, got {utilization}")
    if mean_length <= 0:
        raise WorkloadError(f"mean_length must be > 0, got {mean_length}")
    return utilization / mean_length


def poisson_arrivals(
    rng: random.Random, n: int, rate: float, start: float = 0.0
) -> list[float]:
    """Return ``n`` arrival times of a Poisson process with ``rate``.

    The first transaction arrives after one exponential gap from
    ``start``, so arrival times are strictly increasing almost surely.
    """
    if n < 0:
        raise WorkloadError(f"cannot generate {n} arrivals")
    if rate <= 0:
        raise WorkloadError(f"rate must be > 0, got {rate}")
    times = []
    t = start
    for _ in range(n):
        t += rng.expovariate(rate)
        times.append(t)
    return times
