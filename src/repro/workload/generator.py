"""Top-level workload generation.

Composes the samplers of this subpackage into the paper's pipeline
(Section IV-A): lengths first, then Poisson arrivals at the target
utilization, then deadlines, weights and (optionally) dependency chains.

Every transaction — whether independent or part of a workflow — arrives
individually from a Poisson process with rate
``utilization / mean_length`` and receives the deadline
:math:`d_i = a_i + l_i + k_i l_i`, exactly as Table I states.  Workflow
workloads additionally link temporally adjacent transactions into
dependency chains (see :mod:`repro.workload.workflows`), which is what
creates the paper's deadline/precedence conflicts.

Randomness is split into independent substreams — one per aspect, derived
deterministically from the caller's seed — so changing, say, ``k_max``
perturbs only the deadlines while lengths and arrivals stay identical
across configurations, which keeps the figure sweeps comparable just like
reusing the same trace in the authors' simulator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.transaction import Transaction
from repro.core.workflow_set import WorkflowSet
from repro.errors import WorkloadError
from repro.workload.arrivals import arrival_rate, poisson_arrivals
from repro.workload.deadlines import assign_deadlines
from repro.workload.estimates import sample_estimates
from repro.workload.spec import WorkloadSpec
from repro.workload.weights import sample_weights
from repro.workload.workflows import plan_chains
from repro.workload.zipf import ZipfSampler

__all__ = ["Workload", "generate"]

# Fixed offsets that decorrelate the per-aspect random substreams.
_STREAM_LENGTHS = 0x5EED_0001
_STREAM_ARRIVALS = 0x5EED_0002
_STREAM_DEADLINES = 0x5EED_0003
_STREAM_WEIGHTS = 0x5EED_0004
_STREAM_CHAINS = 0x5EED_0005
_STREAM_ESTIMATES = 0x5EED_0006


@dataclass(slots=True)
class Workload:
    """A generated workload plus the metadata experiments report.

    ``transactions`` are ordered by id, which equals arrival order.
    ``workflow_set`` is ``None`` for independent workloads.  ``rate`` is
    the per-transaction Poisson arrival rate.
    """

    spec: WorkloadSpec
    seed: int
    transactions: list[Transaction]
    workflow_set: WorkflowSet | None
    mean_length: float
    rate: float

    @property
    def n(self) -> int:
        return len(self.transactions)

    def reset(self) -> None:
        """Reset every transaction for replay under another policy."""
        for txn in self.transactions:
            txn.reset()
        if self.workflow_set is not None:
            for wf in self.workflow_set:
                wf.invalidate()

    def total_work(self) -> float:
        """Sum of all transaction lengths (server-time demand)."""
        return sum(txn.length for txn in self.transactions)

    def realized_utilization(self) -> float:
        """Offered load over the arrival span: total work / time horizon.

        A finite-sample estimate that fluctuates around
        ``spec.utilization`` run to run.
        """
        horizon = max(txn.arrival for txn in self.transactions)
        if horizon <= 0:
            return float("inf")
        return self.total_work() / horizon


def _substream(seed: int, offset: int) -> random.Random:
    # Tuple hashing over ints is deterministic (no string randomisation),
    # giving decorrelated, reproducible substreams.
    return random.Random(hash((seed, offset)))


def generate(spec: WorkloadSpec, seed: int = 0) -> Workload:
    """Generate one workload from ``spec`` using ``seed``.

    Examples
    --------
    >>> w = generate(WorkloadSpec(n_transactions=10, utilization=0.5), seed=1)
    >>> w.n
    10
    >>> all(t.deadline >= t.arrival + t.length for t in w.transactions)
    True
    """
    n = spec.n_transactions
    sampler = ZipfSampler(spec.zipf_alpha, spec.length_min, spec.length_max)
    lengths = sampler.sample_many(_substream(seed, _STREAM_LENGTHS), n)

    if spec.use_empirical_mean:
        mean_length = sum(lengths) / n
    else:
        mean_length = sampler.mean()

    rate = arrival_rate(spec.utilization, mean_length)
    arrivals = poisson_arrivals(_substream(seed, _STREAM_ARRIVALS), n, rate)

    depends_on: dict[int, set[int]] = {i: set() for i in range(n)}
    if spec.with_workflows:
        plan = plan_chains(
            _substream(seed, _STREAM_CHAINS),
            n,
            spec.max_workflow_length,
            spec.max_workflows_per_txn,
        )
        depends_on = plan.depends_on
        covered = {i for chain in plan.chains for i in chain}
        uncovered = [i for i in range(n) if i not in covered]
        if uncovered:
            raise WorkloadError(
                f"chain planning left transactions without a chain: {uncovered}"
            )

    deadlines = assign_deadlines(
        _substream(seed, _STREAM_DEADLINES), arrivals, lengths, spec.k_max
    )
    weights = sample_weights(
        _substream(seed, _STREAM_WEIGHTS),
        n,
        spec.weight_min,
        spec.weight_max,
        weighted=spec.weighted,
    )

    estimates = sample_estimates(
        _substream(seed, _STREAM_ESTIMATES),
        [float(l) for l in lengths],
        spec.length_estimate_error,
    )

    transactions = [
        Transaction(
            txn_id=i,
            arrival=arrivals[i],
            length=float(lengths[i]),
            deadline=deadlines[i],
            weight=weights[i],
            depends_on=sorted(depends_on[i]),
            length_estimate=estimates[i],
        )
        for i in range(n)
    ]

    workflow_set = WorkflowSet(transactions) if spec.with_workflows else None
    if workflow_set is not None:
        workflow_set.validate_acyclic()

    return Workload(
        spec=spec,
        seed=seed,
        transactions=transactions,
        workflow_set=workflow_set,
        mean_length=mean_length,
        rate=rate,
    )
