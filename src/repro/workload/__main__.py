"""Allow ``python -m repro.workload <command>``."""

from repro.workload.cli import main

raise SystemExit(main())
