"""Workload diagnostics.

Summaries of a generated (or loaded) workload that the paper's narrative
leans on but never quantifies, most importantly the **conflict rate**:
the fraction of dependent transactions whose deadline precedes the
deadline of something they must wait for.  Those conflicts are exactly
why EDF is not optimal under precedence constraints (§II-B's stock-alert
example, [13]'s consistency condition) and why ASETS*'s representative
boosting has something to exploit — a workload with zero conflicts gives
workflow-level scheduling no edge over the Ready baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.workload.generator import Workload

__all__ = ["WorkloadStats", "summarize"]


@dataclass(frozen=True, slots=True)
class WorkloadStats:
    """Aggregate facts about one workload."""

    n_transactions: int
    n_dependent: int
    n_workflows: int
    mean_length: float
    max_chain_depth: int
    #: Dependent transactions whose deadline precedes some (transitive)
    #: predecessor's deadline — the paper's deadline/precedence conflicts.
    n_conflicted: int
    #: Dependent transactions that cannot possibly meet their deadline
    #: because the work of their dependency closure exceeds their slack.
    n_structurally_tardy: int

    @property
    def dependent_ratio(self) -> float:
        return self.n_dependent / self.n_transactions

    @property
    def conflict_rate(self) -> float:
        """Conflicted dependents as a fraction of all dependents."""
        if self.n_dependent == 0:
            return 0.0
        return self.n_conflicted / self.n_dependent

    @property
    def structural_tardiness_rate(self) -> float:
        if self.n_dependent == 0:
            return 0.0
        return self.n_structurally_tardy / self.n_dependent

    def as_rows(self) -> list[tuple[str, float]]:
        """Key/value rows for tabular display."""
        return [
            ("transactions", float(self.n_transactions)),
            ("dependent transactions", float(self.n_dependent)),
            ("workflows", float(self.n_workflows)),
            ("mean length", self.mean_length),
            ("max chain depth", float(self.max_chain_depth)),
            ("deadline/precedence conflicts", float(self.n_conflicted)),
            ("conflict rate among dependents", self.conflict_rate),
            ("structurally tardy dependents", float(self.n_structurally_tardy)),
        ]


def summarize(workload: Workload) -> WorkloadStats:
    """Compute :class:`WorkloadStats` for ``workload``.

    Walks each transaction's dependency closure once (memoised), so the
    cost is linear in the total closure size.
    """
    txns = {t.txn_id: t for t in workload.transactions}
    if not txns:
        raise WorkloadError("cannot summarize an empty workload")

    # Memoised per-transaction closure facts: (depth, min predecessor
    # deadline, total closure work excluding self).
    depth: dict[int, int] = {}
    earliest_pred_deadline: dict[int, float] = {}
    closure_work: dict[int, float] = {}

    def visit(tid: int) -> None:
        if tid in depth:
            return
        txn = txns[tid]
        if not txn.depends_on:
            depth[tid] = 1
            earliest_pred_deadline[tid] = float("inf")
            closure_work[tid] = 0.0
            return
        best_deadline = float("inf")
        max_depth = 0
        work = 0.0
        seen: set[int] = set()
        stack = list(txn.depends_on)
        while stack:
            pred_id = stack.pop()
            if pred_id in seen:
                continue
            seen.add(pred_id)
            pred = txns[pred_id]
            best_deadline = min(best_deadline, pred.deadline)
            work += pred.length
            stack.extend(pred.depends_on)
        for pred_id in txn.depends_on:
            visit(pred_id)
            max_depth = max(max_depth, depth[pred_id])
        depth[tid] = max_depth + 1
        earliest_pred_deadline[tid] = best_deadline
        closure_work[tid] = work

    for tid in sorted(txns):
        visit(tid)

    n_dependent = sum(1 for t in txns.values() if t.depends_on)
    n_conflicted = sum(
        1
        for t in txns.values()
        if t.depends_on and t.deadline < earliest_pred_deadline[t.txn_id]
    )
    # Structurally tardy: even starting the closure at the dependent's own
    # arrival and running it back to back, the deadline cannot be met.
    # (Predecessors may have run earlier, so this is an upper bound on the
    # workload's *inherent* tardiness pressure, not a guarantee.)
    n_structural = sum(
        1
        for t in txns.values()
        if t.depends_on
        and t.arrival + closure_work[t.txn_id] + t.length > t.deadline
    )
    n_workflows = (
        len(workload.workflow_set) if workload.workflow_set is not None else 0
    )
    return WorkloadStats(
        n_transactions=len(txns),
        n_dependent=n_dependent,
        n_workflows=n_workflows,
        mean_length=sum(t.length for t in txns.values()) / len(txns),
        max_chain_depth=max(depth.values()),
        n_conflicted=n_conflicted,
        n_structurally_tardy=n_structural,
    )
