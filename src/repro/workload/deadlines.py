"""Deadline assignment.

Each transaction gets :math:`d_i = a_i + l_i + k_i \\cdot l_i` where the
slack factor :math:`k_i` is uniform over :math:`[0, k_{max}]`
(Section IV-A).  :math:`k_i = 0` means the deadline equals the earliest
possible finish time; larger :math:`k_{max}` means looser deadlines, which
is what shifts the EDF/SRPT crossover right in Figures 11-13.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.errors import WorkloadError

__all__ = ["assign_deadlines", "deadline_for"]


def deadline_for(arrival: float, length: float, slack_factor: float) -> float:
    """One deadline: :math:`a + l + k \\cdot l`."""
    if length <= 0:
        raise WorkloadError(f"length must be > 0, got {length}")
    if slack_factor < 0:
        raise WorkloadError(f"slack factor must be >= 0, got {slack_factor}")
    return arrival + length + slack_factor * length


def assign_deadlines(
    rng: random.Random,
    arrivals: Sequence[float],
    lengths: Sequence[float],
    k_max: float,
) -> list[float]:
    """Deadlines for parallel arrival/length vectors, :math:`k_i \\sim U[0,k_{max}]`."""
    if len(arrivals) != len(lengths):
        raise WorkloadError(
            f"{len(arrivals)} arrivals vs {len(lengths)} lengths"
        )
    if k_max < 0:
        raise WorkloadError(f"k_max must be >= 0, got {k_max}")
    return [
        deadline_for(a, l, rng.uniform(0.0, k_max))
        for a, l in zip(arrivals, lengths)
    ]
