"""Scheduling policies.

The paper's policies and the related-work baselines, all implementing the
:class:`~repro.policies.base.Scheduler` interface consumed by
:class:`~repro.sim.engine.Simulator`:

* :class:`~repro.policies.fcfs.FCFS` — First-Come-First-Served.
* :class:`~repro.policies.edf.EDF` — Earliest-Deadline-First.
* :class:`~repro.policies.srpt.SRPT` — Shortest-Remaining-Processing-Time.
* :class:`~repro.policies.least_slack.LeastSlack` — Least-Slack (LS) [1].
* :class:`~repro.policies.hdf.HDF` — Highest-Density-First [2].
* :class:`~repro.policies.hvf.HVF` — Highest-Value-First (related work).
* :class:`~repro.policies.mix.MIX` — static value/deadline blend
  (related work, Buttazzo et al.).
* :class:`~repro.policies.asets.ASETS` — the transaction-level hybrid of
  EDF and SRPT/HDF (Section III-A).
* :class:`~repro.policies.ready.Ready` — the naive Wait-queue extension of
  ASETS to dependent transactions (Section III-B).
* :class:`~repro.policies.asets_star.ASETSStar` — workflow-level, weighted
  ASETS* (Sections III-B and III-C).
* :class:`~repro.policies.balance_aware.BalanceAware` — the aging wrapper
  balancing average- vs worst-case performance (Section III-D).

Use :func:`~repro.policies.registry.make_policy` to construct policies by
name.
"""

from repro.policies.base import Scheduler, ScanScheduler, HeapScheduler
from repro.policies.fcfs import FCFS
from repro.policies.edf import EDF
from repro.policies.srpt import SRPT
from repro.policies.least_slack import LeastSlack
from repro.policies.hdf import HDF
from repro.policies.hvf import HVF
from repro.policies.mix import MIX
from repro.policies.asets import ASETS
from repro.policies.ready import Ready
from repro.policies.asets_star import ASETSStar
from repro.policies.balance_aware import BalanceAware
from repro.policies.nonpreemptive import NonPreemptive
from repro.policies.registry import make_policy, available_policies

__all__ = [
    "Scheduler",
    "ScanScheduler",
    "HeapScheduler",
    "FCFS",
    "EDF",
    "SRPT",
    "LeastSlack",
    "HDF",
    "HVF",
    "MIX",
    "ASETS",
    "Ready",
    "ASETSStar",
    "BalanceAware",
    "NonPreemptive",
    "make_policy",
    "available_policies",
]
