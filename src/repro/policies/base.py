"""The scheduler interface and two reusable base implementations.

The simulator drives a policy through a small set of hooks:

* ``bind(transactions, workflow_set)`` — once, before the run starts;
* ``on_arrival(txn, now)`` — the transaction was submitted (it may still be
  waiting on dependencies);
* ``on_ready(txn, now)`` — all dependencies completed, the transaction is
  eligible to run;
* ``on_requeue(txn, now)`` — the transaction was suspended at a scheduling
  point (its remaining time may have changed) and is ready again;
* ``on_completion(txn, now)`` — the transaction finished;
* ``on_activation(now)`` — a periodic tick fired (only if the policy set
  :attr:`Scheduler.activation_period`);
* ``select(now)`` — return the transaction to run until the next
  scheduling point, or ``None`` to idle.

Two base classes cover the common shapes:

* :class:`ScanScheduler` keeps the ready set in a dict and picks the
  minimum of a key function — simple and exactly right for dynamic keys.
* :class:`HeapScheduler` keeps a lazy binary heap of ``(key, seq, txn)``
  entries, valid for policies whose key only changes when the transaction
  actually runs (deadline, remaining time, density): a fresh entry is
  pushed on every requeue and stale entries are dropped when popped.
"""

from __future__ import annotations

import abc
import heapq
import itertools
from typing import TYPE_CHECKING, Sequence

from repro.core.transaction import Transaction, TransactionState
from repro.errors import SchedulingError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.core.workflow_set import WorkflowSet
    from repro.obs.profile import Probe

__all__ = ["Scheduler", "ScanScheduler", "HeapScheduler"]


class Scheduler(abc.ABC):
    """Abstract scheduling policy.

    Subclasses must set :attr:`name` and implement :meth:`on_ready` and
    :meth:`select`; everything else has sensible defaults.
    """

    #: Registry name of the policy (e.g. ``"edf"``).
    name: str = "abstract"

    #: If True the simulator builds/propagates a
    #: :class:`~repro.core.workflow_set.WorkflowSet` for this policy.
    requires_workflows: bool = False

    #: If set, the simulator fires :meth:`on_activation` every this many
    #: time units (Section III-D, time-based activation).
    activation_period: float | None = None

    #: Select-scoped profiling probe.  The engine attaches one at bind
    #: time only when a :class:`~repro.obs.profile.PhaseProfiler` is in
    #: play; the default ``None`` keeps every select path probe-free at
    #: the cost of a single ``is None`` check (zero-cost-when-off).
    _probe: "Probe | None" = None

    def __init__(self) -> None:
        self._transactions: dict[int, Transaction] = {}
        self._workflow_set: "WorkflowSet | None" = None

    # ------------------------------------------------------------------
    # Lifecycle hooks called by the engine.
    # ------------------------------------------------------------------
    def bind(
        self,
        transactions: Sequence[Transaction],
        workflow_set: "WorkflowSet | None",
    ) -> None:
        """Attach the policy to a run.  Called once before simulation.

        Raises :class:`~repro.errors.SchedulingError` on duplicate
        transaction ids: building the dict would silently drop all but the
        last duplicate, and the policy's view of the pool would diverge
        from the engine's.
        """
        self._transactions = {txn.txn_id: txn for txn in transactions}
        if len(self._transactions) != len(transactions):
            counts: dict[int, int] = {}
            for txn in transactions:
                counts[txn.txn_id] = counts.get(txn.txn_id, 0) + 1
            duplicates = sorted(tid for tid, c in counts.items() if c > 1)
            raise SchedulingError(
                f"duplicate transaction ids in bind(): {duplicates}"
            )
        self._workflow_set = workflow_set

    def attach_probe(self, probe: "Probe | None") -> None:
        """Attach (or with ``None`` detach) a profiling probe.

        Called by the engine right after :meth:`bind`.  Policies wrap
        their internal select stages in ``probe.span(...)`` blocks when
        a probe is present; spans must only fire inside :meth:`select`
        (the profiler's overhead correction is per scheduling point).
        """
        self._probe = probe

    def on_arrival(self, txn: Transaction, now: float) -> None:
        """The transaction was submitted (possibly still waiting on deps)."""

    @abc.abstractmethod
    def on_ready(self, txn: Transaction, now: float) -> None:
        """The transaction became eligible to run."""

    def on_requeue(self, txn: Transaction, now: float) -> None:
        """A suspended transaction is ready again (remaining time changed).

        Defaults to treating the requeue like a fresh ready notification,
        which is correct for every policy in this package.
        """
        self.on_ready(txn, now)

    def on_completion(self, txn: Transaction, now: float) -> None:
        """The transaction finished.  Default: nothing (lazy removal)."""

    def on_fault(self, txn: Transaction, now: float) -> None:
        """Fault injection moved ``txn`` outside the normal lifecycle.

        Fired on abort (terminal or retry-and-rollback — the rollback
        resets the believed remaining time) and on load shedding.
        Policies with state keyed on believed values must invalidate it
        here; the lazy defaults filter by transaction state, so the base
        implementation does nothing.
        """

    def on_activation(self, now: float) -> None:
        """A periodic activation tick fired (balance-aware policies)."""

    @abc.abstractmethod
    def select(self, now: float) -> Transaction | None:
        """Return the transaction to dispatch, or ``None`` to idle."""

    # ------------------------------------------------------------------
    # Checkpoint hooks (crash-resilient runs, :mod:`repro.ckpt`).
    # ------------------------------------------------------------------
    def snapshot(self) -> object:
        """Opaque picklable scheduling state for a run checkpoint.

        The default returns the policy object itself: the checkpoint
        serialises engine and policy state in a *single* pickle graph,
        so every shared :class:`~repro.core.transaction.Transaction`
        reference (ready dicts, lazy heaps, workflow views) keeps its
        identity — which makes the default exact for every policy in
        this package, stale heap entries and tie-break history included.
        Subclasses whose derived structures are cheaper to rebuild than
        to serialise may return a reduced state instead, as long as
        :meth:`restore` reproduces *decision-identical* behaviour (the
        resumed run must stay byte-identical to an uninterrupted one).
        """
        return self

    @classmethod
    def restore(cls, state: object) -> "Scheduler":
        """Rebuild a live policy from :meth:`snapshot` output.

        Inverse of :meth:`snapshot`; override the two together.  The
        default expects the snapshotted policy object and hands it back
        after detaching any profiling probe (profilers never survive a
        resume).
        """
        if not isinstance(state, cls):
            raise SchedulingError(
                f"{cls.__name__}.restore() expected a {cls.__name__} "
                f"snapshot, got {type(state).__name__}"
            )
        state._probe = None
        return state

    # ------------------------------------------------------------------
    # Helpers for subclasses.
    # ------------------------------------------------------------------
    @property
    def workflow_set(self) -> "WorkflowSet | None":
        return self._workflow_set

    @staticmethod
    def _check_ready(txn: Transaction) -> None:
        if txn.state is not TransactionState.READY:
            raise SchedulingError(
                f"policy saw transaction {txn.txn_id} in state "
                f"{txn.state}, expected READY"
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class ScanScheduler(Scheduler):
    """Keeps the ready set in a dict; :meth:`select` scans for the best key.

    Subclasses implement :meth:`sort_key`, returning a tuple whose smallest
    value identifies the highest-priority transaction.  Appropriate for
    keys that depend on the current time (e.g. slack) or for small ready
    sets; the static-key workhorses use :class:`HeapScheduler` instead.
    """

    def __init__(self) -> None:
        super().__init__()
        self._ready: dict[int, Transaction] = {}

    def on_ready(self, txn: Transaction, now: float) -> None:
        self._ready[txn.txn_id] = txn

    def on_completion(self, txn: Transaction, now: float) -> None:
        self._ready.pop(txn.txn_id, None)

    def on_fault(self, txn: Transaction, now: float) -> None:
        # The state filter in select() would skip it anyway; dropping the
        # entry keeps the scan proportional to the live ready set.
        self._ready.pop(txn.txn_id, None)

    def select(self, now: float) -> Transaction | None:
        probe = self._probe
        if probe is None:
            candidates = [
                t
                for t in self._ready.values()
                if t.state is TransactionState.READY
            ]
            if not candidates:
                return None
            return min(candidates, key=lambda t: self.sort_key(t, now))
        with probe.span("scan"):
            candidates = [
                t
                for t in self._ready.values()
                if t.state is TransactionState.READY
            ]
            if not candidates:
                return None
            return min(candidates, key=lambda t: self.sort_key(t, now))

    @abc.abstractmethod
    def sort_key(self, txn: Transaction, now: float) -> tuple:
        """Smallest key = highest priority; must break ties totally."""

    @property
    def ready_transactions(self) -> list[Transaction]:
        """Current ready set (a copy, for wrappers and tests)."""
        return list(self._ready.values())


class HeapScheduler(Scheduler):
    """A lazy-deletion binary heap of ready transactions.

    Valid for priority keys that change only while a transaction runs and
    move monotonically toward higher priority as work is done (remaining
    time shrinks) or never change at all.  Under that assumption the first
    popped entry whose stored key still matches the transaction's current
    key is the true maximum-priority transaction; entries invalidated by a
    requeue or completion are discarded when encountered.
    """

    def __init__(self) -> None:
        super().__init__()
        self._heap: list[tuple[float, float, int, int, Transaction]] = []
        self._seq = itertools.count()

    @abc.abstractmethod
    def key(self, txn: Transaction) -> float:
        """Priority key: smallest value = highest priority."""

    def on_ready(self, txn: Transaction, now: float) -> None:
        # Ties break by (arrival, txn_id): a specified total order that
        # does not depend on insertion history, so a requeued transaction
        # keeps its place among equals.  The sequence number only guards
        # against comparing Transaction objects when the same transaction
        # has duplicate equal-key entries.
        heapq.heappush(
            self._heap,
            (self.key(txn), txn.arrival, txn.txn_id, next(self._seq), txn),
        )

    def select(self, now: float) -> Transaction | None:
        probe = self._probe
        if probe is None:
            heap = self._heap
            while heap:
                stored_key, _, _, _, txn = heap[0]
                if txn.state is not TransactionState.READY:
                    heapq.heappop(heap)
                    continue
                if stored_key != self.key(txn):
                    heapq.heappop(heap)  # superseded by a requeued entry
                    continue
                return txn
            return None
        with probe.span("heap-pop"):
            heap = self._heap
            while heap:
                stored_key, _, _, _, txn = heap[0]
                if txn.state is not TransactionState.READY:
                    heapq.heappop(heap)
                    continue
                if stored_key != self.key(txn):
                    heapq.heappop(heap)  # superseded by a requeued entry
                    continue
                return txn
            return None

    @property
    def pending_entries(self) -> int:
        """Number of heap entries, stale ones included (for tests)."""
        return len(self._heap)
