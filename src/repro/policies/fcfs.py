"""First-Come-First-Served.

The traditional baseline of Section IV-A: transactions run in arrival
order, oblivious to deadlines, lengths and weights.  Because the key never
changes, FCFS is effectively non-preemptive here — a suspended transaction
still has the earliest arrival among ready transactions and is immediately
resumed (dependent transactions are ordered by the time they became ready,
since they cannot be selected before that).
"""

from __future__ import annotations

from repro.core.transaction import Transaction
from repro.policies.base import HeapScheduler

__all__ = ["FCFS"]


class FCFS(HeapScheduler):
    """First-Come-First-Served: priority :math:`P_i = 1/a_i` (earliest wins)."""

    name = "fcfs"

    def key(self, txn: Transaction) -> float:
        return txn.arrival
