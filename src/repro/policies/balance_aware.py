"""Balance-aware ASETS*: trading average- for worst-case performance.

Section III-D: SRPT-style policies starve long transactions.  ASETS* has
a natural aging signal — the missed deadline ("the oldest transaction is
the one that has the earliest deadline") — so the balance-aware variant
periodically overrides the normal choice and runs :math:`T_{old}`, the
ready transaction with the highest weight-to-deadline ratio
:math:`w_i / d_i`.  Running :math:`T_{old}` earlier than ASETS* would
have improves the worst case (maximum weighted tardiness) at a small
cost in the average case; the frequency is controlled by an *activation
rate*:

* **time-based** — every :math:`P^t = 1/\\rho_t` time units
  (:math:`\\rho_t \\in [0.002, 0.01]` in Section IV-F), implemented through
  the simulator's activation ticks;
* **count-based** — every :math:`P^c = 1/\\rho_c` scheduling points
  (:math:`\\rho_c \\in [0.02, 0.1]`), counted locally over ``select``
  calls.

Two aspects of the mechanism are under-specified in the paper; the
defaults here are the combination that reproduces the reported trade-off
(worst case −7..−27 %, average +≤5 %), and both knobs are exposed for the
ablation benchmarks:

* ``tardy_only`` (default True) — :math:`T_{old}` is drawn from the
  transactions that have already missed their deadlines, matching the
  paper's framing of the missed deadline as the aging signal.  Drawing
  from *all* ready transactions makes activations interfere with feasible
  work and blows up the average-case cost.
* ``pin_until_completion`` (default False) — an activated
  :math:`T_{old}` runs until the next scheduling point only; because the
  run shortens its remaining time (raising its HDF density), ASETS*
  itself then finishes the job.  Pinning it non-preemptively to
  completion rescues single transactions faster but inflates average
  tardiness far beyond the paper's 5 %.

The wrapper delegates every other decision to an inner policy — normally
:class:`~repro.policies.asets_star.ASETSStar`, but any scheduler works,
which the test-suite exploits.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.core.priorities import aging_key
from repro.core.transaction import Transaction, TransactionState
from repro.errors import SchedulingError
from repro.policies.base import Scheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.core.workflow_set import WorkflowSet
    from repro.obs.profile import Probe

__all__ = ["BalanceAware"]


class BalanceAware(Scheduler):
    """Aging wrapper around a scheduling policy (Section III-D).

    Parameters
    ----------
    inner:
        The policy taking the ordinary decisions (e.g. ``ASETSStar()``).
    time_rate:
        Time-based activation rate :math:`\\rho_t` (activations per time
        unit); mutually exclusive with ``count_rate``.
    count_rate:
        Count-based activation rate :math:`\\rho_c` (activations per
        scheduling point).
    tardy_only:
        Restrict the :math:`T_{old}` pick to transactions past their
        deadline (default True; see module docstring).
    pin_until_completion:
        Keep selecting :math:`T_{old}` until it completes instead of
        letting it run to the next scheduling point only (default False).
    """

    name = "balance-aware"

    def __init__(
        self,
        inner: Scheduler,
        time_rate: float | None = None,
        count_rate: float | None = None,
        tardy_only: bool = True,
        pin_until_completion: bool = False,
    ) -> None:
        super().__init__()
        if (time_rate is None) == (count_rate is None):
            raise SchedulingError(
                "provide exactly one of time_rate / count_rate"
            )
        if time_rate is not None and time_rate <= 0:
            raise SchedulingError(f"time_rate must be > 0, got {time_rate}")
        if count_rate is not None and not 0 < count_rate <= 1:
            raise SchedulingError(
                f"count_rate must be in (0, 1], got {count_rate}"
            )
        self.inner = inner
        self.time_rate = time_rate
        self.count_rate = count_rate
        self.tardy_only = tardy_only
        self.pin_until_completion = pin_until_completion
        self.requires_workflows = inner.requires_workflows
        if time_rate is not None:
            self.activation_period = 1.0 / time_rate
        self._count_period = (
            max(1, round(1.0 / count_rate)) if count_rate is not None else None
        )
        self._ready: dict[int, Transaction] = {}
        self._pending_activation = False
        self._select_calls = 0
        self._pinned: Transaction | None = None
        self.activations = 0  # observable for tests/experiments

    # ------------------------------------------------------------------
    # Delegation plus local ready-set tracking (needed to find T_old).
    # ------------------------------------------------------------------
    def bind(
        self,
        transactions: Sequence[Transaction],
        workflow_set: "WorkflowSet | None",
    ) -> None:
        super().bind(transactions, workflow_set)
        self.inner.bind(transactions, workflow_set)

    def attach_probe(self, probe: "Probe | None") -> None:
        """Propagate the probe so the inner policy's spans attribute too."""
        super().attach_probe(probe)
        self.inner.attach_probe(probe)

    def on_arrival(self, txn: Transaction, now: float) -> None:
        self.inner.on_arrival(txn, now)

    def on_ready(self, txn: Transaction, now: float) -> None:
        self._ready[txn.txn_id] = txn
        self.inner.on_ready(txn, now)

    def on_requeue(self, txn: Transaction, now: float) -> None:
        self._ready[txn.txn_id] = txn
        self.inner.on_requeue(txn, now)

    def on_completion(self, txn: Transaction, now: float) -> None:
        self._ready.pop(txn.txn_id, None)
        if self._pinned is txn:
            self._pinned = None
        self.inner.on_completion(txn, now)

    def on_fault(self, txn: Transaction, now: float) -> None:
        self._ready.pop(txn.txn_id, None)
        if self._pinned is txn:
            self._pinned = None
        self.inner.on_fault(txn, now)

    def on_activation(self, now: float) -> None:
        self._pending_activation = True

    # ------------------------------------------------------------------
    # Selection with the aging override.
    # ------------------------------------------------------------------
    def select(self, now: float) -> Transaction | None:
        self._select_calls += 1
        if (
            self._count_period is not None
            and self._select_calls % self._count_period == 0
        ):
            self._pending_activation = True

        if self._pinned is not None:
            if self._pinned.state is TransactionState.READY:
                return self._pinned
            # Defensive: pins are ready transactions and only completion
            # unpins, so this should be unreachable.
            self._pinned = None

        if self._pending_activation:
            probe = self._probe
            if probe is None:
                t_old = self._pick_t_old(now)
            else:
                with probe.span("aging"):
                    t_old = self._pick_t_old(now)
            if t_old is not None:
                self._pending_activation = False
                if self.pin_until_completion:
                    self._pinned = t_old
                self.activations += 1
                return t_old
            # No eligible transaction yet; keep the activation pending so
            # it fires at the next eligible scheduling point.

        return self.inner.select(now)

    def _pick_t_old(self, now: float) -> Transaction | None:
        """The eligible transaction with the highest :math:`w_i/d_i` ratio."""
        best: Transaction | None = None
        best_key: tuple[float, int] | None = None
        for txn in self._ready.values():
            if txn.state is not TransactionState.READY:
                continue
            if self.tardy_only and not txn.is_past_deadline(now):
                continue
            key = (aging_key(txn), txn.txn_id)
            if best_key is None or key < best_key:
                best, best_key = txn, key
        return best

    def __repr__(self) -> str:
        rate = (
            f"time_rate={self.time_rate}"
            if self.time_rate is not None
            else f"count_rate={self.count_rate}"
        )
        return f"BalanceAware({self.inner!r}, {rate})"
