"""Name-based policy construction.

Experiment configurations and the CLI refer to policies by short names;
:func:`make_policy` turns a name plus keyword arguments into a fresh
policy instance.  Fresh instances matter: policies carry per-run state, so
each simulation run must receive its own.

========================  ====================================================
Name                      Policy
========================  ====================================================
``fcfs``                  :class:`~repro.policies.fcfs.FCFS`
``edf``                   :class:`~repro.policies.edf.EDF`
``srpt``                  :class:`~repro.policies.srpt.SRPT`
``ls``                    :class:`~repro.policies.least_slack.LeastSlack`
``hdf``                   :class:`~repro.policies.hdf.HDF`
``hvf``                   :class:`~repro.policies.hvf.HVF`
``mix``                   :class:`~repro.policies.mix.MIX` (``tradeoff=``)
``asets``                 :class:`~repro.policies.asets.ASETS` (``weighted=``)
``ready``                 :class:`~repro.policies.ready.Ready`
``asets-star``            :class:`~repro.policies.asets_star.ASETSStar`
``balance-aware``         :class:`~repro.policies.balance_aware.BalanceAware`
                          wrapping ASETS* (``time_rate=`` / ``count_rate=``)
========================  ====================================================
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SchedulingError
from repro.policies.asets import ASETS
from repro.policies.asets_star import ASETSStar
from repro.policies.balance_aware import BalanceAware
from repro.policies.base import Scheduler
from repro.policies.edf import EDF
from repro.policies.fcfs import FCFS
from repro.policies.hdf import HDF
from repro.policies.hvf import HVF
from repro.policies.least_slack import LeastSlack
from repro.policies.mix import MIX
from repro.policies.nonpreemptive import NonPreemptive
from repro.policies.ready import Ready
from repro.policies.srpt import SRPT

__all__ = ["make_policy", "available_policies"]


def _balance_aware(**kwargs: Any) -> BalanceAware:
    """Balance-aware ASETS*, the configuration evaluated in Section IV-F."""
    return BalanceAware(ASETSStar(), **kwargs)


def _non_preemptive(inner: str = "edf", **kwargs: Any) -> NonPreemptive:
    """Any registry policy, pinned to completion (``inner`` by name)."""
    return NonPreemptive(make_policy(inner, **kwargs))


_FACTORIES: dict[str, Callable[..., Scheduler]] = {
    "fcfs": FCFS,
    "edf": EDF,
    "srpt": SRPT,
    "ls": LeastSlack,
    "hdf": HDF,
    "hvf": HVF,
    "mix": MIX,
    "asets": ASETS,
    "ready": Ready,
    "asets-star": ASETSStar,
    "balance-aware": _balance_aware,
    "non-preemptive": _non_preemptive,
}


def available_policies() -> list[str]:
    """Sorted list of policy names accepted by :func:`make_policy`."""
    return sorted(_FACTORIES)


def make_policy(name: str, **kwargs: Any) -> Scheduler:
    """Construct a fresh policy instance by registry name.

    Raises
    ------
    SchedulingError
        If the name is unknown.

    Examples
    --------
    >>> make_policy("edf").name
    'edf'
    >>> make_policy("balance-aware", time_rate=0.01).activation_period
    100.0
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise SchedulingError(
            f"unknown policy {name!r}; available: {', '.join(available_policies())}"
        ) from None
    return factory(**kwargs)
