"""Highest-Density-First.

Priority :math:`P_i = w_i / r_i` (Section II-C).  HDF is the optimal
online policy for weighted flow time when all deadlines have been missed
[Becchetti, Leonardi, Marchetti-Spaccamela & Pruhs, APPROX/RANDOM 2001],
and it reduces to SRPT when all weights are equal — which is why ASETS*
uses it as the overload-side list in the general weighted case.
"""

from __future__ import annotations

from repro.core.transaction import Transaction
from repro.policies.base import HeapScheduler
from repro.policies.ordering import hdf_rank

__all__ = ["HDF"]


class HDF(HeapScheduler):
    """HDF: the ready transaction with maximal density :math:`w_i/r_i`."""

    name = "hdf"

    def key(self, txn: Transaction) -> float:
        # Shared negated-density rank: the heap pops the largest w/r
        # first, with the believed-zero-remaining case guarded (-inf =
        # infinite density).  Density only grows as remaining time
        # shrinks, so requeued entries always carry a smaller
        # (higher-priority) key than their stale ancestors, preserving
        # the lazy-heap invariant.
        return hdf_rank(txn.weight, txn.scheduling_remaining)
