"""Non-preemptive execution of any policy.

The paper's model (and classical RTDBMS practice) preempts at every
arrival; real query engines often cannot suspend a statement mid-flight.
:class:`NonPreemptive` wraps any scheduler and pins each dispatched
transaction until it completes, so the inner policy only decides at
completion boundaries.  Comparing a policy with its non-preemptive self
quantifies exactly how much of its performance comes from preemption —
see ``benchmarks/bench_preemption_value.py``.

Implementation: the simulator suspends the running transaction at every
scheduling point and asks again; this wrapper simply keeps answering
with the pinned transaction until it completes.  With multiple servers
each pinned transaction keeps its server; free servers are filled with
fresh picks from the inner policy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.core.transaction import Transaction, TransactionState
from repro.policies.base import Scheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.core.workflow_set import WorkflowSet

__all__ = ["NonPreemptive"]


class NonPreemptive(Scheduler):
    """Run ``inner``'s choices to completion (no preemption).

    Examples
    --------
    >>> from repro.policies import SRPT
    >>> NonPreemptive(SRPT()).name
    'np-srpt'
    """

    def __init__(self, inner: Scheduler) -> None:
        super().__init__()
        self.inner = inner
        self.name = f"np-{inner.name}"
        self.requires_workflows = inner.requires_workflows
        self.activation_period = inner.activation_period
        self._pinned: dict[int, Transaction] = {}
        #: Pins already handed out during the current scheduling point
        #: (the engine calls select once per free server).
        self._offered: set[int] = set()
        self._last_now: float | None = None

    # ------------------------------------------------------------------
    # Delegation.
    # ------------------------------------------------------------------
    def bind(
        self,
        transactions: Sequence[Transaction],
        workflow_set: "WorkflowSet | None",
    ) -> None:
        super().bind(transactions, workflow_set)
        self.inner.bind(transactions, workflow_set)
        self._pinned.clear()
        self._offered.clear()
        self._last_now = None

    def on_arrival(self, txn: Transaction, now: float) -> None:
        self.inner.on_arrival(txn, now)

    def on_ready(self, txn: Transaction, now: float) -> None:
        self.inner.on_ready(txn, now)

    def on_requeue(self, txn: Transaction, now: float) -> None:
        self.inner.on_requeue(txn, now)

    def on_completion(self, txn: Transaction, now: float) -> None:
        self._pinned.pop(txn.txn_id, None)
        self.inner.on_completion(txn, now)

    def on_activation(self, now: float) -> None:
        self.inner.on_activation(now)

    # ------------------------------------------------------------------
    # Selection: re-offer pins first, then fresh picks.
    # ------------------------------------------------------------------
    def select(self, now: float) -> Transaction | None:
        # repro-lint: disable=RL003 -- scheduling-point identity, not a
        # tolerance check: the engine passes the same float `now` to every
        # select() call of one scheduling point, so exact inequality is
        # precisely "a new point started".
        if now != self._last_now:
            self._last_now = now
            self._offered = set()
        for txn_id, txn in self._pinned.items():
            if txn_id in self._offered:
                continue
            if txn.state is TransactionState.READY:
                self._offered.add(txn_id)
                return txn
        candidate = self.inner.select(now)
        if candidate is not None:
            self._pinned[candidate.txn_id] = candidate
            self._offered.add(candidate.txn_id)
        return candidate
