"""Least-Slack scheduling (Abbott & Garcia-Molina).

Priority :math:`P_i = 1/s_i` with slack :math:`s_i = d_i - (t + r_i)`
(Definition 2).  Although the slack itself shrinks as the clock advances,
the *ordering* between two waiting transactions is governed by the static
quantity :math:`d_i - r_i` (the current time is common to both), so a lazy
heap keyed on :math:`d_i - r_i` implements LS exactly — the key moves only
when a transaction runs, which triggers a requeue.
"""

from __future__ import annotations

from repro.core.transaction import Transaction
from repro.policies.base import HeapScheduler

__all__ = ["LeastSlack"]


class LeastSlack(HeapScheduler):
    """LS: the ready transaction with minimal slack."""

    name = "ls"

    def key(self, txn: Transaction) -> float:
        # Equal to ordering by slack d - (t + r) because t is shared.
        return txn.deadline - txn.scheduling_remaining
