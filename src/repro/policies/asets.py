"""ASETS: the transaction-level adaptive EDF/SRPT hybrid (Section III-A).

The scheduler maintains two priority lists:

* the **EDF-List** — transactions that can still meet their deadline if
  started now (:math:`t + r_i \\le d_i`, Definition 6), ordered by
  deadline, and
* the **SRPT-List** — transactions that already missed
  (:math:`t + r_i > d_i`, Definition 7), ordered by remaining processing
  time (or, in the weighted variant, by density :math:`w_i/r_i`, making
  the list an HDF-List — Section III-C).

Every transaction starts on the EDF-List and migrates one way to the
SRPT-List when the clock passes its *latest start time*
:math:`d_i - r_i`; while a transaction waits its remaining time is frozen,
so that threshold is a static key and migrations are handled with a third
internal heap rather than by rescanning.

At each scheduling point the policy compares the tops of the two lists by
their *negative impact* (Figure 3):

* running :math:`T_{1,EDF}` first delays :math:`T_{1,SRPT}` by
  :math:`r_{1,EDF}` — weighted: :math:`r_{1,EDF} \\cdot w_{1,SRPT}`;
* running :math:`T_{1,SRPT}` first delays :math:`T_{1,EDF}` by
  :math:`r_{1,SRPT} - s_{1,EDF}` — weighted:
  :math:`(r_{1,SRPT} - s_{1,EDF}) \\cdot w_{1,EDF}`.

:math:`T_{1,EDF}` runs iff its negative impact is strictly smaller
(Equation 1 / Figure 7 lines 15-21); ties go to the SRPT/HDF side, per the
pseudo-code.  In the extremes the policy degenerates exactly: all
transactions feasible → pure EDF; all transactions tardy → pure SRPT/HDF.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING

from repro.core.transaction import Transaction, TransactionState
from repro.policies.base import Scheduler
from repro.policies.ordering import hdf_rank

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.profile import Probe

__all__ = ["ASETS", "negative_impact_edf", "negative_impact_srpt"]


def negative_impact_edf(
    r_edf: float, w_srpt: float = 1.0
) -> float:
    """Negative impact of running the EDF top first: it delays the SRPT
    top's completion by the EDF top's remaining time (scaled by the SRPT
    side's weight in the general case — Figure 7, line 15)."""
    return r_edf * w_srpt

def negative_impact_srpt(
    r_srpt: float, s_edf: float, w_edf: float = 1.0
) -> float:
    """Negative impact of running the SRPT top first: it pushes the EDF
    top past its deadline by whatever exceeds the EDF top's slack (scaled
    by the EDF side's weight — Figure 7, line 16)."""
    return (r_srpt - s_edf) * w_edf


class ASETS(Scheduler):
    """Adaptive SRPT/EDF Transaction Scheduling at the transaction level.

    Parameters
    ----------
    weighted:
        When False (the default, matching Section III-A) the overload list
        is ordered by remaining time and the decision rule is Equation 1.
        When True the overload list is ordered by density (HDF) and both
        negative impacts are scaled by the opposing transaction's weight,
        which is the transaction-level specialisation of the general
        ASETS* rule (Figure 7).
    """

    name = "asets"

    def __init__(self, weighted: bool = False) -> None:
        super().__init__()
        self.weighted = weighted
        self._seq = itertools.count()
        # (deadline, arrival, id, seq, txn): feasible txns, EDF order.
        self._edf: list[tuple[float, float, int, int, Transaction]] = []
        # (latest_start, remaining_snapshot, seq, deadline, txn): migration
        # thresholds.  The deadline snapshot rides along *after* the unique
        # seq — it can never influence heap order — and marks entries stale
        # when a fault retry re-submits the transaction with a new deadline.
        self._migrate: list[tuple[float, float, int, float, Transaction]] = []
        # (order_key, arrival, id, seq, deadline, txn): tardy txns,
        # SRPT/HDF order; the deadline snapshot serves the same staleness
        # role as on the migration heap.
        self._srpt: list[tuple[float, float, int, int, float, Transaction]] = []

    # ------------------------------------------------------------------
    # Insertion.
    # ------------------------------------------------------------------
    def on_ready(self, txn: Transaction, now: float) -> None:
        if txn.is_past_deadline(now):
            self._push_srpt(txn)
        else:
            seq = next(self._seq)
            heapq.heappush(
                self._edf, (txn.deadline, txn.arrival, txn.txn_id, seq, txn)
            )
            heapq.heappush(
                self._migrate,
                (
                    txn.latest_start_time(),
                    txn.scheduling_remaining,
                    seq,
                    txn.deadline,
                    txn,
                ),
            )

    def _push_srpt(self, txn: Transaction) -> None:
        heapq.heappush(
            self._srpt,
            (
                self._srpt_key(txn),
                txn.arrival,
                txn.txn_id,
                next(self._seq),
                txn.deadline,
                txn,
            ),
        )

    def _srpt_key(self, txn: Transaction) -> float:
        if self.weighted:
            # Shared density rank: guards the believed-zero-remaining
            # case (infinite density -> -inf, front of the list).
            return hdf_rank(txn.weight, txn.scheduling_remaining)
        return txn.scheduling_remaining

    # ------------------------------------------------------------------
    # List maintenance.
    # ------------------------------------------------------------------
    def _migrate_expired(self, now: float) -> None:
        """Move transactions whose latest start time has passed to SRPT.

        A transaction sits on the EDF-List while :math:`t \\le d_i - r_i`;
        ``remaining`` is frozen while it waits, so the stored threshold is
        exact unless the transaction ran in between — in that case the
        snapshot mismatch identifies the entry as stale and a fresher
        entry (pushed at requeue time) carries the correct threshold.
        A deadline mismatch likewise marks staleness: a fault retry
        re-submits the transaction with an extended deadline (and, under
        checkpoint work loss, an *unchanged* remaining), so the deadline
        snapshot is the only discriminator for the pre-abort entry.
        """
        while self._migrate and self._migrate[0][0] < now:
            _, snapshot, _, deadline, txn = heapq.heappop(self._migrate)
            if txn.state is not TransactionState.READY:
                continue
            # repro-lint: disable=RL003 -- snapshot identity, not arithmetic
            if snapshot != txn.scheduling_remaining or deadline != txn.deadline:
                continue  # stale: the transaction ran and was re-inserted
            # The threshold passed, so the transaction belongs to the
            # SRPT-List now.  Push unconditionally: re-deriving the
            # membership from t + r > d here can disagree with the
            # threshold comparison by a float ulp, and an entry dropped on
            # that disagreement would orphan the transaction.
            self._push_srpt(txn)

    def _top_edf(self, now: float) -> Transaction | None:
        while self._edf:
            deadline, _, _, _, txn = self._edf[0]
            if txn.state is not TransactionState.READY:
                heapq.heappop(self._edf)
                continue
            # repro-lint: disable=RL003 -- snapshot identity, not arithmetic
            if deadline != txn.deadline:
                # Stale pre-retry entry: the fault layer re-submitted the
                # transaction with a new deadline and on_ready pushed a
                # fresh, correctly-keyed entry.
                heapq.heappop(self._edf)
                continue
            if txn.is_past_deadline(now):
                # Evicting from the EDF-List always re-inserts into the
                # SRPT-List (possibly duplicating a migration-heap move —
                # duplicates are harmless) so no transaction is ever lost.
                heapq.heappop(self._edf)
                self._push_srpt(txn)
                continue
            return txn
        return None

    def _top_srpt(self, now: float) -> Transaction | None:
        while self._srpt:
            key, _, _, _, deadline, txn = self._srpt[0]
            if txn.state is not TransactionState.READY:
                heapq.heappop(self._srpt)
                continue
            # repro-lint: disable=RL003 -- snapshot identity, not arithmetic
            if key != self._srpt_key(txn) or deadline != txn.deadline:
                # Superseded by a requeued entry, or left over from a
                # pre-retry attempt (the extended deadline may have moved
                # the transaction back to the EDF-List).
                heapq.heappop(self._srpt)
                continue
            # Membership is one-way *within an attempt*, so no deadline
            # feasibility re-check: an entry on this list stays here until
            # the transaction completes or is re-submitted by a retry.
            return txn
        return None

    # ------------------------------------------------------------------
    # The ASETS decision (Equation 1 / Figure 7).
    # ------------------------------------------------------------------
    def select(self, now: float) -> Transaction | None:
        probe = self._probe
        if probe is not None:
            return self._profiled_select(now, probe)
        self._migrate_expired(now)
        t_edf = self._top_edf(now)
        t_srpt = self._top_srpt(now)
        return self._decide(t_edf, t_srpt, now)

    def _profiled_select(self, now: float, probe: "Probe") -> Transaction | None:
        """The same decision as :meth:`select`, stage-attributed."""
        with probe.span("migrate"):
            self._migrate_expired(now)
        with probe.span("top-edf"):
            t_edf = self._top_edf(now)
        with probe.span("top-srpt"):
            t_srpt = self._top_srpt(now)
        with probe.span("decide"):
            return self._decide(t_edf, t_srpt, now)

    def _decide(
        self,
        t_edf: Transaction | None,
        t_srpt: Transaction | None,
        now: float,
    ) -> Transaction | None:
        """Equation 1 / Figure 7 on the two list tops (ties to SRPT/HDF)."""
        if t_edf is None:
            return t_srpt
        if t_srpt is None:
            return t_edf
        if self.weighted:
            ni_edf = negative_impact_edf(t_edf.scheduling_remaining, t_srpt.weight)
            ni_srpt = negative_impact_srpt(
                t_srpt.scheduling_remaining, t_edf.slack(now), t_edf.weight
            )
        else:
            ni_edf = negative_impact_edf(t_edf.scheduling_remaining)
            ni_srpt = negative_impact_srpt(t_srpt.scheduling_remaining, t_edf.slack(now))
        if ni_edf < ni_srpt:
            return t_edf
        return t_srpt

    # ------------------------------------------------------------------
    # Introspection (used by tests and the balance-aware wrapper).
    # ------------------------------------------------------------------
    def edf_list(self, now: float) -> list[Transaction]:
        """Current EDF-List contents in deadline order (rebuilt; O(n log n))."""
        self._migrate_expired(now)
        seen: set[int] = set()
        out = []
        for deadline, _, _, _, txn in sorted(self._edf):
            if (
                txn.state is TransactionState.READY
                # repro-lint: disable=RL003 -- snapshot identity, not arithmetic
                and deadline == txn.deadline
                and not txn.is_past_deadline(now)
                and txn.txn_id not in seen
            ):
                seen.add(txn.txn_id)
                out.append(txn)
        return out

    def srpt_list(self, now: float) -> list[Transaction]:
        """Current SRPT/HDF-List contents in list order (rebuilt)."""
        self._migrate_expired(now)
        seen: set[int] = set()
        out = []
        for key, _, _, _, deadline, txn in sorted(self._srpt):
            if (
                txn.state is TransactionState.READY
                and key == self._srpt_key(txn)
                # repro-lint: disable=RL003 -- snapshot identity, not arithmetic
                and deadline == txn.deadline
                and txn.txn_id not in seen
            ):
                seen.add(txn.txn_id)
                out.append(txn)
        return out
