"""Earliest-Deadline-First.

Priority :math:`P_i = 1/d_i` (Section II-C).  Optimal when the system is
not over-utilised — every deadline is met and tardiness is zero — but
subject to the *domino effect* under overload: it keeps prioritising
transactions whose deadlines are already unsalvageable, dragging later
transactions past their own deadlines (Section III-A.1).
"""

from __future__ import annotations

from repro.core.transaction import Transaction
from repro.policies.base import HeapScheduler

__all__ = ["EDF"]


class EDF(HeapScheduler):
    """Earliest-Deadline-First: the ready transaction with minimal :math:`d_i`."""

    name = "edf"

    def key(self, txn: Transaction) -> float:
        return txn.deadline
