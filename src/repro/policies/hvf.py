"""Highest-Value-First (related-work baseline).

Studied by Buttazzo, Spuri & Sensini (RTSS '95) alongside HDF and MIX:
run the transaction with the largest value (weight), ignoring deadlines
and lengths entirely.  The paper cites it as a representative
value-only policy; we include it for completeness of the baseline suite.
"""

from __future__ import annotations

from repro.core.transaction import Transaction
from repro.policies.base import HeapScheduler

__all__ = ["HVF"]


class HVF(HeapScheduler):
    """HVF: the ready transaction with maximal weight :math:`w_i`."""

    name = "hvf"

    def key(self, txn: Transaction) -> float:
        return -txn.weight
