"""The *Ready* baseline for dependent transactions (Section III-B).

The naive way to extend ASETS to workflows: keep a third *Wait* queue for
transactions whose dependency lists are not yet satisfied, and schedule the
ready transactions with plain transaction-level ASETS, oblivious to
whatever valuable transactions hide in the Wait queue.

In this package the simulator itself enforces precedence — a transaction
reaches the policy only through ``on_ready`` once its dependency list has
completed — so *Ready* is exactly transaction-level ASETS run on a
dependent workload.  The class exists as an explicitly named policy so
experiment configurations (Figure 14) read like the paper.
"""

from __future__ import annotations

from repro.policies.asets import ASETS

__all__ = ["Ready"]


class Ready(ASETS):
    """Wait-queue ASETS: dependency-blind scheduling of ready transactions.

    Parameters
    ----------
    weighted:
        Forwarded to :class:`~repro.policies.asets.ASETS`; Figure 14 uses
        the unweighted form.
    """

    name = "ready"
