"""Shortest-Remaining-Processing-Time.

Priority :math:`P_i = 1/r_i` (Section II-C).  SRPT minimises mean response
time [Schroeder & Harchol-Balter], which makes it the optimal tardiness
policy in the regime where *every* transaction has already missed its
deadline; at light load it wastes slack by preferring short transactions
with distant deadlines over urgent long ones (Example 1 / Figure 2a).
"""

from __future__ import annotations

from repro.core.transaction import Transaction
from repro.policies.base import HeapScheduler

__all__ = ["SRPT"]


class SRPT(HeapScheduler):
    """SRPT: the ready transaction with minimal remaining time :math:`r_i`."""

    name = "srpt"

    def key(self, txn: Transaction) -> float:
        return txn.scheduling_remaining
