"""ASETS*: the workflow-level, weighted general case (Sections III-B/III-C).

ASETS* lifts the two-list scheme from transactions to *workflows* so the
scheduler can see past the Wait queue: a workflow's position is determined
by its **representative transaction** (Definition 9 — earliest deadline,
shortest remaining time, largest weight among pending members), while the
transaction that actually executes is its **head transaction**
(Definition 8 — the ready member).

A workflow :math:`K_A` sits on the EDF-List iff its representative can
still meet its deadline, :math:`t + r_{rep,A} \\le d_{rep,A}`; otherwise it
sits on the HDF-List (which reduces to an SRPT-List under equal weights).
The EDF-List is ordered by :math:`d_{rep}`, the HDF-List by density
:math:`w_{rep}/r_{rep}`.

The winner is decided by weighted negative impact (Figure 7):

.. code-block:: text

    NI(WF_EDF) = r_head(WF_EDF) * w_rep(WF_HDF)
    NI(WF_HDF) = (r_head(WF_HDF) - s_rep(WF_EDF)) * w_rep(WF_EDF)
    run head(WF_EDF) iff NI(WF_EDF) < NI(WF_HDF), else head(WF_HDF)

With singleton workflows and unit weights this is exactly transaction-level
ASETS; the policy therefore "decides at which level to operate" simply by
the structure of the workload, as the paper advertises.

All quantities above are the *scheduler's* view: feasibility, density and
slack are computed from ``scheduling_remaining`` (the believed remaining
time aggregated from length estimates), matching ASETS and
:meth:`~repro.core.transaction.Transaction.is_past_deadline`.  Reading the
engine's ground-truth ``remaining`` here would be an oracle leak — with
inexact estimates the policy would rank by information the system cannot
have (§II-A) — and is forbidden by lint rule RL008.

Implementation note: workflow membership of the two lists depends on the
clock and representatives change whenever any member arrives, completes or
runs, so instead of heaps the policy scans the set of *active* workflows
(those with a pending member) at each scheduling point, using the cached
head/representative values maintained by
:class:`~repro.core.workflow_set.WorkflowSet`.  Workflows are pruned from
the active set as they complete, and workloads keep chains short
(Table I: length <= 10), so the scan is cheap in practice.
"""

from __future__ import annotations

from repro.core.transaction import Transaction, TransactionState
from repro.core.workflow import Workflow
from repro.errors import SchedulingError
from repro.policies.base import Scheduler

__all__ = ["ASETSStar"]


class ASETSStar(Scheduler):
    """Workflow-level ASETS* for weighted, dependent transactions."""

    name = "asets-star"
    requires_workflows = True

    def __init__(self) -> None:
        super().__init__()
        self._active: dict[int, Workflow] = {}

    # ------------------------------------------------------------------
    # Bookkeeping: track workflows that have at least one pending member.
    # ------------------------------------------------------------------
    def on_arrival(self, txn: Transaction, now: float) -> None:
        if self._workflow_set is None:
            raise SchedulingError("ASETS* requires a workflow set")
        for wf in self._workflow_set.workflows_of(txn.txn_id):
            self._active[wf.wf_id] = wf

    def on_ready(self, txn: Transaction, now: float) -> None:
        # Readiness is visible through the workflow caches; nothing to do
        # beyond the invalidation the simulator already performed.
        pass

    def on_requeue(self, txn: Transaction, now: float) -> None:
        pass

    # ------------------------------------------------------------------
    # Selection.
    # ------------------------------------------------------------------
    def select(self, now: float) -> Transaction | None:
        probe = self._probe
        if probe is None:
            best_edf, best_hdf = self._scan(now)
        else:
            with probe.span("scan"):
                best_edf, best_hdf = self._scan(now)
        if best_edf is None and best_hdf is None:
            return None
        if best_hdf is None:
            return self._head_of(best_edf)
        if best_edf is None:
            return self._head_of(best_hdf)
        if probe is None:
            return self._decide(best_edf, best_hdf, now)
        with probe.span("decide"):
            return self._decide(best_edf, best_hdf, now)

    def _scan(self, now: float) -> tuple[Workflow | None, Workflow | None]:
        """One pass over the active set: top of the EDF- and HDF-lists.

        Also prunes workflows whose representative vanished (all members
        reached a terminal state) — the paper's lists only ever hold
        pending workflows.
        """
        best_edf: Workflow | None = None
        best_edf_key: tuple[float, int] | None = None
        best_hdf: Workflow | None = None
        best_hdf_key: tuple[float, int] | None = None
        completed: list[int] = []

        for wf in self._active.values():
            rep = wf.representative()
            if rep is None:
                completed.append(wf.wf_id)
                continue
            head = wf.head()
            if head is None or head.state is not TransactionState.READY:
                continue  # workflow cannot run right now
            if now + rep.scheduling_remaining <= rep.deadline:
                key = (rep.deadline, wf.wf_id)
                if best_edf_key is None or key < best_edf_key:
                    best_edf, best_edf_key = wf, key
            else:
                key = (-(rep.weight / rep.scheduling_remaining), wf.wf_id)
                if best_hdf_key is None or key < best_hdf_key:
                    best_hdf, best_hdf_key = wf, key

        for wf_id in completed:
            del self._active[wf_id]
        return best_edf, best_hdf

    def _decide(self, wf_edf: Workflow, wf_hdf: Workflow, now: float) -> Transaction:
        """Figure 7 lines 15-21: weighted negative-impact comparison."""
        head_edf = self._head_of(wf_edf)
        head_hdf = self._head_of(wf_hdf)
        rep_edf = wf_edf.representative()
        rep_hdf = wf_hdf.representative()
        assert rep_edf is not None and rep_hdf is not None
        ni_edf = head_edf.scheduling_remaining * rep_hdf.weight
        ni_hdf = (head_hdf.scheduling_remaining - rep_edf.slack(now)) * rep_edf.weight
        if ni_edf < ni_hdf:
            return head_edf
        return head_hdf

    @staticmethod
    def _head_of(wf: Workflow | None) -> Transaction:
        assert wf is not None
        head = wf.head()
        if head is None:
            raise SchedulingError(
                f"workflow {wf.wf_id} lost its head between scan and dispatch"
            )
        return head

    # ------------------------------------------------------------------
    # Introspection for tests.
    # ------------------------------------------------------------------
    def edf_list(self, now: float) -> list[Workflow]:
        """Runnable workflows whose representative is feasible, EDF order."""
        out = [
            wf
            for wf in self._active.values()
            if self._runnable(wf) and not wf.representative().is_past_deadline(now)
        ]
        out.sort(key=lambda wf: (wf.representative().deadline, wf.wf_id))
        return out

    def hdf_list(self, now: float) -> list[Workflow]:
        """Runnable workflows whose representative is tardy, HDF order."""
        out = [
            wf
            for wf in self._active.values()
            if self._runnable(wf) and wf.representative().is_past_deadline(now)
        ]
        out.sort(
            key=lambda wf: (
                -(
                    wf.representative().weight
                    / wf.representative().scheduling_remaining
                ),
                wf.wf_id,
            )
        )
        return out

    @staticmethod
    def _runnable(wf: Workflow) -> bool:
        rep = wf.representative()
        head = wf.head()
        return (
            rep is not None
            and head is not None
            and head.state is TransactionState.READY
        )
