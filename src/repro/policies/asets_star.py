"""ASETS*: the workflow-level, weighted general case (Sections III-B/III-C).

ASETS* lifts the two-list scheme from transactions to *workflows* so the
scheduler can see past the Wait queue: a workflow's position is determined
by its **representative transaction** (Definition 9 — earliest deadline,
shortest remaining time, largest weight among pending members), while the
transaction that actually executes is its **head transaction**
(Definition 8 — the ready member).

A workflow :math:`K_A` sits on the EDF-List iff its representative can
still meet its deadline, :math:`t + r_{rep,A} \\le d_{rep,A}`; otherwise it
sits on the HDF-List (which reduces to an SRPT-List under equal weights).
The EDF-List is ordered by :math:`d_{rep}`, the HDF-List by density
:math:`w_{rep}/r_{rep}`.  Membership, both orderings and the density
guard are defined once, in :mod:`repro.policies.ordering`, and shared by
every code path below (reference scan, incremental heaps, introspection).

The winner is decided by weighted negative impact (Figure 7):

.. code-block:: text

    NI(WF_EDF) = r_head(WF_EDF) * w_rep(WF_HDF)
    NI(WF_HDF) = (r_head(WF_HDF) - s_rep(WF_EDF)) * w_rep(WF_EDF)
    run head(WF_EDF) iff NI(WF_EDF) < NI(WF_HDF), else head(WF_HDF)

With singleton workflows and unit weights this is exactly transaction-level
ASETS; the policy therefore "decides at which level to operate" simply by
the structure of the workload, as the paper advertises.

All quantities above are the *scheduler's* view: feasibility, density and
slack are computed from ``scheduling_remaining`` (the believed remaining
time aggregated from length estimates), matching ASETS and
:meth:`~repro.core.transaction.Transaction.is_past_deadline`.  Reading the
engine's ground-truth ``remaining`` here would be an oracle leak — with
inexact estimates the policy would rank by information the system cannot
have (§II-A) — and is forbidden by lint rule RL008.

Incremental selection
---------------------
Historically ``select`` re-scanned every active workflow at each
scheduling point — O(active), and the dominant engine cost at scale
(BENCH_engine.json).  The default implementation now maintains the two
lists *across* points as lazy-deletion heaps over workflows, dropping
select to O(log n) amortized:

* ``_edf`` holds ``(d_rep, wf_id, serial, wf)``, ``_hdf`` holds
  ``(hdf_rank, wf_id, serial, wf)``; a third heap ``_alarm`` holds the
  feasibility flip threshold ``d_rep - r_rep`` for every EDF entry.
* ``serial`` is a per-workflow integer bumped every time the workflow's
  entries are replaced; an entry whose serial no longer matches
  ``_serial[wf_id]`` is stale and discarded when it surfaces.  Integer
  serials make staleness a single ``!=`` on ints — no float-key
  re-derivation, no float equality.
* **Targeted invalidation**: every lifecycle hook (arrival, ready,
  requeue, completion, fault — the last covering abort, retry and shed)
  marks the transaction's workflows *dirty* rather than re-keying them
  eagerly.  The engine fires hooks before
  :meth:`~repro.core.workflow_set.WorkflowSet.notify_changed`, so an
  eager re-key would cache a stale representative; deferring the work to
  the start of the next ``select`` both fixes that and batches all
  same-timestamp events into one re-key per touched workflow.
* **Weak vs. strong touches**: a requeue (the engine suspends every
  running transaction at every scheduling point) only *shrinks* one
  member's believed remaining time.  For a workflow currently placed on
  the EDF side that moves neither its key (the rep deadline) nor its
  validity — the drain skips it entirely, which is what makes the
  steady state O(log n) instead of O(members) per point.  The same
  touch on an HDF-side or unplaced workflow is promoted to a full
  re-key (its density key moved, and less remaining work can even flip
  it back to feasible).  All other hooks are strong.
* **Lazy migration**: while a workflow waits, its believed remaining
  time is frozen, so it leaves the EDF-List exactly when the clock
  passes ``d_rep - r_rep``.  ``_migrate_expired`` pops alarms strictly
  below ``now`` and moves the workflow to the HDF side.  The threshold
  is a *wake-up*, never the membership test itself: membership is
  re-judged by :func:`~repro.policies.ordering.feasible_at`, and an
  alarm that fires a float-ulp early re-arms at ``now`` (the strict
  ``< now`` pop keeps that from looping within a point).  The EDF top is
  also re-checked at peek time, so an ulp-late alarm cannot leak an
  infeasible workflow into the EDF decision.  HDF entries need no
  re-check: with frozen values, infeasible stays infeasible as the
  clock advances.
* A workflow whose head is not READY when an entry surfaces (it was
  dispatched this point, or its ready member is blocked) is simply
  popped: the head's next lifecycle hook — requeue, completion or
  fault; every state change has one — re-places the workflow.

``ASETSStar(incremental=False)`` retains the original full-scan
implementation as the reference: both paths share the predicate, keys
and decision rule, and the property suite asserts they are
decision-identical across random workloads.
"""

from __future__ import annotations

from heapq import heappop, heappush

from repro.core.transaction import Transaction, TransactionState
from repro.core.workflow import RepresentativeView, Workflow
from repro.errors import SchedulingError
from repro.policies.base import Scheduler
from repro.policies.ordering import (
    edf_key,
    feasible_at,
    hdf_key,
    hdf_rank,
    latest_start,
)

__all__ = ["ASETSStar"]

_READY = TransactionState.READY

#: Inlined ``ordering.hdf_rank`` guard value for the flat hot path.
_NEG_INF = float("-inf")

#: Everything a decision needs about one list top, looked up exactly once.
_Entry = tuple[Workflow, RepresentativeView, Transaction]

#: Heap entry: (sort key, wf_id tie-break, validity serial, workflow).
_HeapEntry = tuple[float, int, int, Workflow]


class ASETSStar(Scheduler):
    """Workflow-level ASETS* for weighted, dependent transactions."""

    name = "asets-star"
    requires_workflows = True

    def __init__(self, incremental: bool = True) -> None:
        super().__init__()
        self._incremental = incremental
        self._active: dict[int, Workflow] = {}
        # Incremental-mode state (unused when incremental=False).
        #
        # _dirty: structural touches (arrival/ready/completion/fault) —
        #   membership or deadlines may have changed; full re-key.
        # _dirty_weak: requeue touches — only a member's believed
        #   remaining shrank.  That cannot move an EDF key (the rep
        #   deadline) and can only flip feasibility toward infeasible,
        #   which the EDF top re-judges at peek; only HDF density keys
        #   need re-keying.  Most scheduling points produce exactly one
        #   weak touch (the suspended transaction), so this distinction
        #   is the difference between O(log n) and O(members) per point.
        # _serial: per-workflow entry validity counter.
        # _side: current live placement, ``None`` when no valid entries
        #   are in any heap.  ``(True, deadline, alarm_threshold)`` for
        #   the EDF side, ``(False, rank)`` for the HDF side.  Carrying
        #   the live keys lets a re-key *keep* the existing entries when
        #   the recomputed key is unchanged (no serial bump, no pushes,
        #   no stale entries to pop later) — the common case for
        #   arrivals of later members and completions of non-critical
        #   ones.
        self._dirty: dict[int, Workflow] = {}
        self._dirty_weak: dict[int, Workflow] = {}
        # Dense arrays indexed by wf_id (WorkflowSet ids are 0..n-1,
        # sized at bind time): a serial bump orphans heap entries, a
        # ``None`` side means no live placement.
        self._serial: list[int] = []
        self._side: list[tuple | None] = []
        self._edf: list[_HeapEntry] = []
        self._hdf: list[_HeapEntry] = []
        self._alarm: list[_HeapEntry] = []
        # One-attribute-read bundle for the flat select path: a single
        # unpack replaces eight attribute loads per scheduling point.
        # Rebuilt in bind(), which resizes the dense arrays.
        self._hot = (
            self._dirty,
            self._dirty_weak,
            self._serial,
            self._side,
            self._edf,
            self._hdf,
            self._alarm,
            self._active,
        )

    def bind(self, transactions, workflow_set) -> None:  # type: ignore[no-untyped-def]
        super().bind(transactions, workflow_set)
        self._active.clear()
        self._dirty.clear()
        self._dirty_weak.clear()
        n_workflows = 0 if workflow_set is None else len(workflow_set)
        self._serial = [0] * n_workflows
        self._side = [None] * n_workflows
        self._edf.clear()
        self._hdf.clear()
        self._alarm.clear()
        self._hot = (
            self._dirty,
            self._dirty_weak,
            self._serial,
            self._side,
            self._edf,
            self._hdf,
            self._alarm,
            self._active,
        )

    # ------------------------------------------------------------------
    # Bookkeeping: track workflows that have at least one pending member.
    # ------------------------------------------------------------------
    def on_arrival(self, txn: Transaction, now: float) -> None:
        if self._workflow_set is None:
            raise SchedulingError("ASETS* requires a workflow set")
        incremental = self._incremental
        for wf in self._workflow_set.member_workflows(txn.txn_id):
            self._active[wf.wf_id] = wf
            if incremental:
                self._dirty[wf.wf_id] = wf

    def _touch(self, txn: Transaction) -> None:
        """Mark the transaction's workflows for re-keying at next select.

        Deferred on purpose: the engine calls policy hooks *before*
        invalidating the workflow caches, so re-keying here would read a
        stale representative.  The dirty set drains at select() start,
        after all same-timestamp events have been applied — one re-key
        per touched workflow per scheduling point, however many of its
        members changed state.
        """
        workflow_set = self._workflow_set
        if workflow_set is None:
            return
        dirty = self._dirty
        for wf in workflow_set.member_workflows(txn.txn_id):
            dirty[wf.wf_id] = wf

    def on_ready(self, txn: Transaction, now: float) -> None:
        if self._incremental:
            self._touch(txn)

    def on_requeue(self, txn: Transaction, now: float) -> None:
        # Weak touch: the believed remaining time was charged while the
        # transaction ran, but workflow membership and deadlines are
        # untouched — see the drain for what little this requires.
        if self._incremental:
            workflow_set = self._workflow_set
            if workflow_set is None:
                return
            weak = self._dirty_weak
            for wf in workflow_set.member_workflows(txn.txn_id):
                weak[wf.wf_id] = wf

    def on_completion(self, txn: Transaction, now: float) -> None:
        if self._incremental:
            self._touch(txn)

    def on_fault(self, txn: Transaction, now: float) -> None:
        # Abort (rollback resets the belief), retry scheduling and shed
        # all change representative values outside the normal lifecycle.
        if self._incremental:
            self._touch(txn)

    # ------------------------------------------------------------------
    # Selection.
    # ------------------------------------------------------------------
    def select(self, now: float) -> Transaction | None:
        probe = self._probe
        if not self._incremental:
            if probe is None:
                top_edf, top_hdf = self._scan(now)
            else:
                with probe.span("scan"):
                    top_edf, top_hdf = self._scan(now)
        elif probe is None:
            # Flat hot path: the probed branch below runs the same logic
            # through the modular helpers (`_drain` etc.) so spans can
            # bracket each stage; the profiling-neutrality test pins the
            # two branches to identical decisions.  Predicates and keys
            # are inlined from :mod:`repro.policies.ordering` — the
            # shared definitions remain the spec, and the scan-identity
            # property suite is what keeps this transcription honest.
            (
                strong,
                weak,
                serials,
                side,
                edf_heap,
                hdf_heap,
                alarms,
                active,
            ) = self._hot
            push = heappush
            pop = heappop
            ready = _READY

            # Touch drain (see _drain): weak requeue touches on a live
            # EDF placement need nothing at all.
            if weak:
                for wf_id, wf in weak.items():
                    if wf_id not in strong:
                        s = side[wf_id]
                        if s is None or not s[0]:
                            strong[wf_id] = wf
                weak.clear()
            if strong:
                for wf_id, wf in strong.items():
                    # Slot reads, not peek(): the aggregates are plain
                    # floats on the workflow after refresh, so the hot
                    # path never allocates a representative snapshot.
                    if wf._dirty:
                        wf._refresh()
                    if not wf.has_pending:
                        active.pop(wf_id, None)
                        serials[wf_id] += 1
                        side[wf_id] = None
                        continue
                    head = wf.head_txn
                    if head is None or head.state is not ready:
                        if side[wf_id] is not None:
                            serials[wf_id] += 1
                            side[wf_id] = None
                        continue
                    deadline = wf.rep_deadline
                    remaining = wf.rep_scheduling_remaining
                    s = side[wf_id]
                    if now + remaining <= deadline:  # ordering.feasible_at
                        thr = deadline - remaining  # ordering.latest_start
                        if (
                            s is not None
                            and s[0]
                            # repro-lint: disable=RL003 -- cached heap-key identity, not arithmetic
                            and s[1] == deadline
                            and thr >= s[2]
                        ):
                            continue  # live entries still correctly keyed
                        serial = serials[wf_id] + 1
                        serials[wf_id] = serial
                        push(edf_heap, (deadline, wf_id, serial, wf))
                        push(alarms, (thr, wf_id, serial, wf))
                        side[wf_id] = (True, deadline, thr)
                    else:
                        rank = (  # ordering.hdf_rank
                            _NEG_INF
                            if remaining <= 0.0
                            else -(wf.rep_weight / remaining)
                        )
                        if s is not None and not s[0] and s[1] == rank:
                            continue
                        serial = serials[wf_id] + 1
                        serials[wf_id] = serial
                        push(hdf_heap, (rank, wf_id, serial, wf))
                        side[wf_id] = (False, rank)
                strong.clear()

            # Feasibility-flip migration (see _migrate_expired).
            while alarms and alarms[0][0] < now:
                _, wf_id, serial, wf = pop(alarms)
                if serials[wf_id] != serial:
                    continue
                if wf._dirty:
                    wf._refresh()
                if not wf.has_pending:
                    active.pop(wf_id, None)
                    serials[wf_id] += 1
                    side[wf_id] = None
                    continue
                deadline = wf.rep_deadline
                remaining = wf.rep_scheduling_remaining
                if now + remaining <= deadline:
                    thr = deadline - remaining
                    if thr < now:
                        thr = now
                    push(alarms, (thr, wf_id, serial, wf))
                    side[wf_id] = (True, deadline, thr)
                    continue
                serial += 1
                serials[wf_id] = serial
                head = wf.head_txn
                if head is None or head.state is not ready:
                    side[wf_id] = None
                    continue
                rank = (
                    _NEG_INF
                    if remaining <= 0.0
                    else -(wf.rep_weight / remaining)
                )
                push(hdf_heap, (rank, wf_id, serial, wf))
                side[wf_id] = (False, rank)

            # EDF top (see _top_edf), feasibility re-judged at peek.
            head_edf = None
            edf_d = edf_b = edf_w = 0.0
            while edf_heap:
                _, wf_id, serial, wf = edf_heap[0]
                if serials[wf_id] != serial:
                    pop(edf_heap)
                    continue
                if wf._dirty:
                    wf._refresh()
                if not wf.has_pending:
                    pop(edf_heap)
                    active.pop(wf_id, None)
                    serials[wf_id] += 1
                    side[wf_id] = None
                    continue
                remaining = wf.rep_scheduling_remaining
                if now + remaining > wf.rep_deadline:
                    pop(edf_heap)
                    serial += 1
                    serials[wf_id] = serial
                    head = wf.head_txn
                    if head is not None and head.state is ready:
                        rank = (
                            _NEG_INF
                            if remaining <= 0.0
                            else -(wf.rep_weight / remaining)
                        )
                        push(hdf_heap, (rank, wf_id, serial, wf))
                        side[wf_id] = (False, rank)
                    else:
                        side[wf_id] = None
                    continue
                head = wf.head_txn
                if head is None or head.state is not ready:
                    pop(edf_heap)
                    serials[wf_id] = serial + 1
                    side[wf_id] = None
                    continue
                head_edf = head
                edf_d = wf.rep_deadline
                edf_b = remaining
                edf_w = wf.rep_weight
                break

            # HDF top (see _top_hdf), no feasibility re-check needed.
            head_hdf = None
            hdf_w = 0.0
            while hdf_heap:
                _, wf_id, serial, wf = hdf_heap[0]
                if serials[wf_id] != serial:
                    pop(hdf_heap)
                    continue
                if wf._dirty:
                    wf._refresh()
                if not wf.has_pending:
                    pop(hdf_heap)
                    active.pop(wf_id, None)
                    serials[wf_id] += 1
                    side[wf_id] = None
                    continue
                head = wf.head_txn
                if head is None or head.state is not ready:
                    pop(hdf_heap)
                    serials[wf_id] = serial + 1
                    side[wf_id] = None
                    continue
                head_hdf = head
                hdf_w = wf.rep_weight
                break

            if head_hdf is None:
                return head_edf
            if head_edf is None:
                return head_hdf
            # Figure 7 decision, slack inlined (see _decide).
            ni_edf = head_edf.scheduling_remaining * hdf_w
            ni_hdf = (
                head_hdf.scheduling_remaining - (edf_d - now - edf_b)
            ) * edf_w
            return head_edf if ni_edf < ni_hdf else head_hdf
        else:
            # One top-level span covering the whole incremental body
            # (the attribution contract is over top-level spans), with
            # nested spans carrying the per-stage breakdown.
            with probe.span("incremental"):
                with probe.span("touch"):
                    if self._dirty or self._dirty_weak:
                        self._drain(now)
                with probe.span("migrate"):
                    self._migrate_expired(now)
                with probe.span("top-edf"):
                    top_edf = self._top_edf(now)
                with probe.span("top-hdf"):
                    top_hdf = self._top_hdf()
                if top_hdf is None:
                    if top_edf is None:
                        return None
                    return top_edf[2]
                if top_edf is None:
                    return top_hdf[2]
                with probe.span("decide"):
                    return self._decide(top_edf, top_hdf, now)
        if top_hdf is None:
            if top_edf is None:
                return None
            return top_edf[2]
        if top_edf is None:
            return top_hdf[2]
        if probe is None:
            return self._decide(top_edf, top_hdf, now)
        with probe.span("decide"):
            return self._decide(top_edf, top_hdf, now)

    # -- reference scan (incremental=False) ----------------------------
    def _scan(self, now: float) -> tuple[_Entry | None, _Entry | None]:
        """One pass over the active set: top of the EDF- and HDF-lists.

        Also prunes workflows whose representative vanished (all members
        reached a terminal state) — the paper's lists only ever hold
        pending workflows.  Retained as the reference implementation the
        incremental path is property-tested against.
        """
        best_edf: _Entry | None = None
        best_edf_key: tuple[float, int] | None = None
        best_hdf: _Entry | None = None
        best_hdf_key: tuple[float, int] | None = None
        completed: list[int] = []

        for wf in self._active.values():
            rep = wf.representative()
            if rep is None:
                completed.append(wf.wf_id)
                continue
            head = wf.head()
            if head is None or head.state is not _READY:
                continue  # workflow cannot run right now
            if feasible_at(rep.deadline, rep.scheduling_remaining, now):
                key = edf_key(rep.deadline, wf.wf_id)
                if best_edf_key is None or key < best_edf_key:
                    best_edf, best_edf_key = (wf, rep, head), key
            else:
                key = hdf_key(rep.weight, rep.scheduling_remaining, wf.wf_id)
                if best_hdf_key is None or key < best_hdf_key:
                    best_hdf, best_hdf_key = (wf, rep, head), key

        for wf_id in completed:
            del self._active[wf_id]
        return best_edf, best_hdf

    # -- incremental structures ----------------------------------------
    def _drain(self, now: float) -> None:
        """Re-key every dirty workflow into the heaps (or out of them).

        Weak (requeue) touches are resolved first: a workflow with a live
        EDF entry needs *nothing* — the charged believed time cannot move
        the rep deadline (the EDF key), a feasibility flip is re-judged
        when the entry surfaces at the top, and its alarm threshold only
        became conservative-early (``d - r`` grows as ``r`` shrinks), so
        the wake-up re-arms itself with the fresh value.  A workflow with
        a live HDF entry *is* promoted to a full re-key: its density key
        moved, and the shrunken remaining time may even flip it back to
        feasible.  A workflow with no live entries re-keys fully too.
        """
        strong = self._dirty
        weak = self._dirty_weak
        side = self._side
        if weak:
            for wf_id, wf in weak.items():
                if wf_id not in strong:
                    s = side[wf_id]
                    if s is None or not s[0]:
                        strong[wf_id] = wf
            weak.clear()
        serials = self._serial
        active = self._active
        edf_heap = self._edf
        hdf_heap = self._hdf
        alarms = self._alarm
        for wf_id, wf in strong.items():
            rep, head = wf.peek()
            if rep is None:
                # All members terminal: prune.  Any surviving heap
                # entries are orphaned by the serial removal.
                active.pop(wf_id, None)
                serials[wf_id] += 1
                side[wf_id] = None
                continue
            if head is None or head.state is not _READY:
                # Not runnable right now; orphan any live entries — the
                # head's next lifecycle hook marks the workflow dirty
                # again.
                if side[wf_id] is not None:
                    serials[wf_id] += 1
                    side[wf_id] = None
                continue
            deadline = rep.deadline
            remaining = rep.scheduling_remaining
            s = side[wf_id]
            if feasible_at(deadline, remaining, now):
                thr = latest_start(deadline, remaining)
                # repro-lint: disable=RL003 -- cached heap-key identity, not arithmetic
                if s is not None and s[0] and s[1] == deadline and thr >= s[2]:
                    # Keep: same EDF key, and the live alarm threshold is
                    # merely conservative-early (it re-arms with the
                    # fresh value when it fires).
                    continue
                serial = serials[wf_id] + 1
                serials[wf_id] = serial
                heappush(edf_heap, (deadline, wf_id, serial, wf))
                heappush(alarms, (thr, wf_id, serial, wf))
                side[wf_id] = (True, deadline, thr)
            else:
                rank = hdf_rank(rep.weight, remaining)
                if s is not None and not s[0] and s[1] == rank:
                    continue  # keep: same HDF key
                serial = serials[wf_id] + 1
                serials[wf_id] = serial
                heappush(hdf_heap, (rank, wf_id, serial, wf))
                side[wf_id] = (False, rank)
        strong.clear()

    def _migrate_expired(self, now: float) -> None:
        """Move workflows whose feasibility flipped to the HDF side.

        Alarms are wake-ups, not judgements: membership is re-checked by
        the shared predicate, and an alarm that fired a float-ulp early
        re-arms at ``now`` (popped only once ``alarm < now``, i.e. at a
        later scheduling point, so this cannot loop within a point).
        """
        alarms = self._alarm
        serials = self._serial
        side = self._side
        hdf_heap = self._hdf
        while alarms and alarms[0][0] < now:
            _, wf_id, serial, wf = heappop(alarms)
            if serials[wf_id] != serial:
                continue  # superseded entry
            rep = wf.representative()
            if rep is None:
                self._active.pop(wf_id, None)
                serials[wf_id] += 1
                side[wf_id] = None
                continue
            remaining = rep.scheduling_remaining
            deadline = rep.deadline
            if feasible_at(deadline, remaining, now):
                # Re-arm at the *current* threshold: a weak touch may
                # have shrunk the believed remaining since this alarm was
                # set, pushing the real flip later — without the refresh
                # the stale-early alarm would refire at every point.
                thr = max(latest_start(deadline, remaining), now)
                heappush(alarms, (thr, wf_id, serial, wf))
                side[wf_id] = (True, deadline, thr)
                continue
            serial += 1
            serials[wf_id] = serial  # orphans the EDF entry
            head = wf.head()
            if head is None or head.state is not _READY:
                side[wf_id] = None
                continue  # re-placed by the head's next lifecycle hook
            rank = hdf_rank(rep.weight, remaining)
            heappush(hdf_heap, (rank, wf_id, serial, wf))
            side[wf_id] = (False, rank)

    def _top_edf(self, now: float) -> _Entry | None:
        """Valid top of the EDF heap, re-judging feasibility at peek.

        The peek-time re-check closes the other half of the float-ulp
        window: if the clock slipped past the feasibility flip before
        the alarm fired, the workflow migrates here instead of surfacing
        as a stale EDF top.
        """
        edf_heap = self._edf
        serials = self._serial
        side = self._side
        while edf_heap:
            _, wf_id, serial, wf = edf_heap[0]
            if serials[wf_id] != serial:
                heappop(edf_heap)
                continue
            rep = wf.representative()
            if rep is None:
                heappop(edf_heap)
                self._active.pop(wf_id, None)
                serials[wf_id] += 1
                side[wf_id] = None
                continue
            remaining = rep.scheduling_remaining
            if not feasible_at(rep.deadline, remaining, now):
                heappop(edf_heap)
                serial += 1
                serials[wf_id] = serial
                head = wf.head()
                if head is not None and head.state is _READY:
                    rank = hdf_rank(rep.weight, remaining)
                    heappush(self._hdf, (rank, wf_id, serial, wf))
                    side[wf_id] = (False, rank)
                else:
                    side[wf_id] = None
                continue
            head = wf.head()
            if head is None or head.state is not _READY:
                # Dispatched at this point (or blocked): pop, bump the
                # serial (orphaning the alarm) and clear the placement so
                # the head's next lifecycle hook — even a weak requeue —
                # re-keys the workflow from scratch.
                heappop(edf_heap)
                serials[wf_id] = serial + 1
                side[wf_id] = None
                continue
            return wf, rep, head
        return None

    def _top_hdf(self) -> _Entry | None:
        """Valid top of the HDF heap.

        No feasibility re-check: a waiting workflow's believed values
        are frozen, and ``now + r <= d`` is (weakly) monotone in ``now``,
        so a workflow placed on the HDF side can never flip back without
        a state change — which would have bumped its serial.
        """
        hdf_heap = self._hdf
        serials = self._serial
        side = self._side
        while hdf_heap:
            _, wf_id, serial, wf = hdf_heap[0]
            if serials[wf_id] != serial:
                heappop(hdf_heap)
                continue
            rep = wf.representative()
            if rep is None:
                heappop(hdf_heap)
                self._active.pop(wf_id, None)
                serials[wf_id] += 1
                side[wf_id] = None
                continue
            head = wf.head()
            if head is None or head.state is not _READY:
                heappop(hdf_heap)
                serials[wf_id] = serial + 1
                side[wf_id] = None
                continue
            return wf, rep, head
        return None

    # -- decision -------------------------------------------------------
    @staticmethod
    def _decide(top_edf: _Entry, top_hdf: _Entry, now: float) -> Transaction:
        """Figure 7 lines 15-21: weighted negative-impact comparison.

        Operates on the ``(workflow, representative, head)`` triples the
        list tops were found with — no re-lookup, so the decision cannot
        observe a different representative than the ordering did.
        """
        _, rep_edf, head_edf = top_edf
        _, rep_hdf, head_hdf = top_hdf
        ni_edf = head_edf.scheduling_remaining * rep_hdf.weight
        ni_hdf = (
            head_hdf.scheduling_remaining - rep_edf.slack(now)
        ) * rep_edf.weight
        if ni_edf < ni_hdf:
            return head_edf
        return head_hdf

    # ------------------------------------------------------------------
    # Introspection for tests.
    # ------------------------------------------------------------------
    def _partition(
        self, now: float
    ) -> tuple[
        list[tuple[tuple[float, int], Workflow]],
        list[tuple[tuple[float, int], Workflow]],
    ]:
        """(feasible, infeasible) runnable workflows with their sort keys.

        One ``representative()``/``head()`` lookup per workflow per call
        — the keys are computed once and carried next to the workflow,
        so a sort can never observe a different representative than the
        membership test did.  Shared by both list helpers and both
        select implementations' notion of membership
        (:mod:`repro.policies.ordering`).
        """
        feasible: list[tuple[tuple[float, int], Workflow]] = []
        infeasible: list[tuple[tuple[float, int], Workflow]] = []
        for wf in self._active.values():
            rep = wf.representative()
            if rep is None:
                continue
            head = wf.head()
            if head is None or head.state is not _READY:
                continue
            if feasible_at(rep.deadline, rep.scheduling_remaining, now):
                feasible.append((edf_key(rep.deadline, wf.wf_id), wf))
            else:
                infeasible.append(
                    (
                        hdf_key(
                            rep.weight, rep.scheduling_remaining, wf.wf_id
                        ),
                        wf,
                    )
                )
        feasible.sort(key=lambda entry: entry[0])
        infeasible.sort(key=lambda entry: entry[0])
        return feasible, infeasible

    def edf_list(self, now: float) -> list[Workflow]:
        """Runnable workflows whose representative is feasible, EDF order."""
        return [wf for _key, wf in self._partition(now)[0]]

    def hdf_list(self, now: float) -> list[Workflow]:
        """Runnable workflows whose representative is infeasible, HDF order."""
        return [wf for _key, wf in self._partition(now)[1]]
