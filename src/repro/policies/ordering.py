"""The single source of truth for ASETS-family list membership and order.

The paper's two-list scheme hinges on one predicate and two orderings:

* **feasibility** (Definitions 6/7) — an item belongs to the EDF-List iff
  it can still meet its deadline when started now,
  :math:`t + r \\le d`, judged on the scheduler's believed remaining time;
* the **EDF order** — feasible items sorted by deadline;
* the **HDF order** — infeasible items sorted by density :math:`w / r`
  (descending; equal weights reduce it to SRPT order).

Before this module existed each call site re-derived these expressions
locally (``ASETSStar._scan`` tested ``now + r <= d`` while the
introspection helpers asked ``is_past_deadline(now)``, and every density
key divided by the believed remaining time unguarded).  Re-derivation is
how orderings drift: a float-ulp difference in the membership test, or a
division by a zero believed remaining, changes a decision in one place
but not the other.  Scan-based selection, the incremental heap
structures, and the introspection helpers now all call the same three
functions below, so they *cannot* disagree.

Density guard
-------------
``believed_remaining`` can reach exactly ``0.0`` while a transaction is
still schedulable: under ``length_estimate_error`` the engine zeroes the
belief the instant the ground-truth work is exhausted, and a completion
event re-dispatched across a preemption can land a float ulp later than
the work ran out.  A representative aggregating such a member would make
``w / r`` raise ``ZeroDivisionError`` mid-sort.  The paper-consistent
reading of a zero remaining time is *infinite density* — no other item
can have a better weight-per-remaining-time ratio — so
:func:`hdf_key` maps it to ``-inf``, the front of the HDF list, with the
caller's id tie-break deciding among several.
"""

from __future__ import annotations

__all__ = [
    "feasible_at",
    "edf_key",
    "hdf_rank",
    "hdf_key",
    "latest_start",
]

_NEG_INF = float("-inf")


def feasible_at(deadline: float, scheduling_remaining: float, now: float) -> bool:
    """The EDF-List membership test: ``now + r <= d`` (Definition 6).

    Every ASETS-family component — the reference scan, the incremental
    heaps' placement and migration re-checks, and the ``edf_list`` /
    ``hdf_list`` introspection helpers — must call this function rather
    than re-deriving the comparison, so that all of them agree to the
    float ulp.
    """
    return now + scheduling_remaining <= deadline


def edf_key(deadline: float, tie_id: int) -> tuple[float, int]:
    """EDF-List sort key: earliest deadline first, smallest id on ties."""
    return (deadline, tie_id)


def hdf_rank(weight: float, scheduling_remaining: float) -> float:
    """Scalar HDF rank: negated density ``-(w / r)``, smaller = better.

    A zero believed remaining time means infinite density — the item
    ranks ``-inf``, the front of the HDF list; the caller's id tie-break
    decides among several exhausted-belief items deterministically.
    """
    if scheduling_remaining <= 0.0:
        return _NEG_INF
    return -(weight / scheduling_remaining)


def hdf_key(
    weight: float, scheduling_remaining: float, tie_id: int
) -> tuple[float, int]:
    """HDF-List sort key: :func:`hdf_rank` with the id tie-break attached."""
    return (hdf_rank(weight, scheduling_remaining), tie_id)


def latest_start(deadline: float, scheduling_remaining: float) -> float:
    """The feasibility flip threshold ``d - r`` (the migration alarm).

    While an item waits its believed remaining time is frozen, so it
    stays feasible exactly until the clock passes this value.  Float
    caveat: ``d - r < now`` and ``not (now + r <= d)`` can disagree by an
    ulp, so the threshold is only ever used as a *wake-up alarm* —
    membership itself is always re-judged by :func:`feasible_at`.
    """
    return deadline - scheduling_remaining
