"""MIX: a static linear blend of value and deadline (related work).

Buttazzo, Spuri & Sensini (RTSS '95) propose prioritising by a linear
combination of a transaction's value and its absolute deadline.  We use
the form :math:`P_i = d_i - \\lambda w_i` (smaller = higher priority):
``tradeoff=0`` degenerates to EDF and large ``tradeoff`` approaches HVF.

The paper contrasts MIX with ASETS* on exactly this point: MIX blends the
two signals *statically* through the system parameter :math:`\\lambda`,
whereas ASETS* is parameter-free and switches between its EDF and HDF
lists adaptively.  Including MIX lets the benchmark suite demonstrate that
no single :math:`\\lambda` dominates across utilizations.
"""

from __future__ import annotations

from repro.core.transaction import Transaction
from repro.errors import SchedulingError
from repro.policies.base import HeapScheduler

__all__ = ["MIX"]


class MIX(HeapScheduler):
    """MIX: priority :math:`d_i - \\lambda w_i` with a fixed tradeoff."""

    name = "mix"

    def __init__(self, tradeoff: float = 1.0) -> None:
        super().__init__()
        if tradeoff < 0:
            raise SchedulingError(f"MIX tradeoff must be >= 0, got {tradeoff}")
        self.tradeoff = tradeoff

    def key(self, txn: Transaction) -> float:
        return txn.deadline - self.tradeoff * txn.weight
