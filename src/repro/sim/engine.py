"""The discrete-event RTDBMS engine.

Model (Section IV-A): a backend database server processes one transaction
at a time.  Scheduling points are transaction **arrivals** and
**completions** — "ASETS* needs only to be invoked in response to two
types of events, the arrival and the completion of a transaction" — plus
the optional periodic **activation** ticks of the balance-aware policy.
At every scheduling point the engine suspends the running transaction
(charging it the elapsed processing time; preempted work is never lost),
lets the policy choose among all ready transactions, and dispatches the
choice until the next event.

Precedence is enforced by the engine, not the policies: a dependent
transaction is reported ``ready`` only after everything in its dependency
list has completed (Section II-A).  Policies that operate at the workflow
level additionally receive the :class:`~repro.core.workflow_set.WorkflowSet`,
whose cached head/representative views the engine invalidates whenever a
member transaction arrives, completes, or accumulates processing time.

As an extension beyond the paper (whose conclusion notes ASETS* "could be
applied in any Real-Time system"), the engine also supports ``servers``
> 1: at each scheduling point every running transaction is suspended and
the policy is asked repeatedly until all servers are busy or no ready
transaction remains.  With ``servers=1`` (the default, used by the whole
reproduction) the behaviour is exactly the paper's single-server model.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from time import perf_counter
from typing import TYPE_CHECKING, Sequence

from repro.core.transaction import Transaction, TransactionState
from repro.core.workflow_set import WorkflowSet
from repro.errors import SchedulingError, SimulationError
from repro.policies.base import Scheduler
from repro.sim.event_queue import EventQueue
from repro.sim.events import Event, EventKind
from repro.sim.results import SimulationResult, TransactionRecord
from repro.sim.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.hooks import Instrument

__all__ = ["Simulator"]

#: Tolerance for floating-point residues when a completion event fires.
_EPS = 1e-9


@dataclass(slots=True)
class _Dispatch:
    """Book-keeping for one transaction currently holding a server."""

    txn: Transaction
    since: float
    token: int
    #: Context-switch overhead still to be served before real work
    #: resumes (0 unless the simulator models preemption costs).
    overhead_left: float = 0.0


class Simulator:
    """Simulate one workload under one policy.

    Parameters
    ----------
    transactions:
        The transaction pool.  The engine resets each transaction before
        the run, so a generated workload can be replayed under several
        policies (construct a fresh policy per run).
    policy:
        The scheduling policy deciding at every scheduling point.
    workflow_set:
        Optional pre-built workflow network over ``transactions``.  Built
        automatically when the policy requires workflows; always validated
        against the same transaction objects.
    record_trace:
        When True the result carries a :class:`~repro.sim.trace.Trace` of
        execution slices.
    servers:
        Number of identical servers (default 1 = the paper's model).
    preemption_overhead:
        Context-switch cost in time units (default 0 = the paper's free
        preemption).  Charged whenever a server starts a transaction
        that was not running at the previous scheduling point — including
        a transaction's first dispatch (cache warm-up); a transaction
        that merely continues across a scheduling point pays nothing and
        keeps any unfinished overhead from its own dispatch.
    instrument:
        Optional :class:`~repro.obs.hooks.Instrument` receiving engine
        hooks (arrivals, dispatches, preemptions, completions,
        scheduling points).  ``None`` (the default) keeps the hot path
        free of any instrumentation cost beyond one ``is not None``
        check per call site; ``policy.select`` wall-time is measured
        (``perf_counter``) only when an instrument is attached.

    Examples
    --------
    >>> from repro.policies import EDF
    >>> txns = [
    ...     Transaction(1, arrival=0, length=2, deadline=4),
    ...     Transaction(2, arrival=0, length=1, deadline=2),
    ... ]
    >>> result = Simulator(txns, EDF()).run()
    >>> result.average_tardiness
    0.0
    """

    def __init__(
        self,
        transactions: Sequence[Transaction],
        policy: Scheduler,
        workflow_set: WorkflowSet | None = None,
        record_trace: bool = False,
        servers: int = 1,
        preemption_overhead: float = 0.0,
        instrument: "Instrument | None" = None,
    ) -> None:
        if not transactions:
            raise SimulationError("cannot simulate an empty transaction pool")
        if servers < 1:
            raise SimulationError(f"servers must be >= 1, got {servers}")
        if preemption_overhead < 0:
            raise SimulationError(
                f"preemption_overhead must be >= 0, got {preemption_overhead}"
            )
        self._overhead = preemption_overhead
        self._instrument = instrument
        self._txns = {txn.txn_id: txn for txn in transactions}
        if len(self._txns) != len(transactions):
            raise SimulationError("duplicate transaction ids in pool")
        self._policy = policy
        self._servers = servers
        if workflow_set is None and policy.requires_workflows:
            workflow_set = WorkflowSet(list(transactions))
        if workflow_set is not None:
            if workflow_set.transactions.keys() != self._txns.keys():
                raise SimulationError(
                    "workflow_set was built over a different transaction pool"
                )
        self._workflows = workflow_set
        self._trace = Trace() if record_trace else None
        # Dependency bookkeeping.
        self._dependents: dict[int, list[int]] = {tid: [] for tid in self._txns}
        for txn in self._txns.values():
            for dep in txn.depends_on:
                if dep not in self._txns:
                    raise SimulationError(
                        f"transaction {txn.txn_id} depends on unknown id {dep}"
                    )
                self._dependents[dep].append(txn.txn_id)
        self._check_acyclic()
        # Run state (initialised in run()).
        self._events = EventQueue()
        self._seq = itertools.count()
        self._pending_deps: dict[int, int] = {}
        self._running: dict[int, _Dispatch] = {}
        self._token_counter = 0
        self._completed = 0
        self._ready_count = 0
        self.scheduling_points = 0
        self.preemptions = 0

    def _check_acyclic(self) -> None:
        indegree = {tid: len(txn.depends_on) for tid, txn in self._txns.items()}
        frontier = [tid for tid, deg in indegree.items() if deg == 0]
        visited = 0
        while frontier:
            tid = frontier.pop()
            visited += 1
            for succ in self._dependents[tid]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    frontier.append(succ)
        if visited != len(self._txns):
            raise SimulationError("dependency graph contains a cycle")

    # ------------------------------------------------------------------
    # Main loop.
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Execute the workload to completion and return the result."""
        self._reset()
        n = len(self._txns)
        if self._instrument is not None:
            self._instrument.on_run_start(self._policy.name, n, self._servers)
        now = 0.0
        while self._completed < n:
            if not self._events:
                raise SimulationError(
                    f"event queue exhausted with {n - self._completed} "
                    "transactions incomplete"
                )
            batch = self._events.pop_batch()
            now = batch[0].time
            self._sync_running(now)
            for event in batch:
                self._handle(event, now)
            if self._completed >= n:
                break
            self._reschedule(now)
        if self._instrument is not None:
            self._instrument.on_run_end(now)
        records = [
            TransactionRecord.from_transaction(txn)
            for txn in sorted(self._txns.values(), key=lambda t: t.txn_id)
        ]
        return SimulationResult(
            self._policy.name,
            records,
            self._trace,
            scheduling_points=self.scheduling_points,
            preemptions=self.preemptions,
        )

    def _reset(self) -> None:
        for txn in self._txns.values():
            txn.reset()
        if self._workflows is not None:
            for wf in self._workflows:
                wf.invalidate()
        self._events = EventQueue()
        self._seq = itertools.count()
        self._pending_deps = {
            tid: len(txn.depends_on) for tid, txn in self._txns.items()
        }
        self._running = {}
        self._token_counter = 0
        self._completed = 0
        self._ready_count = 0
        self.scheduling_points = 0
        self.preemptions = 0
        self._policy.bind(list(self._txns.values()), self._workflows)
        for txn in self._txns.values():
            self._events.push(
                Event(txn.arrival, EventKind.ARRIVAL, next(self._seq), txn.txn_id)
            )
        period = self._policy.activation_period
        if period is not None:
            if period <= 0:
                raise SchedulingError(
                    f"activation_period must be > 0, got {period}"
                )
            self._events.push(
                Event(period, EventKind.ACTIVATION, next(self._seq))
            )

    # ------------------------------------------------------------------
    # Event handling.
    # ------------------------------------------------------------------
    def _sync_running(self, now: float) -> None:
        """Charge every running transaction for time since its dispatch."""
        for dispatch in self._running.values():
            elapsed = now - dispatch.since
            if elapsed < 0:
                raise SimulationError(
                    f"time moved backwards: dispatch at {dispatch.since}, "
                    f"event at {now}"
                )
            txn = dispatch.txn
            # Context-switch overhead is served before real work.
            overhead = min(elapsed, dispatch.overhead_left)
            dispatch.overhead_left -= overhead
            if overhead > 0.0 and self._instrument is not None:
                self._instrument.on_overhead(txn, overhead, now)
            txn.charge(min(elapsed - overhead, txn.remaining))
            if self._trace is not None:
                self._trace.record(txn.txn_id, dispatch.since, now)
            dispatch.since = now
            if elapsed > 0 and self._workflows is not None:
                self._workflows.notify_changed(txn.txn_id)

    def _handle(self, event: Event, now: float) -> None:
        if event.kind is EventKind.COMPLETION:
            self._handle_completion(event, now)
        elif event.kind is EventKind.ARRIVAL:
            self._handle_arrival(event, now)
        else:
            self._handle_activation(now)

    def _handle_completion(self, event: Event, now: float) -> None:
        dispatch = self._running.get(event.txn_id)
        if dispatch is None:
            return  # stale: that dispatch was preempted earlier
        if event.token != dispatch.token:
            # Usually stale (the dispatch this event was scheduled for was
            # preempted).  One exception: preemption + re-dispatch moves
            # the completion time by a float ulp, so the *old* event can
            # fire first with the work already fully charged — that event
            # IS the completion, a few ulps early.
            if dispatch.txn.remaining > _EPS:
                return
        txn = dispatch.txn
        if txn.remaining > _EPS:
            raise SimulationError(
                f"completion event fired with {txn.remaining} work left "
                f"on transaction {txn.txn_id}"
            )
        txn.remaining = 0.0
        txn.mark_completed(now)
        del self._running[event.txn_id]
        self._completed += 1
        self._policy.on_completion(txn, now)
        if self._instrument is not None:
            self._instrument.on_completion(txn, now)
        if self._workflows is not None:
            self._workflows.notify_changed(txn.txn_id)
        for dep_id in self._dependents[txn.txn_id]:
            self._pending_deps[dep_id] -= 1
            dependent = self._txns[dep_id]
            if (
                self._pending_deps[dep_id] == 0
                and dependent.state is TransactionState.WAITING
            ):
                dependent.mark_ready()
                self._ready_count += 1
                self._policy.on_ready(dependent, now)

    def _handle_arrival(self, event: Event, now: float) -> None:
        txn = self._txns[event.txn_id]
        self._policy.on_arrival(txn, now)
        if self._instrument is not None:
            self._instrument.on_arrival(txn, now)
        if self._pending_deps[txn.txn_id] == 0:
            txn.mark_ready()
            self._ready_count += 1
            self._policy.on_ready(txn, now)
        else:
            txn.mark_waiting()
        if self._workflows is not None:
            self._workflows.notify_changed(txn.txn_id)

    def _handle_activation(self, now: float) -> None:
        self._policy.on_activation(now)
        period = self._policy.activation_period
        if period is not None and self._completed < len(self._txns):
            self._events.push(
                Event(now + period, EventKind.ACTIVATION, next(self._seq))
            )

    # ------------------------------------------------------------------
    # Dispatch.
    # ------------------------------------------------------------------
    def _reschedule(self, now: float) -> None:
        self.scheduling_points += 1
        instrument = self._instrument
        previous = list(self._running.values())
        for dispatch in previous:
            dispatch.txn.mark_suspended()
            self._ready_count += 1
            self._policy.on_requeue(dispatch.txn, now)
        self._running.clear()

        previously_running = {d.txn.txn_id for d in previous}
        # Continuations keep their unfinished overhead; switches pay anew.
        leftover_overhead = {
            d.txn.txn_id: d.overhead_left for d in previous
        }
        dispatched: set[int] = set()
        select_seconds = 0.0
        for _ in range(self._servers):
            if instrument is not None:
                t0 = perf_counter()
                candidate = self._policy.select(now)
                select_seconds += perf_counter() - t0
            else:
                candidate = self._policy.select(now)
            if candidate is None:
                break
            if candidate.state is not TransactionState.READY:
                raise SchedulingError(
                    f"policy {self._policy.name} selected transaction "
                    f"{candidate.txn_id} in state {candidate.state}"
                )
            if candidate.remaining <= 0:
                raise SchedulingError(
                    f"policy {self._policy.name} selected finished "
                    f"transaction {candidate.txn_id}"
                )
            overhead = leftover_overhead.get(candidate.txn_id, self._overhead)
            self._dispatch(candidate, now, overhead)
            dispatched.add(candidate.txn_id)

        if previous and not dispatched:
            raise SchedulingError(
                f"policy {self._policy.name} idled while "
                f"{sorted(previously_running)} were runnable"
            )
        for dispatch in previous:
            txn = dispatch.txn
            if txn.txn_id not in dispatched and not txn.is_completed:
                txn.preemptions += 1
                self.preemptions += 1
                if instrument is not None:
                    instrument.on_preempt(txn, now)
        if instrument is not None:
            instrument.on_scheduling_point(
                now, self._ready_count, len(self._running), select_seconds
            )

    def _dispatch(self, txn: Transaction, now: float, overhead: float = 0.0) -> None:
        txn.mark_running(now)
        self._ready_count -= 1
        if self._instrument is not None:
            self._instrument.on_dispatch(txn, now, overhead)
        self._token_counter += 1
        self._running[txn.txn_id] = _Dispatch(
            txn=txn,
            since=now,
            token=self._token_counter,
            overhead_left=overhead,
        )
        self._events.push(
            Event(
                now + overhead + txn.remaining,
                EventKind.COMPLETION,
                next(self._seq),
                txn.txn_id,
                token=self._token_counter,
            )
        )
