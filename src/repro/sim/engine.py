"""The discrete-event RTDBMS engine.

Model (Section IV-A): a backend database server processes one transaction
at a time.  Scheduling points are transaction **arrivals** and
**completions** — "ASETS* needs only to be invoked in response to two
types of events, the arrival and the completion of a transaction" — plus
the optional periodic **activation** ticks of the balance-aware policy.
At every scheduling point the engine suspends the running transaction
(charging it the elapsed processing time; preempted work is never lost),
lets the policy choose among all ready transactions, and dispatches the
choice until the next event.

Precedence is enforced by the engine, not the policies: a dependent
transaction is reported ``ready`` only after everything in its dependency
list has completed (Section II-A).  Policies that operate at the workflow
level additionally receive the :class:`~repro.core.workflow_set.WorkflowSet`,
whose cached head/representative views the engine invalidates whenever a
member transaction arrives, completes, or accumulates processing time.

As an extension beyond the paper (whose conclusion notes ASETS* "could be
applied in any Real-Time system"), the engine also supports ``servers``
> 1: at each scheduling point every running transaction is suspended and
the policy is asked repeatedly until all servers are busy or no ready
transaction remains.  With ``servers=1`` (the default, used by the whole
reproduction) the behaviour is exactly the paper's single-server model.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from time import perf_counter
from typing import TYPE_CHECKING, Sequence

from repro.core.transaction import Transaction, TransactionState
from repro.core.workflow_set import WorkflowSet
from repro.errors import SchedulingError, SimulationError
from repro.policies.base import Scheduler
from repro.sim.event_queue import EventQueue
from repro.sim.events import Event, EventKind
from repro.sim.results import SimulationResult, StreamSummary, TransactionRecord
from repro.sim.soa import TxnTable
from repro.sim.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ckpt.snapshot import Checkpoint, Checkpointer
    from repro.faults.admission import ShedPolicy
    from repro.faults.plan import FaultPlan, TxnFaultSchedule
    from repro.obs.hooks import Instrument
    from repro.obs.profile import PhaseProfiler

__all__ = ["Simulator"]

#: Engine attributes captured by a run checkpoint (:mod:`repro.ckpt`).
#: Everything here must pickle as one object graph — shared Transaction
#: references between the pool, the SoA table, the event queue, the
#: running map and the policy keep their identity, which is what makes a
#: resumed run decision-identical to an uninterrupted one.  The frozen
#: tuple doubles as the snapshot schema: loads reject a payload whose
#: keys differ (:class:`~repro.errors.CheckpointError`).
_CKPT_CORE_FIELDS = (
    "_txns",
    "_table",
    "_workflows",
    "_trace",
    "_dependents",
    "_events",
    "_seq",
    "_pending_deps",
    "_running",
    "_token_counter",
    "_completed",
    "_finished",
    "_down",
    "_fault_state",
    "_faults",
    "_shed_policy",
    "_shed_limit",
    "_overhead",
    "_servers",
    "_retain_records",
    "scheduling_points",
    "preemptions",
    "_events_processed",
)

#: Tolerance for floating-point residues when a completion event fires.
_EPS = 1e-9

#: Event kinds charged to the ``faults`` profiling phase (the rest of the
#: batch loop is ``events``: arrivals, completions, activations).
_FAULT_KINDS = frozenset(
    (EventKind.FAULT, EventKind.CRASH, EventKind.RECOVER, EventKind.RETRY)
)


@dataclass(slots=True)
class _Dispatch:
    """Book-keeping for one transaction currently holding a server."""

    txn: Transaction
    since: float
    token: int
    #: Context-switch overhead still to be served before real work
    #: resumes (0 unless the simulator models preemption costs).
    overhead_left: float = 0.0


@dataclass(slots=True)
class _FaultState:
    """Mutable per-transaction cursor over its planned fault schedule."""

    schedule: "TxnFaultSchedule"
    #: Index of the next unconsumed abort point (one per attempt).
    next_abort: int = 0
    #: A stall fires at most once per transaction, across all attempts.
    stall_fired: bool = False


class Simulator:
    """Simulate one workload under one policy.

    Parameters
    ----------
    transactions:
        The transaction pool.  The engine resets each transaction before
        the run, so a generated workload can be replayed under several
        policies (construct a fresh policy per run).
    policy:
        The scheduling policy deciding at every scheduling point.
    workflow_set:
        Optional pre-built workflow network over ``transactions``.  Built
        automatically when the policy requires workflows; always validated
        against the same transaction objects.
    record_trace:
        When True the result carries a :class:`~repro.sim.trace.Trace` of
        execution slices.
    servers:
        Number of identical servers (default 1 = the paper's model).
    preemption_overhead:
        Context-switch cost in time units (default 0 = the paper's free
        preemption).  Charged whenever a server starts a transaction
        that was not running at the previous scheduling point — including
        a transaction's first dispatch (cache warm-up); a transaction
        that merely continues across a scheduling point pays nothing and
        keeps any unfinished overhead from its own dispatch.
    instrument:
        Optional :class:`~repro.obs.hooks.Instrument` receiving engine
        hooks (arrivals, dispatches, preemptions, completions,
        scheduling points).  ``None`` (the default) keeps the hot path
        free of any instrumentation cost beyond one ``is not None``
        check per call site; ``policy.select`` wall-time is measured
        (``perf_counter``) only when an instrument is attached.
    profiler:
        Optional :class:`~repro.obs.profile.PhaseProfiler` splitting the
        main loop's wall time into named phases (``pop``, ``sync``,
        ``events``, ``faults``, ``select``, ``dispatch``, ``emit``) and
        handing the policy a :class:`~repro.obs.profile.Probe` at bind
        time so its internal select stages self-attribute.  ``None``
        (the default) keeps the hot path identical to the unprofiled
        engine — the same zero-cost contract as ``instrument``.
        Profiling is observation-only: the event schedule and every
        simulation output stay byte-identical with or without it.
    faults:
        Optional :class:`~repro.faults.plan.FaultPlan` enabling fault
        injection: planned aborts with bounded retries and exponential
        backoff, server crash/recovery windows (crashed servers drain
        their running transaction back to the ready pool), transient
        processing stalls, and — when the plan's spec sets
        ``backlog_limit`` — admission control shedding lowest-value
        ready work under overload.  ``None`` (the default) keeps every
        code path and event schedule byte-identical to the fault-free
        engine.
    retain_records:
        When True (default) the result carries one
        :class:`~repro.sim.results.TransactionRecord` per transaction
        plus a by-id index.  ``False`` is streaming mode: the result
        carries only a constant-size
        :class:`~repro.sim.results.StreamSummary` (every aggregate
        metric still answers; per-transaction queries raise).  Pair with
        a :class:`~repro.obs.streaming.StreamingRecorder` instrument for
        quantiles and windowed time-series at bounded memory.
    checkpoint_every:
        Event-count interval between run checkpoints; requires
        ``checkpointer`` (and vice versa).  After every batch of
        simultaneous events, once at least this many events have been
        processed since the last snapshot, the engine hands itself to
        the checkpointer at the post-reschedule safe point.  ``None``
        (the default) keeps the hot path free of any checkpoint cost
        beyond one ``is not None`` check per batch.  Incompatible with
        ``profiler``: wall-clock phase timings cannot survive a resume,
        and the byte-identity contract of :mod:`repro.ckpt` only covers
        simulation outputs.
    checkpointer:
        The :class:`~repro.ckpt.snapshot.Checkpointer` that persists
        snapshots (atomically, to one file).  A run killed between
        snapshots resumes from the last one via :meth:`resume_from`
        and finishes byte-identical to an uninterrupted run.

    Examples
    --------
    >>> from repro.policies import EDF
    >>> txns = [
    ...     Transaction(1, arrival=0, length=2, deadline=4),
    ...     Transaction(2, arrival=0, length=1, deadline=2),
    ... ]
    >>> result = Simulator(txns, EDF()).run()
    >>> result.average_tardiness
    0.0
    """

    def __init__(
        self,
        transactions: Sequence[Transaction],
        policy: Scheduler,
        workflow_set: WorkflowSet | None = None,
        record_trace: bool = False,
        servers: int = 1,
        preemption_overhead: float = 0.0,
        instrument: "Instrument | None" = None,
        faults: "FaultPlan | None" = None,
        retain_records: bool = True,
        profiler: "PhaseProfiler | None" = None,
        checkpoint_every: int | None = None,
        checkpointer: "Checkpointer | None" = None,
    ) -> None:
        if not transactions:
            raise SimulationError("cannot simulate an empty transaction pool")
        if servers < 1:
            raise SimulationError(f"servers must be >= 1, got {servers}")
        if preemption_overhead < 0:
            raise SimulationError(
                f"preemption_overhead must be >= 0, got {preemption_overhead}"
            )
        if (checkpoint_every is None) != (checkpointer is None):
            raise SimulationError(
                "checkpoint_every and checkpointer must be given together"
            )
        if checkpoint_every is not None:
            if checkpoint_every < 1:
                raise SimulationError(
                    f"checkpoint_every must be >= 1, got {checkpoint_every}"
                )
            if profiler is not None:
                raise SimulationError(
                    "checkpointing cannot be combined with a profiler: "
                    "wall-clock phase timings do not survive a resume"
                )
        self._checkpoint_every = checkpoint_every or 0
        self._checkpointer = checkpointer
        self._resume_pending = False
        self._resume_now = 0.0
        self._events_processed = 0
        self._ckpt_due = 0
        self._overhead = preemption_overhead
        self._instrument = instrument
        self._profiler = profiler
        self._retain_records = retain_records
        self._faults = faults
        self._shed_policy: "ShedPolicy | None" = None
        self._shed_limit: int | None = None
        if faults is not None and faults.spec.backlog_limit is not None:
            from repro.faults.admission import make_shed_policy

            self._shed_limit = faults.spec.backlog_limit
            self._shed_policy = make_shed_policy(faults.spec.shed_policy)
        self._txns = {txn.txn_id: txn for txn in transactions}
        if len(self._txns) != len(transactions):
            raise SimulationError("duplicate transaction ids in pool")
        # Struct-of-arrays view over the pool: dense pool-order indices,
        # flat hot-field columns, and the engine's ready set.
        self._table = TxnTable(transactions)
        self._policy = policy
        self._servers = servers
        if workflow_set is None and policy.requires_workflows:
            workflow_set = WorkflowSet(list(transactions))
        if workflow_set is not None:
            if workflow_set.transactions.keys() != self._txns.keys():
                raise SimulationError(
                    "workflow_set was built over a different transaction pool"
                )
        self._workflows = workflow_set
        self._trace = Trace() if record_trace else None
        # Dependency bookkeeping.
        self._dependents: dict[int, list[int]] = {tid: [] for tid in self._txns}
        for txn in self._txns.values():
            for dep in txn.depends_on:
                if dep not in self._txns:
                    raise SimulationError(
                        f"transaction {txn.txn_id} depends on unknown id {dep}"
                    )
                self._dependents[dep].append(txn.txn_id)
        self._check_acyclic()
        # Run state (initialised in run()).
        self._events = EventQueue()
        self._seq = itertools.count()
        self._pending_deps: dict[int, int] = {}
        self._running: dict[int, _Dispatch] = {}
        self._token_counter = 0
        self._completed = 0
        #: Transactions in any terminal state (completed + aborted +
        #: shed); the run loop drains until every transaction finished.
        self._finished = 0
        self._down = 0
        self._fault_state: dict[int, _FaultState] = {}
        self.scheduling_points = 0
        self.preemptions = 0

    def _check_acyclic(self) -> None:
        indegree = {tid: len(txn.depends_on) for tid, txn in self._txns.items()}
        frontier = [tid for tid, deg in indegree.items() if deg == 0]
        visited = 0
        while frontier:
            tid = frontier.pop()
            visited += 1
            for succ in self._dependents[tid]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    frontier.append(succ)
        if visited != len(self._txns):
            raise SimulationError("dependency graph contains a cycle")

    # ------------------------------------------------------------------
    # Main loop.
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Execute the workload to completion and return the result.

        On a simulator built by :meth:`resume_from` the first call
        continues the checkpointed run instead of starting over: no
        reset, no ``on_run_start`` (the resumed instrument and log
        already carry the run's opening), picking up at the snapshot's
        simulated time.
        """
        n = len(self._txns)
        if self._resume_pending:
            self._resume_pending = False
            now = self._resume_now
        else:
            self._reset()
            if self._instrument is not None:
                self._instrument.on_run_start(
                    self._policy.name, n, self._servers
                )
            now = 0.0
        profiler = self._profiler
        ckpt = self._checkpointer
        while self._finished < n:
            if not self._events:
                raise SimulationError(
                    f"event queue exhausted with {n - self._finished} "
                    "transactions unfinished"
                )
            if profiler is not None:
                # Profiled loop body: identical work, phase-timed.  Kept
                # as a separate branch so the unprofiled path below pays
                # nothing (the zero-cost-when-off contract, RL001).
                t_pop = perf_counter()
                batch = self._events.pop_batch()
                now = batch[0].time
                t_sync = perf_counter()
                profiler.engine_phase("pop", t_sync - t_pop)
                self._sync_running(now)
                t_events = perf_counter()
                profiler.engine_phase("sync", t_events - t_sync)
                for event in batch:
                    t_handle = perf_counter()
                    self._handle(event, now)
                    profiler.engine_phase(
                        "faults" if event.kind in _FAULT_KINDS else "events",
                        perf_counter() - t_handle,
                    )
            else:
                batch = self._events.pop_batch()
                now = batch[0].time
                self._sync_running(now)
                for event in batch:
                    self._handle(event, now)
            if self._finished >= n:
                break
            self._reschedule(now)
            if ckpt is not None:
                # Post-reschedule safe point: every event of the batch is
                # applied and the dispatch/event-queue state is exactly
                # what the next pop will see.  Event counting only runs
                # with a checkpointer attached (zero-cost-when-off).
                self._events_processed += len(batch)
                if self._events_processed >= self._ckpt_due:
                    self._ckpt_due = (
                        self._events_processed + self._checkpoint_every
                    )
                    ckpt.save(self, now)
        if self._instrument is not None:
            self._instrument.on_run_end(now)
        if not self._retain_records:
            summary = StreamSummary.from_transactions(
                sorted(self._txns.values(), key=lambda t: t.txn_id),
                preemptions=self.preemptions,
            )
            return SimulationResult(
                self._policy.name,
                (),
                self._trace,
                scheduling_points=self.scheduling_points,
                preemptions=self.preemptions,
                stream_summary=summary,
            )
        records = [
            TransactionRecord.from_transaction(txn)
            for txn in sorted(self._txns.values(), key=lambda t: t.txn_id)
        ]
        return SimulationResult(
            self._policy.name,
            records,
            self._trace,
            scheduling_points=self.scheduling_points,
            preemptions=self.preemptions,
        )

    def _reset(self) -> None:
        for txn in self._txns.values():
            txn.reset()
        if self._workflows is not None:
            for wf in self._workflows:
                wf.invalidate()
        self._events = EventQueue()
        self._seq = itertools.count()
        self._pending_deps = {
            tid: len(txn.depends_on) for tid, txn in self._txns.items()
        }
        self._running = {}
        self._token_counter = 0
        self._completed = 0
        self._finished = 0
        self._down = 0
        self._table.reset()
        self.scheduling_points = 0
        self.preemptions = 0
        self._events_processed = 0
        self._ckpt_due = self._checkpoint_every
        self._policy.bind(list(self._txns.values()), self._workflows)
        # Probe attachment mirrors the instrument contract: without a
        # profiler the policy holds None and its select paths pay a
        # single ``is None`` check.
        self._policy.attach_probe(
            self._profiler.probe() if self._profiler is not None else None
        )
        # Seed arrivals off the flat columns: one contiguous float read
        # per transaction instead of two attribute lookups.
        table = self._table
        for i, txn_id in enumerate(table.ids):
            self._events.push(
                Event(table.arrival[i], EventKind.ARRIVAL, next(self._seq), txn_id)
            )
        if self._faults is not None:
            self._fault_state = {
                tid: _FaultState(schedule=sched)
                for tid, sched in sorted(self._faults.schedules.items())
            }
            for window in self._faults.crash_windows:
                self._events.push(
                    Event(window.start, EventKind.CRASH, next(self._seq))
                )
                self._events.push(
                    Event(window.end, EventKind.RECOVER, next(self._seq))
                )
        period = self._policy.activation_period
        if period is not None:
            if period <= 0:
                raise SchedulingError(
                    f"activation_period must be > 0, got {period}"
                )
            self._events.push(
                Event(period, EventKind.ACTIVATION, next(self._seq))
            )

    # ------------------------------------------------------------------
    # Checkpoint / resume (:mod:`repro.ckpt`).
    # ------------------------------------------------------------------
    def _checkpoint_payload(self) -> dict[str, object]:
        """The core engine state a run checkpoint captures.

        One entry per :data:`_CKPT_CORE_FIELDS` name; the checkpointer
        pickles the mapping together with the policy snapshot so shared
        object identity survives.  Reading attributes mutates nothing —
        taking a checkpoint must leave the run byte-identical to one
        that never checkpointed.
        """
        return {name: getattr(self, name) for name in _CKPT_CORE_FIELDS}

    @classmethod
    def resume_from(
        cls,
        checkpoint: "Checkpoint",
        *,
        instrument: "Instrument | None" = None,
        checkpoint_every: int | None = None,
        checkpointer: "Checkpointer | None" = None,
    ) -> "Simulator":
        """Rebuild a mid-run simulator from a loaded checkpoint.

        The returned simulator continues the interrupted run: the next
        :meth:`run` call skips the reset and the ``on_run_start`` hook
        and resumes the event loop at the snapshot's simulated time.
        ``instrument`` must itself be the *resumed* instrument (e.g. a
        :class:`~repro.obs.streaming.StreamingRecorder` rebuilt via
        ``from_state``) or ``None``; pass ``checkpointer`` and
        ``checkpoint_every`` to keep checkpointing the resumed run.
        Profilers never survive a resume.
        """
        if (checkpoint_every is None) != (checkpointer is None):
            raise SimulationError(
                "checkpoint_every and checkpointer must be given together"
            )
        if checkpoint_every is not None and checkpoint_every < 1:
            raise SimulationError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        sim = object.__new__(cls)
        for name, value in checkpoint.core.items():
            setattr(sim, name, value)
        sim._policy = checkpoint.restore_policy()
        sim._policy.attach_probe(None)
        sim._instrument = instrument
        sim._profiler = None
        sim._checkpoint_every = checkpoint_every or 0
        sim._checkpointer = checkpointer
        sim._ckpt_due = sim._events_processed + (checkpoint_every or 0)
        sim._resume_pending = True
        sim._resume_now = checkpoint.now
        return sim

    # ------------------------------------------------------------------
    # Event handling.
    # ------------------------------------------------------------------
    def _sync_running(self, now: float) -> None:
        """Charge every running transaction for time since its dispatch."""
        for dispatch in self._running.values():
            elapsed = now - dispatch.since
            if elapsed < 0:
                raise SimulationError(
                    f"time moved backwards: dispatch at {dispatch.since}, "
                    f"event at {now}"
                )
            txn = dispatch.txn
            if dispatch.overhead_left > 0.0:
                # Context-switch overhead is served before real work.
                overhead = min(elapsed, dispatch.overhead_left)
                dispatch.overhead_left -= overhead
                if overhead > 0.0 and self._instrument is not None:
                    self._instrument.on_overhead(txn, overhead, now)
                txn.charge(min(elapsed - overhead, txn.remaining))
            else:
                txn.charge(min(elapsed, txn.remaining))
            if self._trace is not None:
                self._trace.record(txn.txn_id, dispatch.since, now)
            dispatch.since = now
            if elapsed > 0 and self._workflows is not None:
                # A charge only shrinks the believed remaining: the
                # workflow aggregates merge in O(1), no re-sweep.
                self._workflows.notify_changed(txn.txn_id, "shrunk")

    def _handle(self, event: Event, now: float) -> None:
        if event.kind is EventKind.COMPLETION:
            self._handle_completion(event, now)
        elif event.kind is EventKind.ARRIVAL:
            self._handle_arrival(event, now)
        elif event.kind is EventKind.FAULT:
            self._handle_fault(event, now)
        elif event.kind is EventKind.CRASH:
            self._handle_crash(now)
        elif event.kind is EventKind.RECOVER:
            self._handle_recover(now)
        elif event.kind is EventKind.RETRY:
            self._handle_retry(event, now)
        else:
            self._handle_activation(now)

    def _handle_completion(self, event: Event, now: float) -> None:
        dispatch = self._running.get(event.txn_id)
        if dispatch is None:
            return  # stale: that dispatch was preempted earlier
        if event.token != dispatch.token:
            # Usually stale (the dispatch this event was scheduled for was
            # preempted).  One exception: preemption + re-dispatch moves
            # the completion time by a float ulp, so the *old* event can
            # fire first with the work already fully charged — that event
            # IS the completion, a few ulps early.
            if dispatch.txn.remaining > _EPS:
                return
        txn = dispatch.txn
        if txn.remaining > _EPS:
            raise SimulationError(
                f"completion event fired with {txn.remaining} work left "
                f"on transaction {txn.txn_id}"
            )
        txn.remaining = 0.0
        txn.mark_completed(now)
        del self._running[event.txn_id]
        self._completed += 1
        self._finished += 1
        self._policy.on_completion(txn, now)
        if self._instrument is not None:
            self._instrument.on_completion(txn, now)
        if self._workflows is not None:
            self._workflows.notify_changed(txn.txn_id)
        self._release_dependents(txn, now)

    def _release_dependents(self, txn: Transaction, now: float) -> None:
        """Unblock dependents once ``txn`` reached a terminal state.

        Shared by completion and by the terminal fault outcomes
        (aborted-exhausted, shed): a dead dependency no longer gates its
        dependents — the page renders the fragment from a fallback, the
        dependent fragments still materialise (documented in
        ``docs/faults.md``).  A dependent parked in retry-wait is never
        touched here: its dependencies completed before it first ran, so
        its pending count is already zero.
        """
        for dep_id in self._dependents[txn.txn_id]:
            self._pending_deps[dep_id] -= 1
            dependent = self._txns[dep_id]
            if (
                self._pending_deps[dep_id] == 0
                and dependent.state is TransactionState.WAITING
            ):
                dependent.mark_ready()
                self._table.mark_ready(dep_id)
                self._policy.on_ready(dependent, now)

    def _handle_arrival(self, event: Event, now: float) -> None:
        txn = self._txns[event.txn_id]
        self._policy.on_arrival(txn, now)
        if self._instrument is not None:
            self._instrument.on_arrival(txn, now)
        if self._pending_deps[txn.txn_id] == 0:
            txn.mark_ready()
            self._table.mark_ready(txn.txn_id)
            self._policy.on_ready(txn, now)
        else:
            txn.mark_waiting()
        if self._workflows is not None:
            # A new pending member only improves the min/max aggregates.
            self._workflows.notify_changed(txn.txn_id, "arrived")

    def _handle_activation(self, now: float) -> None:
        self._policy.on_activation(now)
        period = self._policy.activation_period
        if period is not None and self._finished < len(self._txns):
            self._events.push(
                Event(now + period, EventKind.ACTIVATION, next(self._seq))
            )

    # ------------------------------------------------------------------
    # Fault injection (:mod:`repro.faults`); no-ops without a fault plan.
    # ------------------------------------------------------------------
    def _pending_trigger(
        self, txn: Transaction, state: _FaultState
    ) -> tuple[str, float] | None:
        """The next planned fault of the current attempt, or ``None``.

        Thresholds are served-time positions within the attempt.  On a
        tie the stall fires first (it keeps the transaction running, so
        the subsequent abort still has something to interrupt).
        """
        sched = state.schedule
        best: tuple[str, float] | None = None
        if sched.stall_at is not None and not state.stall_fired:
            best = ("stall", sched.stall_at)
        if state.next_abort < len(sched.abort_points):
            abort_at = sched.abort_points[state.next_abort]
            if best is None or abort_at < best[1]:
                best = ("abort", abort_at)
        return best

    def _schedule_fault_trigger(
        self, txn: Transaction, now: float, overhead: float, token: int
    ) -> None:
        """Arm the attempt's next fault trigger, if it precedes completion.

        Called at dispatch (and after a stall re-issues the completion):
        the trigger fires once the attempt has served up to the planned
        threshold.  A preemption makes the event stale via its dispatch
        ``token`` — the work postpones, and so does the fault.
        """
        state = self._fault_state.get(txn.txn_id)
        if state is None:
            return
        trigger = self._pending_trigger(txn, state)
        if trigger is None:
            return
        delta = trigger[1] - txn.attempt_served
        if delta >= txn.remaining - 1e-12:
            return  # the attempt completes before the fault lands
        self._events.push(
            Event(
                now + overhead + max(0.0, delta),
                EventKind.FAULT,
                next(self._seq),
                txn.txn_id,
                token=token,
            )
        )

    def _handle_fault(self, event: Event, now: float) -> None:
        dispatch = self._running.get(event.txn_id)
        if dispatch is None or event.token != dispatch.token:
            return  # stale: that dispatch was preempted or re-issued
        txn = dispatch.txn
        state = self._fault_state[txn.txn_id]
        trigger = self._pending_trigger(txn, state)
        if trigger is None:  # pragma: no cover - defensive
            return
        if trigger[0] == "stall":
            self._fire_stall(dispatch, state, now)
        else:
            self._fire_abort(dispatch, state, now)

    def _fire_stall(
        self, dispatch: _Dispatch, state: _FaultState, now: float
    ) -> None:
        """Inflate the running attempt's true remaining work.

        The belief is untouched (a stall is invisible to the scheduler
        until the work out-lives its estimate), but the pending
        completion event is now premature: re-issue it under a fresh
        token and re-arm the next trigger of this attempt.
        """
        txn = dispatch.txn
        extra = state.schedule.stall_extra
        state.stall_fired = True
        txn.inflate(extra)
        if self._instrument is not None:
            self._instrument.on_stall(txn, extra, now)
        if self._workflows is not None:
            # Only engine-truth remaining moved; believed aggregates
            # are untouched (a stall is invisible to the scheduler).
            self._workflows.notify_changed(txn.txn_id, "truth")
        self._token_counter += 1
        dispatch.token = self._token_counter
        self._events.push(
            Event(
                now + dispatch.overhead_left + txn.remaining,
                EventKind.COMPLETION,
                next(self._seq),
                txn.txn_id,
                token=dispatch.token,
            )
        )
        self._schedule_fault_trigger(
            txn, now, dispatch.overhead_left, dispatch.token
        )

    def _fire_abort(
        self, dispatch: _Dispatch, state: _FaultState, now: float
    ) -> None:
        """Abort the running attempt: retry with backoff, or give up."""
        assert self._faults is not None
        spec = self._faults.spec
        txn = dispatch.txn
        state.next_abort += 1
        attempt = txn.retries
        full_restart = spec.work_loss == "restart"
        lost = txn.attempt_served if full_restart else 0.0
        exhausted = txn.retries >= spec.max_retries
        del self._running[txn.txn_id]
        if exhausted:
            txn.mark_aborted(now)
            self._finished += 1
            self._policy.on_fault(txn, now)
            if self._instrument is not None:
                self._instrument.on_abort(txn, now, lost, attempt, True)
            if self._workflows is not None:
                self._workflows.notify_changed(txn.txn_id)
            self._release_dependents(txn, now)
            return
        txn.mark_retry_wait()
        txn.rollback(full=full_restart)
        self._policy.on_fault(txn, now)
        if self._instrument is not None:
            self._instrument.on_abort(txn, now, lost, attempt, False)
        if self._workflows is not None:
            self._workflows.notify_changed(txn.txn_id)
        delay = spec.retry_delay * spec.retry_backoff**txn.retries
        self._events.push(
            Event(now + delay, EventKind.RETRY, next(self._seq), txn.txn_id)
        )

    def _handle_retry(self, event: Event, now: float) -> None:
        """Re-submit an aborted transaction after its backoff elapsed.

        The re-submission deadline stretches the original *relative*
        deadline by the backoff factor: retry ``k`` (1-based) gets
        ``now + (d - a) * backoff**(k-1)`` — the SLA of a re-issued
        fragment is renegotiated from the moment of re-submission.
        """
        assert self._faults is not None
        txn = self._txns[event.txn_id]
        spec = self._faults.spec
        relative = txn.submitted_deadline - txn.arrival
        new_deadline = now + relative * spec.retry_backoff**txn.retries
        txn.resubmit(now, new_deadline)
        self._table.mark_ready(txn.txn_id)
        if self._instrument is not None:
            self._instrument.on_retry(txn, now, txn.retries, new_deadline)
        self._policy.on_ready(txn, now)
        if self._workflows is not None:
            self._workflows.notify_changed(txn.txn_id)

    def _handle_crash(self, now: float) -> None:
        """A crash window opens: one server goes down.

        The dispatch drain is not special-cased: the universal
        suspend-and-reselect of :meth:`_reschedule` already returns every
        running transaction to the ready pool, and the reduced server
        count simply re-dispatches fewer of them (preempted work is
        never lost, so a drained transaction resumes where it stopped).
        """
        self._down += 1
        if self._instrument is not None:
            self._instrument.on_crash(now, self._down)

    def _handle_recover(self, now: float) -> None:
        self._down = max(0, self._down - 1)
        if self._instrument is not None:
            self._instrument.on_recover(now, self._down)

    def _shed_overload(self, now: float) -> None:
        """Admission control: shed lowest-value ready work over the limit.

        Runs before the universal suspend, so running work is never a
        victim.  Shedding a transaction releases its dependents (they
        render from fallbacks), which can push the backlog back over the
        limit — hence the loop, which terminates because every pass
        sheds at least one transaction.
        """
        assert self._shed_policy is not None and self._shed_limit is not None
        instrument = self._instrument
        table = self._table
        while True:
            # The ready set is maintained incrementally; materialising it
            # costs O(k log k) of the *ready* population, not an O(pool)
            # state scan — and reproduces the old scan's pool order, so
            # victim enumeration is byte-identical.
            excess = table.ready_count - self._shed_limit
            if excess <= 0:
                return
            ready = table.ready_transactions()
            for txn in self._shed_policy.victims(ready, now, excess):
                txn.mark_shed(now)
                table.unmark_ready(txn.txn_id)
                self._finished += 1
                self._policy.on_fault(txn, now)
                if instrument is not None:
                    instrument.on_shed(txn, now, self._shed_policy.name)
                if self._workflows is not None:
                    self._workflows.notify_changed(txn.txn_id)
                self._release_dependents(txn, now)

    # ------------------------------------------------------------------
    # Dispatch.
    # ------------------------------------------------------------------
    def _reschedule(self, now: float) -> None:
        self.scheduling_points += 1
        instrument = self._instrument
        profiler = self._profiler
        t_body = perf_counter() if profiler is not None else 0.0
        # Admission control runs before the universal suspend: only READY
        # work can be shed, never a transaction holding a server.
        if self._shed_limit is not None:
            self._shed_overload(now)
        table = self._table
        previous = list(self._running.values())
        for dispatch in previous:
            dispatch.txn.mark_suspended()
            table.mark_ready(dispatch.txn.txn_id)
            self._policy.on_requeue(dispatch.txn, now)
        self._running.clear()

        # Continuations keep their unfinished overhead; switches pay anew.
        # With free preemption (the paper's model) every overhead is zero
        # — skip building the carry-over map on that hot path entirely.
        leftover_overhead: dict[int, float] | None = (
            {d.txn.txn_id: d.overhead_left for d in previous}
            if self._overhead > 0.0
            else None
        )
        # Crashed servers accept no work until their window closes.
        available = (
            self._servers
            if self._faults is None
            else max(0, self._servers - self._down)
        )
        dispatched: set[int] = set()
        select_seconds = 0.0
        for _ in range(available):
            if profiler is not None:
                profiler.select_begin(table.ready_count)
                t0 = perf_counter()
                candidate = self._policy.select(now)
                dt = perf_counter() - t0
                select_seconds += dt
                profiler.select_end(dt)
            elif instrument is not None:
                t0 = perf_counter()
                candidate = self._policy.select(now)
                select_seconds += perf_counter() - t0
            else:
                candidate = self._policy.select(now)
            if candidate is None:
                break
            if candidate.state is not TransactionState.READY:
                raise SchedulingError(
                    f"policy {self._policy.name} selected transaction "
                    f"{candidate.txn_id} in state {candidate.state}"
                )
            if candidate.remaining <= 0:
                raise SchedulingError(
                    f"policy {self._policy.name} selected finished "
                    f"transaction {candidate.txn_id}"
                )
            overhead = (
                leftover_overhead.get(candidate.txn_id, self._overhead)
                if leftover_overhead is not None
                else 0.0
            )
            self._dispatch(candidate, now, overhead)
            dispatched.add(candidate.txn_id)

        if previous and not dispatched and available > 0:
            raise SchedulingError(
                f"policy {self._policy.name} idled while "
                f"{sorted(d.txn.txn_id for d in previous)} were runnable"
            )
        for dispatch in previous:
            txn = dispatch.txn
            if txn.txn_id not in dispatched and not txn.is_completed:
                txn.preemptions += 1
                self.preemptions += 1
                if instrument is not None:
                    instrument.on_preempt(txn, now)
        if profiler is not None:
            t_emit = perf_counter()
            if instrument is not None:
                instrument.on_scheduling_point(
                    now, table.ready_count, len(self._running), select_seconds
                )
            t_done = perf_counter()
            profiler.point_end(select_seconds, t_emit - t_body, t_done - t_emit)
        elif instrument is not None:
            instrument.on_scheduling_point(
                now, table.ready_count, len(self._running), select_seconds
            )

    def _dispatch(self, txn: Transaction, now: float, overhead: float = 0.0) -> None:
        txn.mark_running(now)
        self._table.unmark_ready(txn.txn_id)
        if self._instrument is not None:
            self._instrument.on_dispatch(txn, now, overhead)
        self._token_counter += 1
        self._running[txn.txn_id] = _Dispatch(
            txn=txn,
            since=now,
            token=self._token_counter,
            overhead_left=overhead,
        )
        self._events.push(
            Event(
                now + overhead + txn.remaining,
                EventKind.COMPLETION,
                next(self._seq),
                txn.txn_id,
                token=self._token_counter,
            )
        )
        if self._faults is not None:
            self._schedule_fault_trigger(txn, now, overhead, self._token_counter)
