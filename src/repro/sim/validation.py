"""Schedule validation: check that a trace is physically possible.

For downstream users writing their own policies, the engine's runtime
guards catch contract violations as they happen; this module checks a
*finished* schedule after the fact — useful when comparing against
schedules produced elsewhere (another simulator, a solver, a hand-drawn
Gantt) or when asserting invariants in tests:

* no transaction executes before its arrival,
* no transaction executes before its dependencies complete,
* per-transaction execution never overlaps itself,
* at most ``servers`` transactions execute at any instant,
* every transaction receives exactly its processing time (within
  tolerance; context-switch overhead is not part of a transaction's
  processing time, so validate overhead-free schedules).

:func:`validate_schedule` raises :class:`~repro.errors.SimulationError`
with a precise message on the first violation and returns quietly
otherwise.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.transaction import Transaction
from repro.errors import SimulationError
from repro.sim.trace import Trace

__all__ = ["validate_schedule"]

_EPS = 1e-6


def validate_schedule(
    trace: Trace,
    transactions: Sequence[Transaction],
    servers: int = 1,
) -> None:
    """Raise :class:`SimulationError` unless ``trace`` is a valid schedule.

    Examples
    --------
    >>> from repro.policies import EDF
    >>> from repro.sim.engine import Simulator
    >>> txns = [Transaction(1, arrival=0, length=2, deadline=9)]
    >>> result = Simulator(txns, EDF(), record_trace=True).run()
    >>> validate_schedule(result.trace, txns)  # no exception
    """
    if servers < 1:
        raise SimulationError(f"servers must be >= 1, got {servers}")
    by_id = {t.txn_id: t for t in transactions}

    received: dict[int, float] = {tid: 0.0 for tid in by_id}
    finish: dict[int, float] = {}
    for sl in trace:
        if sl.txn_id not in by_id:
            raise SimulationError(
                f"trace references unknown transaction {sl.txn_id}"
            )
        txn = by_id[sl.txn_id]
        if sl.start < txn.arrival - _EPS:
            raise SimulationError(
                f"transaction {txn.txn_id} executed at {sl.start} "
                f"before its arrival {txn.arrival}"
            )
        received[sl.txn_id] += sl.duration
        finish[sl.txn_id] = max(finish.get(sl.txn_id, sl.end), sl.end)

    for tid, txn in by_id.items():
        if abs(received[tid] - txn.length) > _EPS * max(1.0, txn.length):
            raise SimulationError(
                f"transaction {tid} received {received[tid]} time units, "
                f"needs {txn.length}"
            )

    # Self-overlap: a transaction's own slices must be disjoint.
    for tid in by_id:
        slices = trace.slices_of(tid)
        for a, b in zip(slices, slices[1:]):
            if b.start < a.end - _EPS:
                raise SimulationError(
                    f"transaction {tid} overlaps itself: "
                    f"[{a.start}, {a.end}) and [{b.start}, {b.end})"
                )

    # Capacity: sweep over slice endpoints.
    events: list[tuple[float, int]] = []
    for sl in trace:
        events.append((sl.start, 1))
        events.append((sl.end, -1))
    events.sort(key=lambda e: (e[0], e[1]))  # ends before starts at ties
    active = 0
    for time, delta in events:
        active += delta
        if active > servers:
            raise SimulationError(
                f"{active} transactions executing at t={time} "
                f"with only {servers} server(s)"
            )

    # Precedence: a dependent's first execution follows every
    # dependency's last.
    first_start = {
        tid: trace.slices_of(tid)[0].start if trace.slices_of(tid) else None
        for tid in by_id
    }
    for txn in by_id.values():
        start = first_start[txn.txn_id]
        if start is None:
            continue
        for dep in txn.depends_on:
            dep_finish = finish.get(dep)
            if dep_finish is None:
                raise SimulationError(
                    f"transaction {txn.txn_id} ran but its dependency "
                    f"{dep} never completed"
                )
            if start < dep_finish - _EPS:
                raise SimulationError(
                    f"transaction {txn.txn_id} started at {start} before "
                    f"dependency {dep} finished at {dep_finish}"
                )
