"""ASCII Gantt rendering of execution traces.

Turns a :class:`~repro.sim.trace.Trace` into a terminal chart — one row
per transaction, one glyph column per time bucket — which makes
scheduling decisions *visible*: preemptions appear as split bars, the
ASETS EDF/SRPT switch-over shows up as short transactions punching
through long ones, and idle periods are blank columns.

Mainly a debugging and teaching aid (see ``examples`` and the test
suite); not used by the experiments.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.sim.trace import Trace

__all__ = ["render_gantt"]


def render_gantt(
    trace: Trace,
    width: int = 72,
    max_rows: int = 30,
) -> str:
    """Render ``trace`` as an ASCII Gantt chart.

    Parameters
    ----------
    trace:
        The execution trace to draw.
    width:
        Number of time buckets (characters) across.
    max_rows:
        Transactions beyond this limit are summarised in a footer instead
        of drawn (charts taller than a screen help no one).

    Each row is labelled with the transaction id; a ``#`` marks buckets
    in which the transaction held a server for any fraction of the
    bucket.  With multiple servers, overlapping rows are expected.
    """
    slices = trace.slices()
    if not slices:
        raise SimulationError("cannot render an empty trace")
    if width < 10:
        raise SimulationError(f"gantt width must be >= 10, got {width}")
    start = min(sl.start for sl in slices)
    end = max(sl.end for sl in slices)
    span = end - start
    if span <= 0:
        raise SimulationError("trace has zero duration")
    bucket = span / width

    order = trace.order_of_first_execution()
    shown = order[:max_rows]
    hidden = len(order) - len(shown)

    label_width = max(len(str(tid)) for tid in shown) + 1
    lines = [
        f"time {start:g} .. {end:g}  ({bucket:g} per column)",
    ]
    for tid in shown:
        row = [" "] * width
        for sl in trace.slices_of(tid):
            first = int((sl.start - start) / bucket)
            last = int((sl.end - start) / bucket - 1e-12)
            for col in range(max(0, first), min(width - 1, last) + 1):
                row[col] = "#"
        lines.append(f"{tid:>{label_width}} |" + "".join(row) + "|")
    if hidden > 0:
        lines.append(f"... {hidden} more transactions not shown")
    return "\n".join(lines)
