"""Online transaction-length profiling.

Section II-A: "The length of the transaction is typically computed by
the system based on previous statistics and profiles of transaction
execution."  :class:`LengthProfiler` is that system component: an
exponential-moving-average estimator keyed by a *transaction class*
(e.g. ``"stocks-alice/portfolio"`` in the web-database substrate), fed
with observed execution times and queried for the estimate the scheduler
should use next time.

The web-database front end wires it in end to end: with execution-cost
noise enabled, the first run schedules on cost-model guesses, the
profiler observes the actual lengths, and subsequent runs schedule on
learned estimates (see ``WebDatabase(profiler=...)``).
"""

from __future__ import annotations

from repro.errors import SimulationError

__all__ = ["LengthProfiler"]


class LengthProfiler:
    """Per-class EMA length estimator.

    Parameters
    ----------
    smoothing:
        EMA weight of a new observation, in (0, 1].  1.0 keeps only the
        latest observation; small values average over long histories.

    Examples
    --------
    >>> profiler = LengthProfiler(smoothing=0.5)
    >>> profiler.estimate("q", fallback=10.0)
    10.0
    >>> profiler.observe("q", 20.0)
    >>> profiler.observe("q", 10.0)
    >>> profiler.estimate("q", fallback=0.0)
    15.0
    """

    def __init__(self, smoothing: float = 0.3) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise SimulationError(
                f"smoothing must be in (0, 1], got {smoothing}"
            )
        self.smoothing = smoothing
        self._ema: dict[str, float] = {}
        self._counts: dict[str, int] = {}

    def observe(self, key: str, actual_length: float) -> None:
        """Feed one observed execution length for class ``key``."""
        if actual_length <= 0:
            raise SimulationError(
                f"observed length must be > 0, got {actual_length}"
            )
        if key in self._ema:
            self._ema[key] = (
                self.smoothing * actual_length
                + (1.0 - self.smoothing) * self._ema[key]
            )
        else:
            self._ema[key] = actual_length
        self._counts[key] = self._counts.get(key, 0) + 1

    def estimate(self, key: str, fallback: float) -> float:
        """Current estimate for ``key``; ``fallback`` until first observation."""
        return self._ema.get(key, fallback)

    def observations(self, key: str) -> int:
        """How many executions of ``key`` have been observed."""
        return self._counts.get(key, 0)

    def known_classes(self) -> list[str]:
        return sorted(self._ema)

    def reset(self) -> None:
        self._ema.clear()
        self._counts.clear()

    def __repr__(self) -> str:
        return (
            f"LengthProfiler(smoothing={self.smoothing:g}, "
            f"classes={len(self._ema)})"
        )
