"""Array-backed struct-of-arrays bookkeeping over the transaction pool.

The engine's per-transaction hot state historically lived only on the
:class:`~repro.core.transaction.Transaction` objects, which makes every
"which transactions are currently X" question an O(pool) scan over
attribute lookups.  At the million-transaction tier those scans dominate
(admission control re-enumerated the whole pool at every scheduling
point under a backlog limit).

:class:`TxnTable` is the first step of the struct-of-arrays refactor: it
pins each transaction to a dense index in **pool order** (the order the
pool was handed to the engine — also the iteration order of the engine's
``_txns`` dict, which older scan code relied on) and keeps

* flat ``array('d')`` columns of the *workload-static* hot fields
  (arrival, submitted deadline, length, weight) — cache-friendly reads
  for seeding and for future vectorized consumers (the SRPT-k roadmap
  items), without touching the objects;
* the **ready set** as a set of dense indices, maintained by the engine
  at the exact sites that previously incremented/decremented its ready
  counter.  ``ready_count`` is O(1) and
  :meth:`ready_transactions` materialises the ready pool in pool order
  in O(k log k) of the *ready* population — replacing the O(pool) state
  scan, with a byte-identical resulting list.

Mutable believed/served quantities (``remaining``,
``believed_remaining``, dynamic deadlines across retries) intentionally
stay on the objects: they have a single writer (the engine) and many
low-frequency readers, so mirroring them here would buy nothing but a
dual-write invariant to maintain.
"""

from __future__ import annotations

from array import array
from typing import Sequence

from repro.core.transaction import Transaction

__all__ = ["TxnTable"]


class TxnTable:
    """Dense-index columns + ready-set over one transaction pool."""

    __slots__ = (
        "txns",
        "ids",
        "index_of",
        "arrival",
        "deadline",
        "length",
        "weight",
        "_ready",
    )

    def __init__(self, transactions: Sequence[Transaction]) -> None:
        #: Pool-order tuple; dense index ``i`` ↔ ``txns[i]``.
        self.txns: tuple[Transaction, ...] = tuple(transactions)
        self.ids = array("q", (txn.txn_id for txn in self.txns))
        self.index_of: dict[int, int] = {
            txn.txn_id: i for i, txn in enumerate(self.txns)
        }
        # Workload-static hot fields (submitted values; retries may move
        # a transaction's *dynamic* deadline on the object, never here).
        self.arrival = array("d", (txn.arrival for txn in self.txns))
        self.deadline = array("d", (txn.deadline for txn in self.txns))
        self.length = array("d", (txn.length for txn in self.txns))
        self.weight = array("d", (txn.weight for txn in self.txns))
        self._ready: set[int] = set()

    def reset(self) -> None:
        """Clear run state (the ready set); columns are workload-static."""
        self._ready.clear()

    # -- ready-set maintenance (engine-only writers) --------------------
    def mark_ready(self, txn_id: int) -> None:
        self._ready.add(self.index_of[txn_id])

    def unmark_ready(self, txn_id: int) -> None:
        self._ready.discard(self.index_of[txn_id])

    @property
    def ready_count(self) -> int:
        """Number of READY transactions, O(1)."""
        return len(self._ready)

    def ready_transactions(self) -> list[Transaction]:
        """The READY pool in pool order, O(k log k) of the ready count.

        Dense indices are pool-ordered, so sorting them reproduces the
        exact list the old ``for txn in pool: if READY`` scan built —
        shed-victim enumeration stays byte-identical.
        """
        txns = self.txns
        return [txns[i] for i in sorted(self._ready)]
