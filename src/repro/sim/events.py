"""Event types of the RTDBMS simulator.

Three kinds of events advance the simulation clock:

* ``ARRIVAL`` — a transaction is submitted to the database,
* ``COMPLETION`` — the running transaction finishes, and
* ``ACTIVATION`` — a periodic tick requested by the balance-aware policy
  (Section III-D, time-based activation).

Events carry a monotonically increasing sequence number so that
simultaneous events are processed in a deterministic order: completions
first (freeing dependents), then arrivals, then activation ticks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["EventKind", "Event"]


class EventKind(enum.IntEnum):
    """Event kinds, ordered by processing priority at equal timestamps."""

    COMPLETION = 0
    ARRIVAL = 1
    ACTIVATION = 2


@dataclass(frozen=True, slots=True)
class Event:
    """One scheduled simulator event.

    ``token`` invalidates stale completion events: the engine bumps its
    completion token whenever the running transaction is preempted, so a
    completion event scheduled for the old dispatch no longer applies.
    ``txn_id`` is ``None`` for activation ticks.
    """

    time: float
    kind: EventKind
    seq: int
    txn_id: int | None = None
    token: int = field(default=0)

    def sort_key(self) -> tuple[float, int, int]:
        """Heap ordering: by time, then kind priority, then insertion."""
        return (self.time, int(self.kind), self.seq)
