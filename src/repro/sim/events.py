"""Event types of the RTDBMS simulator.

Three kinds of events advance the simulation clock in every run:

* ``ARRIVAL`` — a transaction is submitted to the database,
* ``COMPLETION`` — the running transaction finishes, and
* ``ACTIVATION`` — a periodic tick requested by the balance-aware policy
  (Section III-D, time-based activation).

Fault injection (:mod:`repro.faults`) adds four more, never scheduled
without a fault plan:

* ``FAULT`` — a planned abort/stall trigger on a running transaction,
* ``CRASH`` / ``RECOVER`` — a server crash window opens / closes, and
* ``RETRY`` — an aborted transaction's re-submission delay elapsed.

Events carry a monotonically increasing sequence number so that
simultaneous events are processed in a deterministic order: completions
first (freeing dependents), then fault triggers and crash transitions,
then arrivals and retries, then activation ticks.  The relative order of
the original three kinds is unchanged, keeping fault-free runs
byte-identical to the pre-fault engine.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["EventKind", "Event"]


class EventKind(enum.IntEnum):
    """Event kinds, ordered by processing priority at equal timestamps."""

    COMPLETION = 0
    FAULT = 1
    CRASH = 2
    RECOVER = 3
    ARRIVAL = 4
    RETRY = 5
    ACTIVATION = 6


@dataclass(frozen=True, slots=True)
class Event:
    """One scheduled simulator event.

    ``token`` invalidates stale completion events: the engine bumps its
    completion token whenever the running transaction is preempted, so a
    completion event scheduled for the old dispatch no longer applies.
    ``txn_id`` is ``None`` for activation ticks.
    """

    time: float
    kind: EventKind
    seq: int
    txn_id: int | None = None
    token: int = field(default=0)

    def sort_key(self) -> tuple[float, int, int]:
        """Heap ordering: by time, then kind priority, then insertion."""
        return (self.time, int(self.kind), self.seq)
