"""A deterministic binary-heap event queue.

Thin wrapper around :mod:`heapq` that orders events by
``(time, kind, seq)`` — see :meth:`repro.sim.events.Event.sort_key` — and
offers the batch-pop the engine needs: all events sharing the earliest
timestamp are handled within a single scheduling point.
"""

from __future__ import annotations

import heapq
from typing import Iterator

from repro.sim.events import Event

__all__ = ["EventQueue"]


class EventQueue:
    """Min-heap of :class:`~repro.sim.events.Event` objects.

    Examples
    --------
    >>> from repro.sim.events import Event, EventKind
    >>> q = EventQueue()
    >>> q.push(Event(2.0, EventKind.ARRIVAL, seq=1, txn_id=7))
    >>> q.push(Event(2.0, EventKind.COMPLETION, seq=2, txn_id=3))
    >>> [e.kind.name for e in q.pop_batch()]
    ['COMPLETION', 'ARRIVAL']
    """

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: list[tuple[tuple[float, int, int], Event]] = []

    def push(self, event: Event) -> None:
        heapq.heappush(self._heap, (event.sort_key(), event))

    def peek_time(self) -> float:
        """Timestamp of the earliest pending event."""
        if not self._heap:
            raise IndexError("peek on empty event queue")
        return self._heap[0][1].time

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop on empty event queue")
        return heapq.heappop(self._heap)[1]

    def pop_batch(self) -> list[Event]:
        """Pop every event sharing the earliest timestamp, in kind order."""
        if not self._heap:
            raise IndexError("pop_batch on empty event queue")
        first = self.pop()
        batch = [first]
        # repro-lint: disable=RL003 -- batch identity: only events pushed
        # with a bit-identical timestamp belong to one scheduling point; a
        # tolerance here would merge distinct points an ulp apart.
        while self._heap and self._heap[0][1].time == first.time:
            batch.append(self.pop())
        return batch

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __iter__(self) -> Iterator[Event]:
        """Iterate pending events in an unspecified (heap) order."""
        return (entry[1] for entry in self._heap)
