"""Discrete-event RTDBMS simulator.

The paper evaluates ASETS* on a custom C++ real-time-DBMS simulator; this
subpackage is its Python equivalent.  The model is a single backend
database server executing one transaction at a time, preemptively at
*scheduling points* — transaction arrivals and completions (plus the
balance-aware policy's activation ticks).  At every scheduling point the
configured policy picks the next transaction; preempted work is never lost.

Public entry point::

    from repro.sim import Simulator
    result = Simulator(transactions, policy).run()
"""

from repro.sim.events import Event, EventKind
from repro.sim.event_queue import EventQueue
from repro.sim.engine import Simulator
from repro.sim.gantt import render_gantt
from repro.sim.profiler import LengthProfiler
from repro.sim.results import SimulationResult, TransactionRecord
from repro.sim.trace import ExecutionSlice, Trace
from repro.sim.validation import validate_schedule

__all__ = [
    "Event",
    "EventKind",
    "EventQueue",
    "Simulator",
    "SimulationResult",
    "TransactionRecord",
    "ExecutionSlice",
    "Trace",
    "LengthProfiler",
    "render_gantt",
    "validate_schedule",
]
