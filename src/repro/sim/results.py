"""Simulation outputs.

:class:`SimulationResult` carries one frozen record per transaction plus
the aggregate metrics of Definitions 3–5 (tardiness, average tardiness,
average weighted tardiness) and the worst-case metric of Section IV-F
(maximum weighted tardiness).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.transaction import Transaction, TransactionState
from repro.errors import SimulationError
from repro.sim.trace import Trace

__all__ = ["OUTCOMES", "TransactionRecord", "SimulationResult"]


#: Terminal outcomes a record can carry.  ``completed`` is the only one
#: reachable without fault injection; ``aborted`` means the retry budget
#: was exhausted, ``shed`` that admission control rejected the work.
OUTCOMES = ("completed", "aborted", "shed")

_STATE_TO_OUTCOME = {
    TransactionState.COMPLETED: "completed",
    TransactionState.ABORTED: "aborted",
    TransactionState.SHED: "shed",
}


@dataclass(frozen=True, slots=True)
class TransactionRecord:
    """Immutable per-transaction outcome of one simulation run.

    ``finish`` is the completion time for ``completed`` records and the
    abort/shed time otherwise.  ``first_start`` is ``None`` only for
    transactions shed before ever running.
    """

    txn_id: int
    arrival: float
    length: float
    deadline: float
    weight: float
    finish: float
    first_start: float | None
    preemptions: int
    outcome: str = "completed"
    retries: int = 0

    @property
    def tardiness(self) -> float:
        """Definition 3: :math:`\\max(0, f_i - d_i)`; 0 unless completed.

        Tardiness is only defined for work that was actually delivered;
        aborted and shed transactions are accounted as outcome counts,
        not as tardiness mass.
        """
        if self.outcome != "completed":
            return 0.0
        return max(0.0, self.finish - self.deadline)

    @property
    def weighted_tardiness(self) -> float:
        """Definition 5's summand: :math:`t_i w_i`."""
        return self.tardiness * self.weight

    @property
    def response_time(self) -> float:
        """Total time in system, :math:`f_i - a_i`."""
        return self.finish - self.arrival

    @property
    def met_deadline(self) -> bool:
        return self.outcome == "completed" and self.finish <= self.deadline

    @classmethod
    def from_transaction(cls, txn: Transaction) -> "TransactionRecord":
        outcome = _STATE_TO_OUTCOME.get(txn.state)
        if outcome is None or txn.finish_time is None:
            raise SimulationError(
                f"transaction {txn.txn_id} did not finish; cannot record"
            )
        if outcome == "completed" and txn.first_start_time is None:
            raise SimulationError(
                f"transaction {txn.txn_id} completed without ever starting"
            )
        return cls(
            txn_id=txn.txn_id,
            arrival=txn.arrival,
            length=txn.length,
            deadline=txn.deadline,
            weight=txn.weight,
            finish=txn.finish_time,
            first_start=txn.first_start_time,
            preemptions=txn.preemptions,
            outcome=outcome,
            retries=txn.retries,
        )


class SimulationResult:
    """Per-run metrics over a completed transaction set.

    Parameters
    ----------
    policy_name:
        Name of the scheduling policy that produced the run.
    records:
        One :class:`TransactionRecord` per completed transaction.
    trace:
        Optional execution trace (``None`` unless tracing was enabled).
    scheduling_points:
        How many scheduling points the engine executed (``None`` when the
        result was built outside the engine, e.g. in tests).
    preemptions:
        Total preemptions over the run.  Defaults to the sum of the
        per-record preemption counts, which is what the engine reports.
    """

    def __init__(
        self,
        policy_name: str,
        records: Sequence[TransactionRecord],
        trace: Trace | None = None,
        scheduling_points: int | None = None,
        preemptions: int | None = None,
    ) -> None:
        if not records:
            raise SimulationError("a simulation result needs >= 1 record")
        self.policy_name = policy_name
        self.records = tuple(records)
        self.trace = trace
        self.scheduling_points = scheduling_points
        self.total_preemptions = (
            preemptions
            if preemptions is not None
            else sum(r.preemptions for r in self.records)
        )
        self._by_id = {r.txn_id: r for r in self.records}

    # ------------------------------------------------------------------
    # Aggregates (Definitions 4 and 5, plus Section IV-F's worst case).
    #
    # Tardiness aggregates average over the *completed* transactions
    # (records carry zero tardiness otherwise); without fault injection
    # every record is completed and the definitions are the paper's.
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return len(self.records)

    @property
    def _n_completed(self) -> int:
        count = sum(1 for r in self.records if r.outcome == "completed")
        return count if count else 1  # guard: all-failed run averages to 0

    @property
    def average_tardiness(self) -> float:
        """Definition 4: :math:`\\frac{1}{N}\\sum t_i` over completed work."""
        return sum(r.tardiness for r in self.records) / self._n_completed

    @property
    def average_weighted_tardiness(self) -> float:
        """Definition 5: :math:`\\frac{1}{N}\\sum t_i w_i` over completed work."""
        return (
            sum(r.weighted_tardiness for r in self.records) / self._n_completed
        )

    @property
    def max_tardiness(self) -> float:
        return max(r.tardiness for r in self.records)

    @property
    def max_weighted_tardiness(self) -> float:
        """Worst-case metric of Figure 16."""
        return max(r.weighted_tardiness for r in self.records)

    @property
    def average_response_time(self) -> float:
        completed = [r for r in self.records if r.outcome == "completed"]
        if not completed:
            return 0.0
        return sum(r.response_time for r in completed) / len(completed)

    @property
    def total_tardiness(self) -> float:
        return sum(r.tardiness for r in self.records)

    @property
    def total_weighted_tardiness(self) -> float:
        return sum(r.weighted_tardiness for r in self.records)

    @property
    def deadline_miss_ratio(self) -> float:
        """Fraction of completed transactions finishing past their deadline."""
        completed = [r for r in self.records if r.outcome == "completed"]
        if not completed:
            return 0.0
        missed = sum(1 for r in completed if not r.met_deadline)
        return missed / len(completed)

    @property
    def tardy_count(self) -> int:
        """How many transactions completed after their deadline."""
        return sum(
            1
            for r in self.records
            if r.outcome == "completed" and not r.met_deadline
        )

    # ------------------------------------------------------------------
    # Outcome taxonomy (fault injection; all-zero in fault-free runs).
    # ------------------------------------------------------------------
    @property
    def completed_count(self) -> int:
        """How many transactions ran to completion."""
        return sum(1 for r in self.records if r.outcome == "completed")

    @property
    def aborted_count(self) -> int:
        """How many transactions exhausted their retry budget."""
        return sum(1 for r in self.records if r.outcome == "aborted")

    @property
    def shed_count(self) -> int:
        """How many transactions admission control rejected."""
        return sum(1 for r in self.records if r.outcome == "shed")

    @property
    def total_retries(self) -> int:
        """Total re-submissions across the run."""
        return sum(r.retries for r in self.records)

    @property
    def makespan(self) -> float:
        """Completion time of the last transaction."""
        return max(r.finish for r in self.records)

    def record_of(self, txn_id: int) -> TransactionRecord:
        try:
            return self._by_id[txn_id]
        except KeyError:
            raise KeyError(f"no record for transaction {txn_id}") from None

    def finish_order(self) -> list[int]:
        """Transaction ids sorted by completion time."""
        return [r.txn_id for r in sorted(self.records, key=lambda r: r.finish)]

    def tardy_records(self) -> list[TransactionRecord]:
        """Records of completed transactions that missed their deadline."""
        return [
            r
            for r in self.records
            if r.outcome == "completed" and not r.met_deadline
        ]

    def tardiness_by_id(self) -> dict[int, float]:
        """Measured per-transaction tardiness, keyed by transaction id.

        The ground truth the forensics layer (:mod:`repro.obs.analyze`)
        must reproduce from the event log alone — blame components for a
        tardy transaction sum to exactly these values.
        """
        return {r.txn_id: r.tardiness for r in self.records}

    def summary(self) -> dict[str, float]:
        """A plain-dict summary, convenient for tabulation and JSON."""
        out = {
            "n": float(self.n),
            "average_tardiness": self.average_tardiness,
            "average_weighted_tardiness": self.average_weighted_tardiness,
            "max_tardiness": self.max_tardiness,
            "max_weighted_tardiness": self.max_weighted_tardiness,
            "deadline_miss_ratio": self.deadline_miss_ratio,
            "average_response_time": self.average_response_time,
            "makespan": self.makespan,
            "total_preemptions": float(self.total_preemptions),
            "completed": float(self.completed_count),
            "aborted": float(self.aborted_count),
            "shed": float(self.shed_count),
            "retries": float(self.total_retries),
        }
        if self.scheduling_points is not None:
            out["scheduling_points"] = float(self.scheduling_points)
        return out

    @staticmethod
    def mean_over_runs(
        results: Iterable["SimulationResult"], metric: str
    ) -> float:
        """Average one named metric over several runs (the paper's 5 seeds)."""
        values = [getattr(res, metric) for res in results]
        if not values:
            raise SimulationError("mean_over_runs needs >= 1 result")
        return sum(values) / len(values)

    def __repr__(self) -> str:
        return (
            f"SimulationResult(policy={self.policy_name!r}, n={self.n}, "
            f"avg_tardiness={self.average_tardiness:.3f}, "
            f"avg_weighted={self.average_weighted_tardiness:.3f})"
        )
