"""Simulation outputs.

:class:`SimulationResult` carries one frozen record per transaction plus
the aggregate metrics of Definitions 3–5 (tardiness, average tardiness,
average weighted tardiness) and the worst-case metric of Section IV-F
(maximum weighted tardiness).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.transaction import Transaction, TransactionState
from repro.errors import SimulationError
from repro.sim.trace import Trace

__all__ = ["OUTCOMES", "TransactionRecord", "StreamSummary", "SimulationResult"]


#: Terminal outcomes a record can carry.  ``completed`` is the only one
#: reachable without fault injection; ``aborted`` means the retry budget
#: was exhausted, ``shed`` that admission control rejected the work.
OUTCOMES = ("completed", "aborted", "shed")

_STATE_TO_OUTCOME = {
    TransactionState.COMPLETED: "completed",
    TransactionState.ABORTED: "aborted",
    TransactionState.SHED: "shed",
}


@dataclass(frozen=True, slots=True)
class TransactionRecord:
    """Immutable per-transaction outcome of one simulation run.

    ``finish`` is the completion time for ``completed`` records and the
    abort/shed time otherwise.  ``first_start`` is ``None`` only for
    transactions shed before ever running.
    """

    txn_id: int
    arrival: float
    length: float
    deadline: float
    weight: float
    finish: float
    first_start: float | None
    preemptions: int
    outcome: str = "completed"
    retries: int = 0

    @property
    def tardiness(self) -> float:
        """Definition 3: :math:`\\max(0, f_i - d_i)`; 0 unless completed.

        Tardiness is only defined for work that was actually delivered;
        aborted and shed transactions are accounted as outcome counts,
        not as tardiness mass.
        """
        if self.outcome != "completed":
            return 0.0
        return max(0.0, self.finish - self.deadline)

    @property
    def weighted_tardiness(self) -> float:
        """Definition 5's summand: :math:`t_i w_i`."""
        return self.tardiness * self.weight

    @property
    def response_time(self) -> float:
        """Total time in system, :math:`f_i - a_i`."""
        return self.finish - self.arrival

    @property
    def met_deadline(self) -> bool:
        return self.outcome == "completed" and self.finish <= self.deadline

    @classmethod
    def from_transaction(cls, txn: Transaction) -> "TransactionRecord":
        outcome = _STATE_TO_OUTCOME.get(txn.state)
        if outcome is None or txn.finish_time is None:
            raise SimulationError(
                f"transaction {txn.txn_id} did not finish; cannot record"
            )
        if outcome == "completed" and txn.first_start_time is None:
            raise SimulationError(
                f"transaction {txn.txn_id} completed without ever starting"
            )
        return cls(
            txn_id=txn.txn_id,
            arrival=txn.arrival,
            length=txn.length,
            deadline=txn.deadline,
            weight=txn.weight,
            finish=txn.finish_time,
            first_start=txn.first_start_time,
            preemptions=txn.preemptions,
            outcome=outcome,
            retries=txn.retries,
        )


@dataclass(frozen=True, slots=True)
class StreamSummary:
    """Constant-size aggregates of a run whose records were not retained.

    Built by the engine under ``retain_records=False`` (streaming mode):
    one pass over the transaction pool at run end, no
    :class:`TransactionRecord` tuple, no by-id index.  Every aggregate a
    :class:`SimulationResult` exposes is answerable from these scalars;
    per-transaction queries are not (use streaming telemetry's top-k for
    the heaviest culprits instead).
    """

    n: int
    completed: int
    tardy: int
    aborted: int
    shed: int
    retries: int
    preemptions: int
    total_tardiness: float
    total_weighted_tardiness: float
    max_tardiness: float
    max_weighted_tardiness: float
    total_response_time: float
    makespan: float

    @classmethod
    def from_transactions(
        cls, transactions: Iterable[Transaction], preemptions: int = 0
    ) -> "StreamSummary":
        n = completed = tardy = aborted = shed = retries = 0
        total_t = total_wt = max_t = max_wt = total_resp = makespan = 0.0
        for txn in transactions:
            outcome = _STATE_TO_OUTCOME.get(txn.state)
            if outcome is None or txn.finish_time is None:
                raise SimulationError(
                    f"transaction {txn.txn_id} did not finish; cannot record"
                )
            n += 1
            retries += txn.retries
            if txn.finish_time > makespan:
                makespan = txn.finish_time
            if outcome == "aborted":
                aborted += 1
                continue
            if outcome == "shed":
                shed += 1
                continue
            completed += 1
            tardiness = max(0.0, txn.finish_time - txn.deadline)
            weighted = tardiness * txn.weight
            total_t += tardiness
            total_wt += weighted
            if tardiness > 0.0:
                tardy += 1
            if tardiness > max_t:
                max_t = tardiness
            if weighted > max_wt:
                max_wt = weighted
            total_resp += txn.finish_time - txn.arrival
        return cls(
            n=n,
            completed=completed,
            tardy=tardy,
            aborted=aborted,
            shed=shed,
            retries=retries,
            preemptions=preemptions,
            total_tardiness=total_t,
            total_weighted_tardiness=total_wt,
            max_tardiness=max_t,
            max_weighted_tardiness=max_wt,
            total_response_time=total_resp,
            makespan=makespan,
        )


class SimulationResult:
    """Per-run metrics over a completed transaction set.

    Parameters
    ----------
    policy_name:
        Name of the scheduling policy that produced the run.
    records:
        One :class:`TransactionRecord` per completed transaction — or
        empty, iff ``stream_summary`` is given.
    trace:
        Optional execution trace (``None`` unless tracing was enabled).
    scheduling_points:
        How many scheduling points the engine executed (``None`` when the
        result was built outside the engine, e.g. in tests).
    preemptions:
        Total preemptions over the run.  Defaults to the sum of the
        per-record preemption counts, which is what the engine reports.
    stream_summary:
        Constant-size aggregates from a ``retain_records=False`` run.
        Every aggregate property answers from the summary; the
        per-transaction queries (:meth:`record_of`, :meth:`finish_order`,
        :meth:`tardy_records`, :meth:`tardiness_by_id`) raise
        :class:`~repro.errors.SimulationError` since the data was never
        kept.
    """

    def __init__(
        self,
        policy_name: str,
        records: Sequence[TransactionRecord],
        trace: Trace | None = None,
        scheduling_points: int | None = None,
        preemptions: int | None = None,
        stream_summary: StreamSummary | None = None,
    ) -> None:
        if not records and stream_summary is None:
            raise SimulationError("a simulation result needs >= 1 record")
        if records and stream_summary is not None:
            raise SimulationError(
                "records and stream_summary are mutually exclusive"
            )
        self.policy_name = policy_name
        self.records = tuple(records)
        self.stream_summary = stream_summary
        self.trace = trace
        self.scheduling_points = scheduling_points
        if preemptions is not None:
            self.total_preemptions = preemptions
        elif stream_summary is not None:
            self.total_preemptions = stream_summary.preemptions
        else:
            self.total_preemptions = sum(r.preemptions for r in self.records)
        self._by_id = {r.txn_id: r for r in self.records}

    def _need_records(self, what: str) -> None:
        if self.stream_summary is not None:
            raise SimulationError(
                f"{what} needs per-transaction records, but this result "
                "was produced with retain_records=False (streaming mode); "
                "re-run with retention on, or use streaming telemetry's "
                "top-k/sketches for per-transaction questions"
            )

    # ------------------------------------------------------------------
    # Aggregates (Definitions 4 and 5, plus Section IV-F's worst case).
    #
    # Tardiness aggregates average over the *completed* transactions
    # (records carry zero tardiness otherwise); without fault injection
    # every record is completed and the definitions are the paper's.
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        if self.stream_summary is not None:
            return self.stream_summary.n
        return len(self.records)

    @property
    def _n_completed(self) -> int:
        if self.stream_summary is not None:
            count = self.stream_summary.completed
        else:
            count = sum(1 for r in self.records if r.outcome == "completed")
        return count if count else 1  # guard: all-failed run averages to 0

    @property
    def average_tardiness(self) -> float:
        """Definition 4: :math:`\\frac{1}{N}\\sum t_i` over completed work."""
        return self.total_tardiness / self._n_completed

    @property
    def average_weighted_tardiness(self) -> float:
        """Definition 5: :math:`\\frac{1}{N}\\sum t_i w_i` over completed work."""
        return self.total_weighted_tardiness / self._n_completed

    @property
    def max_tardiness(self) -> float:
        if self.stream_summary is not None:
            return self.stream_summary.max_tardiness
        return max(r.tardiness for r in self.records)

    @property
    def max_weighted_tardiness(self) -> float:
        """Worst-case metric of Figure 16."""
        if self.stream_summary is not None:
            return self.stream_summary.max_weighted_tardiness
        return max(r.weighted_tardiness for r in self.records)

    @property
    def average_response_time(self) -> float:
        if self.stream_summary is not None:
            if not self.stream_summary.completed:
                return 0.0
            return (
                self.stream_summary.total_response_time
                / self.stream_summary.completed
            )
        completed = [r for r in self.records if r.outcome == "completed"]
        if not completed:
            return 0.0
        return sum(r.response_time for r in completed) / len(completed)

    @property
    def total_tardiness(self) -> float:
        if self.stream_summary is not None:
            return self.stream_summary.total_tardiness
        return sum(r.tardiness for r in self.records)

    @property
    def total_weighted_tardiness(self) -> float:
        if self.stream_summary is not None:
            return self.stream_summary.total_weighted_tardiness
        return sum(r.weighted_tardiness for r in self.records)

    @property
    def deadline_miss_ratio(self) -> float:
        """Fraction of completed transactions finishing past their deadline."""
        if self.stream_summary is not None:
            if not self.stream_summary.completed:
                return 0.0
            return self.stream_summary.tardy / self.stream_summary.completed
        completed = [r for r in self.records if r.outcome == "completed"]
        if not completed:
            return 0.0
        missed = sum(1 for r in completed if not r.met_deadline)
        return missed / len(completed)

    @property
    def tardy_count(self) -> int:
        """How many transactions completed after their deadline."""
        if self.stream_summary is not None:
            return self.stream_summary.tardy
        return sum(
            1
            for r in self.records
            if r.outcome == "completed" and not r.met_deadline
        )

    # ------------------------------------------------------------------
    # Outcome taxonomy (fault injection; all-zero in fault-free runs).
    # ------------------------------------------------------------------
    @property
    def completed_count(self) -> int:
        """How many transactions ran to completion."""
        if self.stream_summary is not None:
            return self.stream_summary.completed
        return sum(1 for r in self.records if r.outcome == "completed")

    @property
    def aborted_count(self) -> int:
        """How many transactions exhausted their retry budget."""
        if self.stream_summary is not None:
            return self.stream_summary.aborted
        return sum(1 for r in self.records if r.outcome == "aborted")

    @property
    def shed_count(self) -> int:
        """How many transactions admission control rejected."""
        if self.stream_summary is not None:
            return self.stream_summary.shed
        return sum(1 for r in self.records if r.outcome == "shed")

    @property
    def total_retries(self) -> int:
        """Total re-submissions across the run."""
        if self.stream_summary is not None:
            return self.stream_summary.retries
        return sum(r.retries for r in self.records)

    @property
    def makespan(self) -> float:
        """Completion time of the last transaction."""
        if self.stream_summary is not None:
            return self.stream_summary.makespan
        return max(r.finish for r in self.records)

    def record_of(self, txn_id: int) -> TransactionRecord:
        self._need_records("record_of()")
        try:
            return self._by_id[txn_id]
        except KeyError:
            raise KeyError(f"no record for transaction {txn_id}") from None

    def finish_order(self) -> list[int]:
        """Transaction ids sorted by completion time."""
        self._need_records("finish_order()")
        return [r.txn_id for r in sorted(self.records, key=lambda r: r.finish)]

    def tardy_records(self) -> list[TransactionRecord]:
        """Records of completed transactions that missed their deadline."""
        self._need_records("tardy_records()")
        return [
            r
            for r in self.records
            if r.outcome == "completed" and not r.met_deadline
        ]

    def tardiness_by_id(self) -> dict[int, float]:
        """Measured per-transaction tardiness, keyed by transaction id.

        The ground truth the forensics layer (:mod:`repro.obs.analyze`)
        must reproduce from the event log alone — blame components for a
        tardy transaction sum to exactly these values.
        """
        self._need_records("tardiness_by_id()")
        return {r.txn_id: r.tardiness for r in self.records}

    def summary(self) -> dict[str, float]:
        """A plain-dict summary, convenient for tabulation and JSON."""
        out = {
            "n": float(self.n),
            "average_tardiness": self.average_tardiness,
            "average_weighted_tardiness": self.average_weighted_tardiness,
            "max_tardiness": self.max_tardiness,
            "max_weighted_tardiness": self.max_weighted_tardiness,
            "deadline_miss_ratio": self.deadline_miss_ratio,
            "average_response_time": self.average_response_time,
            "makespan": self.makespan,
            "total_preemptions": float(self.total_preemptions),
            "completed": float(self.completed_count),
            "aborted": float(self.aborted_count),
            "shed": float(self.shed_count),
            "retries": float(self.total_retries),
        }
        if self.scheduling_points is not None:
            out["scheduling_points"] = float(self.scheduling_points)
        return out

    @staticmethod
    def mean_over_runs(
        results: Iterable["SimulationResult"], metric: str
    ) -> float:
        """Average one named metric over several runs (the paper's 5 seeds)."""
        values = [getattr(res, metric) for res in results]
        if not values:
            raise SimulationError("mean_over_runs needs >= 1 result")
        return sum(values) / len(values)

    def __repr__(self) -> str:
        return (
            f"SimulationResult(policy={self.policy_name!r}, n={self.n}, "
            f"avg_tardiness={self.average_tardiness:.3f}, "
            f"avg_weighted={self.average_weighted_tardiness:.3f})"
        )
