"""Execution traces: who ran when.

Traces are optional (they cost memory on long runs) and mainly serve the
test suite — the paper's worked Examples 1–4 are verified by asserting the
exact sequence of execution slices — and debugging of new policies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["ExecutionSlice", "Trace"]


@dataclass(frozen=True, slots=True)
class ExecutionSlice:
    """A maximal interval during which one transaction held the server."""

    txn_id: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class Trace:
    """An append-only log of execution slices.

    Adjacent slices of the same transaction are coalesced, so a
    transaction that survives a scheduling point without being preempted
    contributes a single slice.
    """

    __slots__ = ("_slices",)

    def __init__(self) -> None:
        self._slices: list[ExecutionSlice] = []

    def record(self, txn_id: int, start: float, end: float) -> None:
        """Append a slice; zero-length slices are ignored."""
        if end <= start:
            return
        if self._slices:
            last = self._slices[-1]
            if last.txn_id == txn_id and last.end == start:
                self._slices[-1] = ExecutionSlice(txn_id, last.start, end)
                return
        self._slices.append(ExecutionSlice(txn_id, start, end))

    def slices(self) -> list[ExecutionSlice]:
        """All recorded slices in chronological order."""
        return list(self._slices)

    def order_of_first_execution(self) -> list[int]:
        """Transaction ids in the order they first touched the server."""
        seen: set[int] = set()
        order: list[int] = []
        for sl in self._slices:
            if sl.txn_id not in seen:
                seen.add(sl.txn_id)
                order.append(sl.txn_id)
        return order

    def busy_time(self) -> float:
        """Total server busy time across all slices."""
        return sum(sl.duration for sl in self._slices)

    def slices_of(self, txn_id: int) -> list[ExecutionSlice]:
        """Chronological slices of one transaction."""
        return [sl for sl in self._slices if sl.txn_id == txn_id]

    def __len__(self) -> int:
        return len(self._slices)

    def __iter__(self) -> Iterator[ExecutionSlice]:
        return iter(self._slices)
