"""Exact minimum weighted tardiness for batch instances.

For a batch — every transaction released at the same instant — the
single-machine total weighted tardiness problem ``1 || sum w_j T_j`` has
an optimal *non-preemptive* solution (preemption cannot help when all
release dates coincide), which a subset dynamic program finds exactly:

    dp[S] = min over j in S of dp[S \\ {j}] + w_j * max(0, C(S) - d_j)

where ``C(S)`` is the total processing time of subset ``S`` — valid
because whichever transaction is scheduled *last* in ``S`` completes
exactly at ``C(S)`` regardless of the order of the rest.  The DP runs in
``O(2^n * n)``; the hard cap of 22 transactions keeps it to a few
million states.

This is the yardstick for the optimality-gap benchmark: on random
batches, how much worse than optimal are EDF, SRPT and ASETS?
"""

from __future__ import annotations

from typing import Sequence

from repro.core.transaction import Transaction
from repro.errors import SimulationError
from repro.policies.base import Scheduler
from repro.sim.engine import Simulator

__all__ = [
    "optimal_total_weighted_tardiness",
    "optimal_order",
    "policy_gap",
]

#: 2^22 * 22 DP transitions is the practical ceiling for "interactive".
_MAX_N = 22


def _validate_batch(txns: Sequence[Transaction]) -> None:
    if not txns:
        raise SimulationError("need at least one transaction")
    if len(txns) > _MAX_N:
        raise SimulationError(
            f"exact DP supports at most {_MAX_N} transactions, got {len(txns)}"
        )
    release = txns[0].arrival
    if any(t.arrival != release for t in txns):
        raise SimulationError(
            "exact optimum requires a batch (equal arrival times); "
            "got mixed release dates"
        )


def optimal_total_weighted_tardiness(txns: Sequence[Transaction]) -> float:
    """Exact minimum of :math:`\\sum_j w_j T_j` over all schedules.

    ``txns`` must form a batch (identical arrivals); see module docstring.
    """
    _validate_batch(txns)
    n = len(txns)
    release = txns[0].arrival
    lengths = [t.length for t in txns]
    weights = [t.weight for t in txns]
    deadlines = [t.deadline for t in txns]

    # Precompute subset completion times incrementally.
    size = 1 << n
    total = [0.0] * size
    for mask in range(1, size):
        low_bit = mask & -mask
        j = low_bit.bit_length() - 1
        total[mask] = total[mask ^ low_bit] + lengths[j]

    INF = float("inf")
    dp = [INF] * size
    dp[0] = 0.0
    for mask in range(1, size):
        finish = release + total[mask]
        best = INF
        rest = mask
        while rest:
            low_bit = rest & -rest
            j = low_bit.bit_length() - 1
            rest ^= low_bit
            candidate = dp[mask ^ low_bit] + weights[j] * max(
                0.0, finish - deadlines[j]
            )
            if candidate < best:
                best = candidate
        dp[mask] = best
    return dp[size - 1]


def optimal_order(txns: Sequence[Transaction]) -> list[int]:
    """One optimal execution order (transaction ids, first to last)."""
    _validate_batch(txns)
    n = len(txns)
    release = txns[0].arrival
    lengths = [t.length for t in txns]
    weights = [t.weight for t in txns]
    deadlines = [t.deadline for t in txns]

    size = 1 << n
    total = [0.0] * size
    for mask in range(1, size):
        low_bit = mask & -mask
        j = low_bit.bit_length() - 1
        total[mask] = total[mask ^ low_bit] + lengths[j]

    INF = float("inf")
    dp = [INF] * size
    choice = [-1] * size
    dp[0] = 0.0
    for mask in range(1, size):
        finish = release + total[mask]
        rest = mask
        while rest:
            low_bit = rest & -rest
            j = low_bit.bit_length() - 1
            rest ^= low_bit
            candidate = dp[mask ^ low_bit] + weights[j] * max(
                0.0, finish - deadlines[j]
            )
            if candidate < dp[mask]:
                dp[mask] = candidate
                choice[mask] = j
        # choice[mask] is the index scheduled LAST within this subset.
    order_reversed = []
    mask = size - 1
    while mask:
        j = choice[mask]
        order_reversed.append(txns[j].txn_id)
        mask ^= 1 << j
    return list(reversed(order_reversed))


def policy_gap(txns: Sequence[Transaction], policy: Scheduler) -> float:
    """Ratio of a policy's total weighted tardiness to the exact optimum.

    Returns 1.0 when both are zero (the policy is trivially optimal) and
    ``inf`` when the policy is tardy on an instance the optimum clears.
    """
    optimum = optimal_total_weighted_tardiness(txns)
    for txn in txns:
        txn.reset()
    achieved = Simulator(list(txns), policy).run().total_weighted_tardiness
    if optimum == 0.0:
        return 1.0 if achieved <= 1e-9 else float("inf")
    return achieved / optimum
