"""Exact analysis tools: optimal schedules for small instances.

The paper's heuristics are evaluated against each other; this subpackage
adds an absolute yardstick for *batch* instances (all transactions
released together): a dynamic program over subsets that computes the
minimum achievable total (weighted) tardiness on one server, exact up to
~20 transactions.  The optimality-gap benchmark uses it to measure how
far EDF, SRPT and ASETS sit from the true optimum.
"""

from repro.analysis.optimal import (
    optimal_total_weighted_tardiness,
    optimal_order,
    policy_gap,
)

__all__ = [
    "optimal_total_weighted_tardiness",
    "optimal_order",
    "policy_gap",
]
