"""Distributional views of tardiness: percentiles and histograms.

The paper reports means and maxima; real deployments care about the tail
in between (p95/p99 latency SLOs).  These helpers extend the metric
vocabulary without touching the core definitions, and power the
tail-analysis benchmark.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.errors import SimulationError
from repro.metrics.tardiness import CompletedLike, tardiness

__all__ = [
    "percentile",
    "tardiness_percentile",
    "weighted_tardiness_percentile",
    "tardiness_histogram",
    "gini",
]


def percentile(values: Iterable[float], q: float) -> float:
    """The ``q``-th percentile (0-100) with linear interpolation.

    Matches numpy's default ("linear") method, implemented here to keep
    the core dependency-free.
    """
    data = sorted(values)
    if not data:
        raise SimulationError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise SimulationError(f"percentile q must be in [0, 100], got {q}")
    if len(data) == 1:
        return data[0]
    rank = (q / 100.0) * (len(data) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return data[low]
    frac = rank - low
    return data[low] * (1 - frac) + data[high] * frac


def tardiness_percentile(records: Iterable[CompletedLike], q: float) -> float:
    """Percentile of the per-transaction tardiness distribution."""
    return percentile((tardiness(r) for r in records), q)


def weighted_tardiness_percentile(
    records: Iterable[CompletedLike], q: float
) -> float:
    """Percentile of the per-transaction *weighted* tardiness distribution."""
    return percentile((tardiness(r) * r.weight for r in records), q)


def tardiness_histogram(
    records: Iterable[CompletedLike],
    bin_edges: Sequence[float],
) -> list[int]:
    """Counts of tardiness values per bin.

    ``bin_edges`` must be strictly increasing; the result has
    ``len(bin_edges) + 1`` entries — the first counts values below the
    first edge, the last values at or above the last edge.
    """
    edges = list(bin_edges)
    if not edges:
        raise SimulationError("histogram needs at least one bin edge")
    if any(b <= a for a, b in zip(edges, edges[1:])):
        raise SimulationError(f"bin edges must be increasing: {edges}")
    counts = [0] * (len(edges) + 1)
    for record in records:
        value = tardiness(record)
        index = 0
        while index < len(edges) and value >= edges[index]:
            index += 1
        counts[index] += 1
    return counts


def gini(values: Iterable[float]) -> float:
    """Gini coefficient of a non-negative distribution.

    0 = perfectly even tardiness, 1 = all tardiness concentrated on one
    transaction.  A compact fairness/starvation indicator: SRPT-style
    policies trade a lower mean for a higher Gini, which is exactly the
    imbalance the balance-aware variant attacks.
    """
    data = sorted(values)
    if not data:
        raise SimulationError("gini of empty sequence")
    if any(v < 0 for v in data):
        raise SimulationError("gini requires non-negative values")
    total = sum(data)
    if total == 0:
        return 0.0
    n = len(data)
    cumulative = 0.0
    for i, v in enumerate(data, start=1):
        cumulative += i * v
    return (2 * cumulative) / (n * total) - (n + 1) / n
