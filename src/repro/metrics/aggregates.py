"""Aggregation across runs and series utilities.

The paper reports "the averages of five runs for each experiment setting"
and plots Figures 10-13 as tardiness *normalized* to a baseline policy.
This module provides those operations plus a small
:class:`MetricSeries` container used throughout the experiment harness:
an x-axis (utilization, activation rate, ...) with one named y-series per
policy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import ExperimentError

__all__ = [
    "mean",
    "stddev",
    "confidence_interval",
    "safe_ratio",
    "normalized",
    "MetricSeries",
]


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    seq = list(values)
    if not seq:
        raise ExperimentError("mean of empty sequence")
    return sum(seq) / len(seq)


def stddev(values: Iterable[float]) -> float:
    """Sample standard deviation (n-1 denominator); 0.0 for n < 2."""
    seq = list(values)
    if not seq:
        raise ExperimentError("stddev of empty sequence")
    if len(seq) < 2:
        return 0.0
    mu = mean(seq)
    return math.sqrt(sum((v - mu) ** 2 for v in seq) / (len(seq) - 1))


def confidence_interval(
    values: Iterable[float], z: float = 1.96
) -> tuple[float, float]:
    """Normal-approximation confidence interval around the mean.

    Five runs is too few for a serious interval; this mirrors what papers
    of the era typically plotted as error bars.
    """
    seq = list(values)
    mu = mean(seq)
    half = z * stddev(seq) / math.sqrt(len(seq))
    return (mu - half, mu + half)


def safe_ratio(numerator: float, denominator: float) -> float:
    """``numerator / denominator`` with the 0/0 convention of Figure 10.

    At very low utilization a policy's average tardiness can be exactly
    zero.  When both sides are zero the policies performed identically, so
    the normalized value is 1; a zero denominator against a positive
    numerator is reported as infinity.
    """
    if denominator == 0.0:
        return 1.0 if numerator == 0.0 else math.inf
    return numerator / denominator


def normalized(values: Sequence[float], baseline: Sequence[float]) -> list[float]:
    """Element-wise :func:`safe_ratio` of two equal-length series."""
    if len(values) != len(baseline):
        raise ExperimentError(
            f"cannot normalize series of lengths {len(values)} vs {len(baseline)}"
        )
    return [safe_ratio(v, b) for v, b in zip(values, baseline)]


@dataclass(slots=True)
class MetricSeries:
    """One experiment's output: an x-axis plus named y-series.

    Attributes
    ----------
    x_label:
        Name of the swept parameter (e.g. ``"utilization"``).
    x:
        The swept values.
    series:
        Policy/series name -> y values aligned with ``x``.
    metric:
        Name of the measured metric (e.g. ``"average_tardiness"``).
    """

    x_label: str
    x: list[float]
    metric: str
    series: dict[str, list[float]] = field(default_factory=dict)
    #: Optional underlying (un-normalized) series a derived series was
    #: computed from; set by e.g. the Figure 10-13 normalisation.
    raw: "MetricSeries | None" = None

    def add(self, name: str, values: Sequence[float]) -> None:
        if len(values) != len(self.x):
            raise ExperimentError(
                f"series {name!r} has {len(values)} points for "
                f"{len(self.x)} x values"
            )
        self.series[name] = list(values)

    def get(self, name: str) -> list[float]:
        try:
            return self.series[name]
        except KeyError:
            raise ExperimentError(
                f"no series {name!r}; have {sorted(self.series)}"
            ) from None

    def normalized_to(self, baseline: str) -> "MetricSeries":
        """A new series where every y is divided by ``baseline``'s y.

        This is how Figures 10-13 are derived from the raw sweeps: e.g.
        ``ASETS*/EDF`` plots ASETS*'s average tardiness normalized to
        EDF's at every utilization.
        """
        base = self.get(baseline)
        out = MetricSeries(
            x_label=self.x_label,
            x=list(self.x),
            metric=f"{self.metric} (normalized to {baseline})",
        )
        for name, values in self.series.items():
            if name == baseline:
                continue
            out.add(f"{name}/{baseline}", normalized(values, base))
        return out

    def crossover(self, a: str, b: str) -> float | None:
        """Smallest x where series ``a`` stops beating series ``b``.

        Used to locate the EDF/SRPT crossover point the paper discusses;
        returns ``None`` if ``a`` stays at or below ``b`` everywhere.
        """
        ya, yb = self.get(a), self.get(b)
        for x, va, vb in zip(self.x, ya, yb):
            if va > vb:
                return x
        return None

    def as_rows(self) -> list[list[float]]:
        """Rows of ``[x, series1, series2, ...]`` in insertion order."""
        names = list(self.series)
        return [
            [x] + [self.series[n][i] for n in names]
            for i, x in enumerate(self.x)
        ]

    def column_names(self) -> list[str]:
        return [self.x_label] + list(self.series)
