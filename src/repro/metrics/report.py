"""Fixed-width text rendering of experiment output.

The benchmark harness prints the same rows/series the paper plots; these
helpers keep the formatting in one place so every figure's output looks
alike.
"""

from __future__ import annotations

from typing import Sequence

from repro.metrics.aggregates import MetricSeries

__all__ = ["format_table", "format_series"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    precision: int = 3,
) -> str:
    """Render a list of rows as an aligned monospace table."""
    rendered = [
        [
            f"{cell:.{precision}f}" if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        for row in rows
    ]
    widths = [
        max(len(h), *(len(r[i]) for r in rendered)) if rendered else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(series: MetricSeries, title: str = "", precision: int = 3) -> str:
    """Render a :class:`MetricSeries` with an optional title line."""
    body = format_table(series.column_names(), series.as_rows(), precision)
    if title:
        return f"{title}\n{'=' * len(title)}\n{body}"
    return body
