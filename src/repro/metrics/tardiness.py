"""Tardiness metrics over completed transactions (Definitions 3-5).

These free functions operate on any iterable of objects exposing
``finish``, ``deadline`` and ``weight`` attributes —
:class:`~repro.sim.results.TransactionRecord` in practice — so they can be
applied to filtered subsets (e.g. only gold-tier transactions in the
examples) as well as to whole runs.
"""

from __future__ import annotations

from typing import Iterable, Protocol, Sequence

from repro.errors import SimulationError

__all__ = [
    "tardiness",
    "average_tardiness",
    "average_weighted_tardiness",
    "max_tardiness",
    "max_weighted_tardiness",
    "deadline_miss_ratio",
    "total_tardiness",
]


class CompletedLike(Protocol):
    """Anything with a finish time, a deadline and a weight."""

    finish: float
    deadline: float
    weight: float


def tardiness(record: CompletedLike) -> float:
    """Definition 3: :math:`t_i = \\max(0, f_i - d_i)`."""
    return max(0.0, record.finish - record.deadline)


def _materialize(records: Iterable[CompletedLike]) -> Sequence[CompletedLike]:
    seq = list(records)
    if not seq:
        raise SimulationError("metric over an empty record set")
    return seq


def average_tardiness(records: Iterable[CompletedLike]) -> float:
    """Definition 4: :math:`\\frac{1}{N} \\sum_i t_i`."""
    seq = _materialize(records)
    return sum(tardiness(r) for r in seq) / len(seq)


def average_weighted_tardiness(records: Iterable[CompletedLike]) -> float:
    """Definition 5: :math:`\\frac{1}{N} \\sum_i t_i w_i`."""
    seq = _materialize(records)
    return sum(tardiness(r) * r.weight for r in seq) / len(seq)


def max_tardiness(records: Iterable[CompletedLike]) -> float:
    """Worst-case unweighted tardiness."""
    return max(tardiness(r) for r in _materialize(records))


def max_weighted_tardiness(records: Iterable[CompletedLike]) -> float:
    """Worst-case weighted tardiness (the metric of Figure 16)."""
    return max(tardiness(r) * r.weight for r in _materialize(records))


def deadline_miss_ratio(records: Iterable[CompletedLike]) -> float:
    """Fraction of transactions with :math:`f_i > d_i`."""
    seq = _materialize(records)
    return sum(1 for r in seq if r.finish > r.deadline) / len(seq)


def total_tardiness(records: Iterable[CompletedLike]) -> float:
    """Sum of tardiness (the objective the greedy rule reasons about)."""
    return sum(tardiness(r) for r in _materialize(records))
