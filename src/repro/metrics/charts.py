"""ASCII line charts for MetricSeries.

The offline environments this reproduction targets rarely have plotting
stacks, so the CLI can render any figure's series as a terminal chart
(``python -m repro.experiments fig10 --chart``).  Pure text: one glyph
per series, a y-axis with min/max labels, log-scale option for the
tardiness-vs-utilization figures whose dynamic range spans three orders
of magnitude.
"""

from __future__ import annotations

import math

from repro.errors import ExperimentError
from repro.metrics.aggregates import MetricSeries

__all__ = ["render_chart"]

#: Glyphs assigned to series in insertion order.
_GLYPHS = "*o+x#@%&"


def _transform(value: float, log_scale: bool) -> float:
    if not log_scale:
        return value
    # Symlog-ish: tolerate zeros, which tardiness series legitimately hit.
    return math.log10(value + 1.0)


def render_chart(
    series: MetricSeries,
    width: int = 64,
    height: int = 16,
    log_scale: bool = False,
) -> str:
    """Render every series of a :class:`MetricSeries` into one chart.

    Parameters
    ----------
    series:
        The series to plot; the x axis is ``series.x``.
    width / height:
        Plot area size in characters (axes excluded).
    log_scale:
        Plot ``log10(y + 1)`` instead of ``y``.
    """
    if width < 8 or height < 4:
        raise ExperimentError("chart needs width >= 8 and height >= 4")
    if not series.series:
        raise ExperimentError("nothing to plot: series is empty")

    names = list(series.series)
    all_values = [
        _transform(v, log_scale)
        for values in series.series.values()
        for v in values
        if math.isfinite(v)
    ]
    if not all_values:
        raise ExperimentError("no finite values to plot")
    y_min = min(all_values)
    y_max = max(all_values)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(series.x), max(series.x)
    x_span = (x_max - x_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for glyph, name in zip(_GLYPHS, names):
        for x, y in zip(series.x, series.series[name]):
            if not math.isfinite(y):
                continue
            ty = _transform(y, log_scale)
            col = round((x - x_min) / x_span * (width - 1))
            row = round((ty - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][col] = glyph

    def y_label(level: float) -> float:
        raw = y_min + level * (y_max - y_min)
        if log_scale:
            return 10**raw - 1.0
        return raw

    label_width = max(
        len(f"{y_label(level):.2f}") for level in (0.0, 0.5, 1.0)
    )
    lines = []
    for i, row in enumerate(grid):
        if i == 0:
            label = f"{y_label(1.0):.2f}"
        elif i == height // 2:
            label = f"{y_label(0.5):.2f}"
        elif i == height - 1:
            label = f"{y_label(0.0):.2f}"
        else:
            label = ""
        lines.append(f"{label:>{label_width}} |" + "".join(row))
    axis = " " * label_width + " +" + "-" * width
    x_labels = (
        " " * label_width
        + "  "
        + f"{x_min:g}"
        + " " * max(1, width - len(f"{x_min:g}") - len(f"{x_max:g}"))
        + f"{x_max:g}"
    )
    legend = "   ".join(
        f"{glyph} {name}" for glyph, name in zip(_GLYPHS, names)
    )
    scale_note = " (log scale)" if log_scale else ""
    header = f"{series.metric} vs {series.x_label}{scale_note}"
    return "\n".join([header, *lines, axis, x_labels, legend])
