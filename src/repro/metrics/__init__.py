"""Performance metrics and multi-run aggregation.

Definitions 3-5 of the paper (tardiness, average tardiness, average
weighted tardiness), the worst-case metric of Section IV-F (maximum
weighted tardiness), normalisation helpers for Figures 10-13, and the
seeded multi-run averaging ("the averages of five runs for each
experiment setting").
"""

from repro.metrics.tardiness import (
    tardiness,
    average_tardiness,
    average_weighted_tardiness,
    max_weighted_tardiness,
    deadline_miss_ratio,
)
from repro.metrics.aggregates import (
    MetricSeries,
    mean,
    normalized,
    safe_ratio,
    confidence_interval,
)
from repro.metrics.report import format_table, format_series
from repro.metrics.distributions import (
    percentile,
    tardiness_percentile,
    weighted_tardiness_percentile,
    tardiness_histogram,
    gini,
)
from repro.metrics.charts import render_chart

__all__ = [
    "tardiness",
    "average_tardiness",
    "average_weighted_tardiness",
    "max_weighted_tardiness",
    "deadline_miss_ratio",
    "MetricSeries",
    "mean",
    "normalized",
    "safe_ratio",
    "confidence_interval",
    "format_table",
    "format_series",
    "percentile",
    "tardiness_percentile",
    "weighted_tardiness_percentile",
    "tardiness_histogram",
    "gini",
    "render_chart",
]
