"""Per-function control-flow graphs for the dataflow rules.

:func:`build_cfg` lowers one ``ast.FunctionDef`` body into basic blocks
of *simple* statements linked by successor edges.  Compound statements
never appear inside a block's statement list; they become the block's
``terminator`` and their sub-suites are lowered into separate blocks:

* ``if``/``match`` fan out to one block per branch and re-join;
* ``while``/``for`` get a header block with a back edge from the body
  (so fixpoint analyses see loop-carried state) and an exit edge;
* ``try`` is approximated conservatively: every block created inside
  the ``try`` suite gets an edge to every handler entry, so a handler
  observes the state at the end of *any* block of the protected region
  (block granularity — taint dead before a block's end is not seen);
* ``return``/``raise`` edge to the synthetic exit block;
* ``break``/``continue`` edge to the innermost loop's exit/header.

``with`` bodies run in line; the item bindings are represented by the
``ast.withitem`` nodes themselves appearing in the statement list (the
dataflow transfer function binds ``optional_vars`` from the context
expression).  Nested ``def``/``class``/``lambda`` are treated as opaque
simple statements — the analyses are intraprocedural; calls into
same-module helpers are handled by one-level summaries in
:mod:`repro.lint.dataflow` instead.

The graph is deterministic: block ids are allocated in lowering order,
successor lists preserve insertion order, and :meth:`CFG.blocks` is id
ordered — the lint layer holds itself to RL001.
"""

from __future__ import annotations

import ast
from typing import Iterator, Union

__all__ = ["Block", "CFG", "FunctionNode", "build_cfg"]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Statement types lowered as block terminators, never list members.
_COMPOUND = (
    ast.If,
    ast.While,
    ast.For,
    ast.AsyncFor,
    ast.Try,
    ast.Return,
    ast.Raise,
    ast.Break,
    ast.Continue,
    ast.Match,
)


class Block:
    """One basic block: simple statements plus an optional terminator."""

    __slots__ = ("block_id", "label", "stmts", "terminator", "succs", "preds")

    def __init__(self, block_id: int, label: str) -> None:
        self.block_id = block_id
        self.label = label
        #: Simple statements (plus ``ast.withitem`` binding markers).
        self.stmts: list[ast.AST] = []
        #: The compound/jump statement ending the block, if any.
        self.terminator: ast.stmt | None = None
        self.succs: list["Block"] = []
        self.preds: list["Block"] = []

    def __repr__(self) -> str:
        succ = ",".join(str(b.block_id) for b in self.succs)
        return (
            f"<Block {self.block_id} {self.label!r} "
            f"stmts={len(self.stmts)} succs=[{succ}]>"
        )


class CFG:
    """The control-flow graph of one function body."""

    def __init__(self, func: FunctionNode) -> None:
        self.func = func
        self._blocks: list[Block] = []
        self.entry = self.new_block("entry")
        self.exit = self.new_block("exit")

    @property
    def blocks(self) -> list[Block]:
        """Every block, in allocation (= lowering) order."""
        return list(self._blocks)

    def new_block(self, label: str) -> Block:
        block = Block(len(self._blocks), label)
        self._blocks.append(block)
        return block

    def add_edge(self, src: Block, dst: Block) -> None:
        if dst not in src.succs:
            src.succs.append(dst)
            dst.preds.append(src)

    def iter_rpo(self) -> Iterator[Block]:
        """Blocks in reverse post-order from the entry (fast fixpoints)."""
        seen: set[int] = set()
        order: list[Block] = []

        def visit(block: Block) -> None:
            seen.add(block.block_id)
            for succ in block.succs:
                if succ.block_id not in seen:
                    visit(succ)
            order.append(block)

        visit(self.entry)
        result = list(reversed(order))
        # Unreachable blocks (e.g. code after a return) come last so
        # analyses still walk their statements.
        for block in self._blocks:
            if block.block_id not in seen:
                result.append(block)
        return iter(result)


class _Builder:
    """Recursive statement lowering with loop/handler stacks."""

    def __init__(self, func: FunctionNode) -> None:
        self.cfg = CFG(func)
        self.current = self.cfg.new_block("body")
        self.cfg.add_edge(self.cfg.entry, self.current)
        #: (continue target, break target) per active loop.
        self._loops: list[tuple[Block, Block]] = []
        #: Handler entry blocks of every active ``try`` suite.
        self._handlers: list[list[Block]] = []

    # ------------------------------------------------------------------
    def build(self) -> CFG:
        self._suite(self.cfg.func.body)
        self.cfg.add_edge(self.current, self.cfg.exit)
        return self.cfg

    def _new_block(self, label: str) -> Block:
        """A fresh block wired to every active exception handler."""
        block = self.cfg.new_block(label)
        for handlers in self._handlers:
            for handler in handlers:
                self.cfg.add_edge(block, handler)
        return block

    def _start(self, label: str, *preds: Block) -> Block:
        block = self._new_block(label)
        for pred in preds:
            self.cfg.add_edge(pred, block)
        return block

    def _suite(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self._statement(stmt)

    # ------------------------------------------------------------------
    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.If):
            self._if(stmt)
        elif isinstance(stmt, (ast.While,)):
            self._while(stmt)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._for(stmt)
        elif isinstance(stmt, ast.Try):
            self._try(stmt)
        elif isinstance(stmt, ast.Match):
            self._match(stmt)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self.current.stmts.extend(stmt.items)
            self._suite(stmt.body)
        elif isinstance(stmt, (ast.Return, ast.Raise)):
            self.current.terminator = stmt
            self.cfg.add_edge(self.current, self.cfg.exit)
            self.current = self._new_block("unreachable")
        elif isinstance(stmt, ast.Break):
            self.current.terminator = stmt
            if self._loops:
                self.cfg.add_edge(self.current, self._loops[-1][1])
            self.current = self._new_block("unreachable")
        elif isinstance(stmt, ast.Continue):
            self.current.terminator = stmt
            if self._loops:
                self.cfg.add_edge(self.current, self._loops[-1][0])
            self.current = self._new_block("unreachable")
        else:
            # Simple statement (incl. nested def/class, kept opaque).
            self.current.stmts.append(stmt)

    def _if(self, stmt: ast.If) -> None:
        self.current.terminator = stmt
        head = self.current
        after = self._new_block("if_join")
        then = self._start("if_then", head)
        self.current = then
        self._suite(stmt.body)
        self.cfg.add_edge(self.current, after)
        if stmt.orelse:
            orelse = self._start("if_else", head)
            self.current = orelse
            self._suite(stmt.orelse)
            self.cfg.add_edge(self.current, after)
        else:
            self.cfg.add_edge(head, after)
        self.current = after

    def _while(self, stmt: ast.While) -> None:
        head = self._start("while_head", self.current)
        head.terminator = stmt
        after = self._new_block("while_exit")
        body = self._start("while_body", head)
        self._loops.append((head, after))
        self.current = body
        self._suite(stmt.body)
        self.cfg.add_edge(self.current, head)
        self._loops.pop()
        if stmt.orelse:
            orelse = self._start("while_else", head)
            self.current = orelse
            self._suite(stmt.orelse)
            self.cfg.add_edge(self.current, after)
        else:
            self.cfg.add_edge(head, after)
        self.current = after

    def _for(self, stmt: ast.For | ast.AsyncFor) -> None:
        head = self._start("for_head", self.current)
        head.terminator = stmt  # transfer binds target from iter here
        after = self._new_block("for_exit")
        body = self._start("for_body", head)
        self._loops.append((head, after))
        self.current = body
        self._suite(stmt.body)
        self.cfg.add_edge(self.current, head)
        self._loops.pop()
        if stmt.orelse:
            orelse = self._start("for_else", head)
            self.current = orelse
            self._suite(stmt.orelse)
            self.cfg.add_edge(self.current, after)
        else:
            self.cfg.add_edge(head, after)
        self.current = after

    def _try(self, stmt: ast.Try) -> None:
        after = self._new_block("try_join")
        handler_entries = [
            self.cfg.new_block(f"except_{i}")
            for i, _ in enumerate(stmt.handlers)
        ]
        # The protected suite: every block inside edges to every handler.
        self._handlers.append(handler_entries)
        body = self._start("try_body", self.current)
        for handler in handler_entries:
            self.cfg.add_edge(body, handler)
        self.current = body
        self._suite(stmt.body)
        self._handlers.pop()
        # ``else`` runs only on normal completion of the body.
        if stmt.orelse:
            self._suite(stmt.orelse)
        body_end = self.current

        ends = [body_end]
        for handler, entry in zip(stmt.handlers, handler_entries):
            self.current = entry
            if handler.name is not None:
                # Bind the exception name: represented by the handler
                # node itself (the transfer function handles it).
                entry.stmts.append(handler)
            self._suite(handler.body)
            ends.append(self.current)

        if stmt.finalbody:
            final = self._new_block("finally")
            for end in ends:
                self.cfg.add_edge(end, final)
            self.current = final
            self._suite(stmt.finalbody)
            self.cfg.add_edge(self.current, after)
        else:
            for end in ends:
                self.cfg.add_edge(end, after)
        self.current = after

    def _match(self, stmt: ast.Match) -> None:
        self.current.terminator = stmt
        head = self.current
        after = self._new_block("match_join")
        for i, case in enumerate(stmt.cases):
            arm = self._start(f"case_{i}", head)
            self.current = arm
            self._suite(case.body)
            self.cfg.add_edge(self.current, after)
        self.cfg.add_edge(head, after)  # no case may match
        self.current = after


def build_cfg(func: FunctionNode) -> CFG:
    """Lower ``func``'s body into a :class:`CFG`."""
    return _Builder(func).build()
