"""CLI entry point: ``python -m repro.lint [options] paths...``.

Exit status is 0 when no findings survive suppression and rule
selection, 1 otherwise — CI runs ``python -m repro.lint src`` as a
blocking job.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.lint.engine import lint
from repro.lint.reporters import render_json, render_sarif, render_text
from repro.lint.rules import ALL_RULES


def _parse_rule_list(raw: Sequence[str]) -> list[str] | None:
    if not raw:
        return None
    rules: list[str] = []
    for chunk in raw:
        rules.extend(part.strip().upper() for part in chunk.split(",") if part.strip())
    return rules or None


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based invariant checker for the ASETS* reproduction "
            "(determinism, hot-path discipline, scheduler contract)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to check (e.g. src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text; sarif for code scanning)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RULES",
        help="comma-separated rule ids to run exclusively (e.g. RL001,RL006)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}  {rule.summary}")
        return 0
    if not args.paths:
        parser.error("no paths given (try: python -m repro.lint src)")

    try:
        result = lint(
            args.paths,
            select=_parse_rule_list(args.select),
            ignore=_parse_rule_list(args.ignore),
        )
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(render_json(result))
    elif args.format == "sarif":
        print(render_sarif(result, rules=ALL_RULES))
    else:
        print(render_text(result))
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
