"""The :class:`Finding` record emitted by every lint rule.

A finding pins one rule violation to one source location.  Findings sort
by ``(path, line, col, rule)`` so reports are stable across runs and
platforms — the lint layer holds itself to the same determinism standard
it enforces (RL001).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Mapping

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Examples
    --------
    >>> f = Finding("src/x.py", 3, 0, "RL001", "call to time.time()")
    >>> f.location
    'src/x.py:3:0'
    >>> Finding.from_dict(f.to_dict()) == f
    True
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    @property
    def location(self) -> str:
        """``path:line:col``, the clickable prefix of the text report."""
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form used by the JSON reporter."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Finding":
        """Inverse of :meth:`to_dict` (JSON round-trip)."""
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),
            col=int(data["col"]),
            rule=str(data["rule"]),
            message=str(data["message"]),
        )
