"""Intraprocedural dataflow over :mod:`repro.lint.cfg` graphs.

Two analyses share the worklist solver:

* :func:`reaching_definitions` — the classic may-analysis mapping each
  block entry to the set of ``(name, line)`` definitions that can reach
  it; used by tests and as the foundation the taint engine is built on.
* :class:`TaintAnalysis` — a label lattice over local names.  A *label*
  is a ``(tag, description, line)`` triple introduced by a rule-supplied
  :class:`TaintSpec` (e.g. ``("true", ".remaining", 104)`` for a
  ground-truth read, ``("wall", "perf_counter()", 12)`` for a wall-clock
  sample).  Labels propagate through assignments, augmented assignments,
  tuple unpacking, arithmetic, comparisons, boolean operators,
  conditional expressions, container literals, subscripts,
  comprehensions, ``for`` targets, ``with`` bindings and function calls;
  the join at CFG merge points is set union, so a value tainted on *any*
  path stays tainted.

Assignments to plain names are tracked precisely; stores through
``self.x`` (or any dotted name chain) are tracked under the dotted key
so a value laundered through an instance attribute inside one function
is still seen.  Everything else (subscript stores, starred targets) is
handled conservatively.

Call summaries
--------------
:func:`summarize_module` gives every same-module function a one-level
summary: the labels its return value *generates* and the parameters
whose taint *propagates* to the return value.  At a call site the
engine resolves ``helper(x)`` and ``self._helper(x)`` against these
summaries, so::

    def _density(self, rep):
        return rep.weight / rep.remaining      # summary: own={true}

    key = self._density(rep)                   # key is tainted "true"

flows through the helper without interprocedural fixpointing.  Calls
that resolve to no summary conservatively union the taint of their
arguments (and receiver); a small sanitizer list (``len``,
``isinstance``, ...) returns clean values.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.lint.cfg import CFG, Block, FunctionNode, build_cfg

__all__ = [
    "CallSummary",
    "EMPTY",
    "Label",
    "TaintAnalysis",
    "TaintSpec",
    "iter_functions",
    "point_exprs",
    "reaching_definitions",
    "summarize_module",
]

#: ``(tag, description, line)``: what kind of taint, introduced where.
Label = tuple[str, str, int]

EMPTY: frozenset[Label] = frozenset()

#: Marker tag for parameter-origin labels used while summarizing.
_PARAM_TAG = "<param>"

#: Calls whose result never carries operand taint (counts, predicates).
DEFAULT_SANITIZERS = frozenset(
    {"len", "isinstance", "issubclass", "type", "id", "bool", "repr", "hash"}
)


class TaintSpec:
    """Rule-supplied source classification; subclass per rule family.

    ``classify_attribute``/``classify_call`` return the labels a node
    *introduces* (sources); ``param_labels`` seeds function parameters.
    The engine handles all propagation.
    """

    sanitizers: frozenset[str] = DEFAULT_SANITIZERS

    def classify_attribute(self, node: ast.Attribute) -> frozenset[Label]:
        return EMPTY

    def classify_call(self, node: ast.Call) -> frozenset[Label]:
        return EMPTY

    def param_labels(self, name: str) -> frozenset[Label]:
        return EMPTY


# ----------------------------------------------------------------------
# Helpers shared by both analyses.
# ----------------------------------------------------------------------
def iter_functions(
    tree: ast.AST,
) -> Iterator[tuple[FunctionNode, str | None]]:
    """Yield every function with its enclosing class name (or None).

    Nested functions are yielded too (with the innermost class context);
    lambdas are not — they are analysed in-place by the expression
    evaluator.
    """

    def walk(node: ast.AST, cls: str | None) -> Iterator[tuple[FunctionNode, str | None]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, cls
                yield from walk(child, cls)
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, child.name)
            else:
                yield from walk(child, cls)

    return walk(tree, None)


def _param_names(func: FunctionNode) -> list[str]:
    args = func.args
    names = [a.arg for a in args.posonlyargs + args.args]
    if args.vararg:
        names.append(args.vararg.arg)
    names.extend(a.arg for a in args.kwonlyargs)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return names


def _target_key(node: ast.expr) -> str | None:
    """A trackable environment key for an assignment target.

    Plain names map to themselves; dotted chains of names
    (``self.x.y``) map to their dotted string.  Anything else
    (subscripts, calls) is untrackable.
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _target_key(node.value)
        if base is not None:
            return f"{base}.{node.attr}"
    return None


# ----------------------------------------------------------------------
# Reaching definitions.
# ----------------------------------------------------------------------
def _stmt_defs(stmt: ast.AST) -> Iterator[tuple[str, int]]:
    """The ``(name, line)`` definitions a simple statement generates."""
    line = getattr(stmt, "lineno", 0)
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            yield from _target_defs(target, line)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        yield from _target_defs(stmt.target, line)
    elif isinstance(stmt, ast.withitem):
        if stmt.optional_vars is not None:
            yield from _target_defs(stmt.optional_vars, line)
    elif isinstance(stmt, ast.ExceptHandler):
        if stmt.name:
            yield (stmt.name, line)
    for node in ast.walk(stmt):
        if isinstance(node, ast.NamedExpr) and isinstance(
            node.target, ast.Name
        ):
            yield (node.target.id, getattr(node, "lineno", line))


def _target_defs(target: ast.expr, line: int) -> Iterator[tuple[str, int]]:
    if isinstance(target, ast.Name):
        yield (target.id, line)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_defs(element, line)
    elif isinstance(target, ast.Starred):
        yield from _target_defs(target.value, line)


def _block_defs(block: Block) -> list[tuple[str, int]]:
    defs: list[tuple[str, int]] = []
    for stmt in block.stmts:
        defs.extend(_stmt_defs(stmt))
    term = block.terminator
    if isinstance(term, (ast.For, ast.AsyncFor)):
        defs.extend(_target_defs(term.target, term.lineno))
    elif term is not None:
        for node in ast.walk(
            term.test if isinstance(term, (ast.If, ast.While)) else term
        ):
            if isinstance(node, ast.NamedExpr) and isinstance(
                node.target, ast.Name
            ):
                defs.append((node.target.id, node.lineno))
    return defs


def reaching_definitions(
    cfg: CFG,
) -> dict[int, frozenset[tuple[str, int]]]:
    """Map each block id to the definitions reaching its *entry*.

    Parameters count as definitions at the function's ``def`` line.
    """
    entry_defs = frozenset(
        (name, cfg.func.lineno) for name in _param_names(cfg.func)
    )
    gen: dict[int, list[tuple[str, int]]] = {}
    kill_names: dict[int, set[str]] = {}
    for block in cfg.blocks:
        defs = _block_defs(block)
        gen[block.block_id] = defs
        kill_names[block.block_id] = {name for name, _ in defs}

    def transfer(
        block: Block, inset: frozenset[tuple[str, int]]
    ) -> frozenset[tuple[str, int]]:
        killed = kill_names[block.block_id]
        out = {d for d in inset if d[0] not in killed}
        # Within a block, later definitions of a name shadow earlier
        # ones; keep only the last per name.
        last: dict[str, tuple[str, int]] = {}
        for d in gen[block.block_id]:
            last[d[0]] = d
        out.update(last.values())
        return frozenset(out)

    entry: dict[int, frozenset[tuple[str, int]]] = {
        block.block_id: frozenset() for block in cfg.blocks
    }
    entry[cfg.entry.block_id] = entry_defs
    changed = True
    while changed:
        changed = False
        for block in cfg.iter_rpo():
            if block is cfg.entry:
                inset = entry_defs
            else:
                inset = frozenset().union(
                    *(
                        transfer(pred, entry[pred.block_id])
                        for pred in block.preds
                    )
                ) if block.preds else frozenset()
            if inset != entry[block.block_id]:
                entry[block.block_id] = inset
                changed = True
    return entry


# ----------------------------------------------------------------------
# Call summaries.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CallSummary:
    """One-level taint summary of a same-module function."""

    name: str
    params: tuple[str, ...]
    #: Labels the return value generates from sources in the body.
    own: frozenset[Label]
    #: Parameter names whose taint reaches the return value.
    propagated: frozenset[str]

    @property
    def has_self(self) -> bool:
        return bool(self.params) and self.params[0] in ("self", "cls")


class _ParamSpec(TaintSpec):
    """Wraps a rule spec, additionally seeding params with markers."""

    def __init__(self, inner: TaintSpec) -> None:
        self.inner = inner
        self.sanitizers = inner.sanitizers

    def classify_attribute(self, node: ast.Attribute) -> frozenset[Label]:
        return self.inner.classify_attribute(node)

    def classify_call(self, node: ast.Call) -> frozenset[Label]:
        return self.inner.classify_call(node)

    def param_labels(self, name: str) -> frozenset[Label]:
        return self.inner.param_labels(name) | {(_PARAM_TAG, name, 0)}


def summarize_module(
    tree: ast.AST, spec: TaintSpec
) -> dict[str, CallSummary]:
    """One-level summaries for every function defined in ``tree``.

    Functions sharing a bare name (methods of different classes) merge
    conservatively: their own-labels union, their propagated sets union,
    and the parameter list of the first definition wins.
    """
    summaries: dict[str, CallSummary] = {}
    param_spec = _ParamSpec(spec)
    for func, _cls in iter_functions(tree):
        analysis = TaintAnalysis(func, param_spec, summaries={})
        analysis.run()
        returned: frozenset[Label] = EMPTY
        for block in analysis.cfg.blocks:
            term = block.terminator
            if isinstance(term, ast.Return) and term.value is not None:
                env = analysis.env_before_terminator(block)
                returned |= analysis.eval(term.value, env)
        own = frozenset(lbl for lbl in returned if lbl[0] != _PARAM_TAG)
        propagated = frozenset(
            lbl[1] for lbl in returned if lbl[0] == _PARAM_TAG
        )
        summary = CallSummary(
            name=func.name,
            params=tuple(_param_names(func)),
            own=own,
            propagated=propagated,
        )
        previous = summaries.get(func.name)
        if previous is not None:
            summary = CallSummary(
                name=func.name,
                params=previous.params,
                own=previous.own | summary.own,
                propagated=previous.propagated | summary.propagated,
            )
        summaries[func.name] = summary
    return summaries


# ----------------------------------------------------------------------
# The taint engine.
# ----------------------------------------------------------------------
Env = dict[str, frozenset[Label]]


def _join(envs: list[Env]) -> Env:
    out: Env = {}
    for env in envs:
        for name, labels in env.items():
            if labels:
                out[name] = out.get(name, EMPTY) | labels
    return out


def _env_eq(a: Env, b: Env) -> bool:
    return {k: v for k, v in a.items() if v} == {
        k: v for k, v in b.items() if v
    }


class TaintAnalysis:
    """Taint fixpoint over one function's CFG.

    Usage::

        analysis = TaintAnalysis(func, spec, summaries)
        analysis.run()
        for stmt, env in analysis.iter_states():
            labels = analysis.eval(some_expr, env)
    """

    def __init__(
        self,
        func: FunctionNode,
        spec: TaintSpec,
        summaries: dict[str, CallSummary] | None = None,
        cfg: CFG | None = None,
    ) -> None:
        self.func = func
        self.spec = spec
        self.summaries = summaries if summaries is not None else {}
        self.cfg = cfg if cfg is not None else build_cfg(func)
        self._entry_envs: dict[int, Env] = {}

    # -- fixpoint ------------------------------------------------------
    def entry_env(self) -> Env:
        env: Env = {}
        for name in _param_names(self.func):
            labels = self.spec.param_labels(name)
            if labels:
                env[name] = labels
        return env

    def run(self) -> "TaintAnalysis":
        envs: dict[int, Env] = {
            block.block_id: {} for block in self.cfg.blocks
        }
        envs[self.cfg.entry.block_id] = self.entry_env()
        changed = True
        while changed:
            changed = False
            for block in self.cfg.iter_rpo():
                if block is self.cfg.entry:
                    inset = self.entry_env()
                elif block.preds:
                    inset = _join(
                        [
                            self._transfer_block(
                                pred, dict(envs[pred.block_id])
                            )
                            for pred in block.preds
                        ]
                    )
                else:
                    inset = {}
                if not _env_eq(inset, envs[block.block_id]):
                    envs[block.block_id] = inset
                    changed = True
        self._entry_envs = envs
        return self

    def env_at(self, block: Block) -> Env:
        """The environment at ``block``'s entry (run() first)."""
        return dict(self._entry_envs.get(block.block_id, {}))

    def env_before_terminator(self, block: Block) -> Env:
        """The environment after the block's simple statements."""
        env = self.env_at(block)
        for stmt in block.stmts:
            self.transfer_stmt(stmt, env)
        return env

    def iter_states(self) -> Iterator[tuple[ast.AST, Env]]:
        """Yield ``(statement, env-before)`` for every program point.

        Simple statements first, then the terminator, per block, in
        block-id order.  The yielded env reflects all *earlier*
        statements of the block; mutate-free inspection only.
        """
        for block in self.cfg.blocks:
            env = self.env_at(block)
            for stmt in block.stmts:
                yield stmt, env
                self.transfer_stmt(stmt, env)
            if block.terminator is not None:
                yield block.terminator, env

    # -- transfer ------------------------------------------------------
    def _transfer_block(self, block: Block, env: Env) -> Env:
        for stmt in block.stmts:
            self.transfer_stmt(stmt, env)
        term = block.terminator
        if isinstance(term, (ast.For, ast.AsyncFor)):
            self._bind(term.target, self.eval(term.iter, env), env)
        elif isinstance(term, (ast.If, ast.While)) and term.test is not None:
            self.eval(term.test, env)  # NamedExpr bindings in the test
        return env

    def transfer_stmt(self, stmt: ast.AST, env: Env) -> None:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                self._assign(target, stmt.value, env)
        elif isinstance(stmt, ast.AugAssign):
            labels = self.eval(stmt.value, env)
            key = _target_key(stmt.target)
            if key is not None:
                env[key] = env.get(key, EMPTY) | labels
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target, stmt.value, env)
        elif isinstance(stmt, ast.withitem):
            labels = self.eval(stmt.context_expr, env)
            if stmt.optional_vars is not None:
                self._bind(stmt.optional_vars, labels, env)
        elif isinstance(stmt, ast.ExceptHandler):
            if stmt.name:
                env[stmt.name] = EMPTY
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value, env)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                key = _target_key(target)
                if key is not None:
                    env.pop(key, None)
        elif isinstance(stmt, (ast.Assert,)):
            self.eval(stmt.test, env)
        # Nested defs/classes/imports are opaque.

    def _assign(
        self, target: ast.expr, value: ast.expr, env: Env
    ) -> None:
        """Bind ``target = value``, element-wise for matching tuples.

        ``a, b = x, y`` binds each name from its own right-hand element
        instead of smearing the union over both — the precision that
        keeps ``best, best_key = wf, key`` from tainting ``best``.
        """
        if (
            isinstance(target, (ast.Tuple, ast.List))
            and isinstance(value, (ast.Tuple, ast.List))
            and len(target.elts) == len(value.elts)
            and not any(isinstance(e, ast.Starred) for e in target.elts)
            and not any(isinstance(e, ast.Starred) for e in value.elts)
        ):
            for sub_target, sub_value in zip(target.elts, value.elts):
                self._assign(sub_target, sub_value, env)
            return
        self._bind(target, self.eval(value, env), env)

    def _bind(
        self, target: ast.expr, labels: frozenset[Label], env: Env
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, labels, env)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, labels, env)
        else:
            key = _target_key(target)
            if key is not None:
                env[key] = labels

    # -- expression evaluation -----------------------------------------
    def eval(self, node: ast.expr, env: Env) -> frozenset[Label]:
        """The labels carried by ``node`` under ``env``.

        Evaluation is total: unknown constructs propagate the union of
        their children, so taint is never silently dropped.
        """
        if isinstance(node, ast.Name):
            return env.get(node.id, EMPTY)
        if isinstance(node, ast.Constant):
            return EMPTY
        if isinstance(node, ast.Attribute):
            labels = self.spec.classify_attribute(node)
            key = _target_key(node)
            if key is not None and key in env:
                labels |= env[key]
            return labels | self.eval(node.value, env)
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.BinOp):
            return self.eval(node.left, env) | self.eval(node.right, env)
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand, env)
        if isinstance(node, ast.BoolOp):
            out = EMPTY
            for value in node.values:
                out |= self.eval(value, env)
            return out
        if isinstance(node, ast.Compare):
            out = self.eval(node.left, env)
            for comparator in node.comparators:
                out |= self.eval(comparator, env)
            return out
        if isinstance(node, ast.IfExp):
            self.eval(node.test, env)
            return self.eval(node.body, env) | self.eval(node.orelse, env)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = EMPTY
            for element in node.elts:
                out |= self.eval(element, env)
            return out
        if isinstance(node, ast.Dict):
            out = EMPTY
            for key, value in zip(node.keys, node.values):
                if key is not None:
                    out |= self.eval(key, env)
                out |= self.eval(value, env)
            return out
        if isinstance(node, ast.Subscript):
            return self.eval(node.value, env)
        if isinstance(node, ast.Slice):
            out = EMPTY
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    out |= self.eval(part, env)
            return out
        if isinstance(node, ast.Starred):
            return self.eval(node.value, env)
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self.eval(node.value, env)
        if isinstance(node, ast.Yield):
            return (
                self.eval(node.value, env)
                if node.value is not None
                else EMPTY
            )
        if isinstance(node, ast.NamedExpr):
            labels = self.eval(node.value, env)
            self._bind(node.target, labels, env)
            return labels
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)
        ):
            inner = dict(env)
            for gen in node.generators:
                self._bind(gen.target, self.eval(gen.iter, inner), inner)
                for cond in gen.ifs:
                    self.eval(cond, inner)
            return self.eval(node.elt, inner)
        if isinstance(node, ast.DictComp):
            inner = dict(env)
            for gen in node.generators:
                self._bind(gen.target, self.eval(gen.iter, inner), inner)
                for cond in gen.ifs:
                    self.eval(cond, inner)
            return self.eval(node.key, inner) | self.eval(node.value, inner)
        if isinstance(node, ast.Lambda):
            return EMPTY  # the function object itself carries no taint
        if isinstance(node, ast.FormattedValue):
            return self.eval(node.value, env)
        if isinstance(node, ast.JoinedStr):
            out = EMPTY
            for value in node.values:
                out |= self.eval(value, env)
            return out
        # Unknown node: conservative union over expression children.
        out = EMPTY
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                out |= self.eval(child, env)
        return out

    def _eval_call(self, node: ast.Call, env: Env) -> frozenset[Label]:
        source = self.spec.classify_call(node)
        name = _call_name(node.func)
        if name is not None and name in self.spec.sanitizers:
            # Evaluate for NamedExpr side effects, drop the taint.
            for arg in node.args:
                self.eval(arg, env)
            return source
        summary = self._resolve_summary(node)
        if summary is not None:
            return source | self._apply_summary(node, summary, env)
        out = source
        for arg in node.args:
            out |= self.eval(arg, env)
        for kw in node.keywords:
            out |= self.eval(kw.value, env)
        if isinstance(node.func, ast.Attribute):
            out |= self.eval(node.func.value, env)
        return out

    def _resolve_summary(self, node: ast.Call) -> CallSummary | None:
        func = node.func
        if isinstance(func, ast.Name):
            return self.summaries.get(func.id)
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ) and func.value.id in ("self", "cls"):
            return self.summaries.get(func.attr)
        return None

    def _apply_summary(
        self, node: ast.Call, summary: CallSummary, env: Env
    ) -> frozenset[Label]:
        out = frozenset(
            lbl for lbl in summary.own if lbl[0] != _PARAM_TAG
        )
        params = list(summary.params)
        if summary.has_self and isinstance(node.func, ast.Attribute):
            params = params[1:]
        for index, arg in enumerate(node.args):
            arg_labels = self.eval(arg, env)
            if index < len(params) and params[index] in summary.propagated:
                out |= arg_labels
        for kw in node.keywords:
            kw_labels = self.eval(kw.value, env)
            if kw.arg is not None and kw.arg in summary.propagated:
                out |= kw_labels
            elif kw.arg is None:  # **kwargs: conservative
                out |= kw_labels
        return out


def _call_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


# ----------------------------------------------------------------------
# Walking expressions of one program point (for rule decision sites).
# ----------------------------------------------------------------------
def point_exprs(stmt: ast.AST) -> Iterator[ast.expr]:
    """The expressions *evaluated at* a CFG program point.

    For compound terminators only the controlling expression belongs to
    the point (the suites live in other blocks); for simple statements
    the whole statement's expressions do.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        yield stmt.test
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        yield stmt.iter
    elif isinstance(stmt, ast.Return):
        if stmt.value is not None:
            yield stmt.value
    elif isinstance(stmt, ast.Raise):
        if stmt.exc is not None:
            yield stmt.exc
        if stmt.cause is not None:
            yield stmt.cause
    elif isinstance(stmt, ast.Match):
        yield stmt.subject
    elif isinstance(stmt, ast.withitem):
        yield stmt.context_expr
    elif isinstance(stmt, (ast.Try, ast.ExceptHandler)):
        return
    elif isinstance(stmt, ast.stmt):
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                yield child
