"""The lint engine: file walking, AST contexts, and rule dispatch.

The engine parses every ``*.py`` file under the given paths once, wraps
each in a :class:`ModuleContext` (tree + parent links + suppression map +
derived dotted module name), groups them into a :class:`ProjectContext`,
and hands both to the rules: per-module rules see one file at a time,
project rules (e.g. RL004's registration check) see the whole set.

Module names are derived from the path: everything from the last
``repro`` path component on becomes the dotted name, so both
``src/repro/sim/engine.py`` and a test fixture at
``tests/lint/fixtures/rl001/repro/sim/clock.py`` resolve to a
``repro.sim...`` module and fall under the same rule scopes.  Files with
no ``repro`` component lint under their bare stem, which keeps every
package-scoped rule silent — pass ``module=`` to :func:`check_file` to
override.

Unparseable files are reported as rule ``RL000`` findings rather than
crashing the run, so one syntax error cannot hide every other finding.
"""

from __future__ import annotations

import abc
import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.lint.findings import Finding
from repro.lint.suppress import Suppressions

__all__ = [
    "PARSE_ERROR_RULE",
    "LintResult",
    "ModuleContext",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "check_file",
    "collect_modules",
    "lint",
    "module_name_for",
    "run_lint",
]

#: Pseudo-rule id for files the parser rejects.
PARSE_ERROR_RULE = "RL000"


def module_name_for(path: Path) -> str:
    """Dotted module name for ``path``, anchored at the last ``repro`` part."""
    parts = list(path.parts)
    stem_parts = parts[:-1] + [path.stem]
    if "repro" in stem_parts:
        anchor = len(stem_parts) - 1 - stem_parts[::-1].index("repro")
        dotted = stem_parts[anchor:]
    else:
        dotted = [path.stem]
    if dotted[-1] == "__init__":
        dotted = dotted[:-1] or [path.stem]
    return ".".join(dotted)


class ModuleContext:
    """One parsed source file plus the derived views the rules need."""

    def __init__(
        self, path: Path, source: str, module: str | None = None
    ) -> None:
        self.path = path
        self.source = source
        self.module = module if module is not None else module_name_for(path)
        self.is_init = path.name == "__init__.py"
        self.tree = ast.parse(source, filename=str(path))
        self.suppressions = Suppressions.from_source(source)
        self.parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent

    def in_package(self, *prefixes: str) -> bool:
        """True iff the module lives under any of the dotted ``prefixes``."""
        return any(
            self.module == p or self.module.startswith(p + ".")
            for p in prefixes
        )

    def walk(self) -> Iterator[ast.AST]:
        return ast.walk(self.tree)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Yield ``node``'s parents from the inside out."""
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def guard_conjuncts(self, node: ast.AST) -> list[ast.expr]:
        """Every conjunct of every ``if`` test whose *body* contains ``node``.

        Walks outward; at each ``if`` ancestor the node sits in the body
        of (not the ``else`` branch), the test's ``and``-conjuncts are
        collected.  Short-circuit guards inside one expression
        (``x is not None and x.hook()``) contribute the conjuncts to the
        left of the node's operand.
        """
        conjuncts: list[ast.expr] = []
        child: ast.AST = node
        for parent in self.ancestors(node):
            if isinstance(parent, ast.If) and child in parent.body:
                conjuncts.extend(_flatten_and(parent.test))
            elif isinstance(parent, ast.IfExp) and child is parent.body:
                conjuncts.extend(_flatten_and(parent.test))
            elif isinstance(parent, ast.BoolOp) and isinstance(
                parent.op, ast.And
            ):
                for value in parent.values:
                    if value is child:
                        break
                    conjuncts.extend(_flatten_and(value))
            child = parent
        return conjuncts

    def is_guarded_not_none(
        self, node: ast.AST, receiver: ast.expr | None = None
    ) -> bool:
        """True iff ``node`` executes only under an ``X is not None`` test.

        When ``receiver`` is given, the guarded expression ``X`` must be
        structurally identical to it (``instrument`` guarding
        ``instrument.on_dispatch``, ``self._instrument`` guarding
        ``self._instrument.on_arrival``); otherwise any not-None guard
        counts.
        """
        wanted = _dump(receiver) if receiver is not None else None
        for conjunct in self.guard_conjuncts(node):
            guarded = _not_none_operand(conjunct)
            if guarded is None:
                continue
            if wanted is None or _dump(guarded) == wanted:
                return True
        return False


def _flatten_and(test: ast.expr) -> list[ast.expr]:
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        out: list[ast.expr] = []
        for value in test.values:
            out.extend(_flatten_and(value))
        return out
    return [test]


def _not_none_operand(expr: ast.expr) -> ast.expr | None:
    """Return ``X`` when ``expr`` is exactly ``X is not None``."""
    if (
        isinstance(expr, ast.Compare)
        and len(expr.ops) == 1
        and isinstance(expr.ops[0], ast.IsNot)
        and isinstance(expr.comparators[0], ast.Constant)
        and expr.comparators[0].value is None
    ):
        return expr.left
    return None


def _dump(node: ast.AST) -> str:
    return ast.dump(node, annotate_fields=False, include_attributes=False)


@dataclass
class ProjectContext:
    """Every module of one lint run, for cross-module rules."""

    modules: list[ModuleContext] = field(default_factory=list)

    def find(self, module: str) -> ModuleContext | None:
        for ctx in self.modules:
            if ctx.module == module:
                return ctx
        return None


class Rule(abc.ABC):
    """One numbered invariant, checked per module."""

    #: ``RLxxx`` identifier used in reports and suppression comments.
    rule_id: str = "RL000"
    #: One-line summary shown by ``--list-rules`` and in docs.
    summary: str = ""

    @abc.abstractmethod
    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        """Yield every violation of this rule in ``module``."""

    def finding(
        self, module: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=str(module.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.rule_id,
            message=message,
        )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.rule_id}>"


class ProjectRule(Rule):
    """A rule needing the whole project (cross-module invariants)."""

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        return ()

    @abc.abstractmethod
    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        """Yield every violation visible only across modules."""


@dataclass
class LintResult:
    """Outcome of one lint run, consumed by the reporters and the CLI."""

    findings: list[Finding]
    files_checked: int
    suppressed: int

    @property
    def ok(self) -> bool:
        return not self.findings


def _iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")


def collect_modules(
    paths: Sequence[str | Path],
) -> tuple[ProjectContext, list[Finding]]:
    """Parse every file under ``paths``; syntax errors become findings."""
    project = ProjectContext()
    errors: list[Finding] = []
    for path in _iter_python_files(paths):
        source = path.read_text(encoding="utf-8")
        try:
            project.modules.append(ModuleContext(path, source))
        except SyntaxError as exc:
            errors.append(
                Finding(
                    path=str(path),
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule=PARSE_ERROR_RULE,
                    message=f"could not parse file: {exc.msg}",
                )
            )
    return project, errors


def _selected(
    rules: Sequence[Rule],
    select: Iterable[str] | None,
    ignore: Iterable[str] | None,
) -> list[Rule]:
    chosen = list(rules)
    if select is not None:
        wanted = {r.upper() for r in select}
        chosen = [r for r in chosen if r.rule_id in wanted]
    if ignore is not None:
        dropped = {r.upper() for r in ignore}
        chosen = [r for r in chosen if r.rule_id not in dropped]
    return chosen


def lint(
    paths: Sequence[str | Path],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    rules: Sequence[Rule] | None = None,
) -> LintResult:
    """Run ``rules`` (default: all) over ``paths`` and return the result."""
    if rules is None:
        from repro.lint.rules import ALL_RULES

        rules = ALL_RULES
    active = _selected(rules, select, ignore)
    project, findings = collect_modules(paths)
    for rule in active:
        for module in project.modules:
            findings.extend(rule.check_module(module))
        if isinstance(rule, ProjectRule):
            findings.extend(rule.check_project(project))
    kept: list[Finding] = []
    suppressed = 0
    by_path = {str(ctx.path): ctx for ctx in project.modules}
    for finding in findings:
        ctx = by_path.get(finding.path)
        if ctx is not None and ctx.suppressions.is_suppressed(
            finding.rule, finding.line
        ):
            suppressed += 1
            continue
        kept.append(finding)
    return LintResult(
        findings=sorted(set(kept)),
        files_checked=len(project.modules),
        suppressed=suppressed,
    )


def run_lint(
    paths: Sequence[str | Path],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Convenience wrapper over :func:`lint` returning just the findings."""
    return lint(paths, select=select, ignore=ignore, rules=rules).findings


def check_file(
    path: str | Path,
    module: str | None = None,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Lint one file, optionally forcing its dotted ``module`` name.

    The override lets tests exercise package-scoped rules on fixture
    snippets living outside a ``repro`` directory.
    """
    if rules is None:
        from repro.lint.rules import ALL_RULES

        rules = ALL_RULES
    active = _selected(rules, select, ignore)
    path = Path(path)
    try:
        ctx = ModuleContext(path, path.read_text(encoding="utf-8"), module)
    except SyntaxError as exc:
        return [
            Finding(
                path=str(path),
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule=PARSE_ERROR_RULE,
                message=f"could not parse file: {exc.msg}",
            )
        ]
    project = ProjectContext(modules=[ctx])
    findings: list[Finding] = []
    for rule in active:
        findings.extend(rule.check_module(ctx))
        if isinstance(rule, ProjectRule):
            findings.extend(rule.check_project(project))
    return sorted(
        {
            f
            for f in findings
            if not ctx.suppressions.is_suppressed(f.rule, f.line)
        }
    )
