"""The rule library: every numbered invariant, assembled in id order.

Each rule module contributes one or two :class:`~repro.lint.engine.Rule`
subclasses; :data:`ALL_RULES` is the canonical ordered instance list the
engine and CLI default to.  RL001–RL009 are per-statement rules;
RL010/RL011 run the dataflow engine of :mod:`repro.lint.dataflow`, and
RL012 is a project rule over the whole module set.
"""

from __future__ import annotations

from repro.lint.engine import ProjectRule, Rule
from repro.lint.rules.determinism import NoNondeterminism
from repro.lint.rules.events import EventSchemaContracts
from repro.lint.rules.hygiene import SuppressionHasReason
from repro.lint.rules.ordering import NoFloatTimeEquality, NoUnorderedSetIteration
from repro.lint.rules.policies import (
    NoEngineStateMutation,
    NoOracleRemainingRead,
    SchedulerContract,
)
from repro.lint.rules.structure import GuardedObsHooks, PublicModuleAll
from repro.lint.rules.taint import BelievedBasisTaint
from repro.lint.rules.timedim import TimeDimensionMixing

__all__ = [
    "ALL_RULES",
    "BelievedBasisTaint",
    "EventSchemaContracts",
    "GuardedObsHooks",
    "NoEngineStateMutation",
    "NoFloatTimeEquality",
    "NoNondeterminism",
    "NoOracleRemainingRead",
    "NoUnorderedSetIteration",
    "ProjectRule",
    "PublicModuleAll",
    "Rule",
    "SchedulerContract",
    "SuppressionHasReason",
    "TimeDimensionMixing",
    "rules_by_id",
]

#: All rules in id order; the default rule set of every lint run.
ALL_RULES: list[Rule] = [
    NoNondeterminism(),
    NoUnorderedSetIteration(),
    NoFloatTimeEquality(),
    SchedulerContract(),
    NoEngineStateMutation(),
    GuardedObsHooks(),
    PublicModuleAll(),
    NoOracleRemainingRead(),
    SuppressionHasReason(),
    BelievedBasisTaint(),
    TimeDimensionMixing(),
    EventSchemaContracts(),
]


def rules_by_id() -> dict[str, Rule]:
    """Map ``RLxxx`` id to its rule instance (for docs and tests)."""
    return {rule.rule_id: rule for rule in ALL_RULES}
