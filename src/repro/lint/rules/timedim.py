"""RL011 — simulated-time vs wall-clock dimension analysis.

The simulator has two clocks that must never meet in arithmetic: the
*simulated* clock (``engine.now``, deadlines, arrival/slack spans — the
units §IV's tardiness metrics are defined in) and the *wall* clock
(``time.perf_counter()``/``monotonic()`` — host-side measurement used
by heartbeats and the perf gate).  Adding, subtracting or comparing a
value from one dimension against the other is always a bug: the result
is a meaningless number that silently corrupts tardiness, window
boundaries or timeout tests.

The rule runs the taint engine with two label tags, ``sim`` and
``wall``:

* ``sim`` sources — attribute loads of ``.now``/``.deadline``, calls to
  ``slack(...)``, and parameters named ``now``/``at``/``sim_now``/
  ``deadline`` (the instrument-hook and record-builder convention);
* ``wall`` sources — ``perf_counter()``/``monotonic()``/``time.time()``
  calls and parameters whose name starts with ``wall``.

Violations:

* a ``+``/``-`` expression or a comparison with one pure-``sim`` operand
  and one pure-``wall`` operand (``*``/``/`` stay legal — dividing a
  count by a wall-clock span is how rates are made);
* passing a ``wall`` value to a parameter a known hook/record-builder
  signature declares as sim-time (``arrival_record(txn, wall)``).

Scope: ``repro.sim``, ``repro.policies``, ``repro.faults`` and
``repro.obs`` — everything that touches either clock.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.dataflow import (
    EMPTY,
    Env,
    Label,
    TaintAnalysis,
    TaintSpec,
    iter_functions,
    point_exprs,
    summarize_module,
)
from repro.lint.engine import ModuleContext, Rule
from repro.lint.findings import Finding

__all__ = ["TimeDimensionMixing"]

TIME_SCOPES = ("repro.sim", "repro.policies", "repro.faults", "repro.obs")

SIM = "sim"
WALL = "wall"

#: Attribute loads that produce simulated-time values.
SIM_ATTRS = frozenset({"now", "deadline"})

#: Calls returning simulated-time spans.
SIM_CALLS = frozenset({"slack"})

#: Calls returning wall-clock samples.
WALL_CALLS = frozenset({"perf_counter", "monotonic"})

#: Parameter names carrying sim-time by convention (hooks, builders).
SIM_PARAMS = frozenset({"now", "at", "sim_now", "deadline"})

#: Known sim-time parameters of hook/record-builder signatures, for
#: call-site checking: name -> (positional indices at the call site,
#: keyword names).  Methods are listed with ``self`` already stripped
#: (call sites never pass it).
HOOK_SIGNATURES: dict[str, tuple[frozenset[int], frozenset[str]]] = {
    "arrival_record": (frozenset({1}), frozenset({"now"})),
    "dispatch_record": (frozenset({1}), frozenset({"now"})),
    "preempt_record": (frozenset({1}), frozenset({"now"})),
    "overhead_record": (frozenset({2}), frozenset({"now"})),
    "completion_record": (frozenset({1}), frozenset({"now"})),
    "stall_record": (frozenset({2}), frozenset({"now"})),
    "crash_record": (frozenset({0}), frozenset({"now"})),
    "recover_record": (frozenset({0}), frozenset({"now"})),
    "shed_record": (frozenset({1}), frozenset({"now"})),
    "abort_record": (frozenset(), frozenset({"now"})),
    "retry_record": (frozenset(), frozenset({"now"})),
    "sched_record": (frozenset(), frozenset({"now"})),
    "run_end_record": (frozenset(), frozenset({"now"})),
    "advance": (frozenset({0}), frozenset({"now"})),
    "observe_point": (frozenset({0}), frozenset({"now"})),
    "is_past_deadline": (frozenset(), frozenset({"at"})),
}

#: Arithmetic operators where mixing dimensions is an error.  ``*`` and
#: ``/`` are excluded: scaling a sim span or computing a rate against a
#: wall span is dimensionally sound.
_MIXING_OPS = (ast.Add, ast.Sub)


class _TimeSpec(TaintSpec):
    """Classify sim and wall sources for the taint engine."""

    def classify_attribute(self, node: ast.Attribute) -> frozenset[Label]:
        if node.attr in SIM_ATTRS and isinstance(node.ctx, ast.Load):
            return frozenset({(SIM, f"`.{node.attr}`", node.lineno)})
        return EMPTY

    def classify_call(self, node: ast.Call) -> frozenset[Label]:
        name = _call_name(node.func)
        if name in WALL_CALLS:
            return frozenset({(WALL, f"`{name}()`", node.lineno)})
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "time"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "time"
        ):
            return frozenset({(WALL, "`time.time()`", node.lineno)})
        if name in SIM_CALLS:
            return frozenset({(SIM, f"`{name}(...)`", node.lineno)})
        return EMPTY

    def param_labels(self, name: str) -> frozenset[Label]:
        if name in SIM_PARAMS:
            return frozenset({(SIM, f"parameter `{name}`", 0)})
        if name.startswith("wall"):
            return frozenset({(WALL, f"parameter `{name}`", 0)})
        return EMPTY


def _dims(labels: frozenset[Label]) -> set[str]:
    return {tag for tag, _, _ in labels if tag in (SIM, WALL)}


def _describe(labels: frozenset[Label], dim: str) -> str:
    parts = sorted({desc for tag, desc, _ in labels if tag == dim})
    return ", ".join(parts)


class TimeDimensionMixing(Rule):
    """RL011: sim-time and wall-clock values never mix."""

    rule_id = "RL011"
    summary = (
        "simulated-time values (engine.now, deadlines) and wall-clock "
        "samples (perf_counter) are never added, subtracted, compared, "
        "or passed across the sim-time hook boundary"
    )

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        if not module.in_package(*TIME_SCOPES):
            return ()
        return list(self._check(module))

    def _check(self, module: ModuleContext) -> Iterator[Finding]:
        spec = _TimeSpec()
        summaries = summarize_module(module.tree, spec)
        seen: set[tuple[int, int]] = set()
        for func, _cls in iter_functions(module.tree):
            analysis = TaintAnalysis(func, spec, summaries)
            analysis.run()
            for stmt, env in analysis.iter_states():
                for expr in point_exprs(stmt):
                    yield from self._check_expr(
                        module, expr, env, analysis, seen
                    )

    def _check_expr(
        self,
        module: ModuleContext,
        expr: ast.expr,
        env: Env,
        analysis: TaintAnalysis,
        seen: set[tuple[int, int]],
    ) -> Iterator[Finding]:
        for node in ast.walk(expr):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, _MIXING_OPS
            ):
                yield from self._check_pair(
                    module,
                    node,
                    analysis.eval(node.left, dict(env)),
                    analysis.eval(node.right, dict(env)),
                    "arithmetic",
                    seen,
                )
            elif isinstance(node, ast.Compare):
                left_labels = analysis.eval(node.left, dict(env))
                for comparator in node.comparators:
                    yield from self._check_pair(
                        module,
                        node,
                        left_labels,
                        analysis.eval(comparator, dict(env)),
                        "comparison",
                        seen,
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_hook_call(
                    module, node, env, analysis, seen
                )

    def _check_pair(
        self,
        module: ModuleContext,
        node: ast.AST,
        left: frozenset[Label],
        right: frozenset[Label],
        what: str,
        seen: set[tuple[int, int]],
    ) -> Iterator[Finding]:
        ldims, rdims = _dims(left), _dims(right)
        mixed = (
            (ldims == {SIM} and rdims == {WALL})
            or (ldims == {WALL} and rdims == {SIM})
        )
        if not mixed:
            return
        sim_side = left if SIM in ldims else right
        wall_side = right if sim_side is left else left
        yield from self._emit(
            module,
            node,
            seen,
            f"{what} mixes time dimensions: simulated time "
            f"({_describe(sim_side, SIM)}) vs wall clock "
            f"({_describe(wall_side, WALL)})",
        )

    def _check_hook_call(
        self,
        module: ModuleContext,
        node: ast.Call,
        env: Env,
        analysis: TaintAnalysis,
        seen: set[tuple[int, int]],
    ) -> Iterator[Finding]:
        name = _call_name(node.func)
        if name is None:
            return
        signature = HOOK_SIGNATURES.get(name)
        if signature is None:
            return
        positions, keywords = signature
        for index, arg in enumerate(node.args):
            if index not in positions:
                continue
            labels = analysis.eval(arg, dict(env))
            if _dims(labels) == {WALL}:
                yield from self._emit(
                    module,
                    arg,
                    seen,
                    f"wall-clock value ({_describe(labels, WALL)}) passed "
                    f"to sim-time parameter of `{name}(...)`",
                )
        for kw in node.keywords:
            if kw.arg not in keywords:
                continue
            labels = analysis.eval(kw.value, dict(env))
            if _dims(labels) == {WALL}:
                yield from self._emit(
                    module,
                    kw.value,
                    seen,
                    f"wall-clock value ({_describe(labels, WALL)}) passed "
                    f"to sim-time parameter `{kw.arg}` of `{name}(...)`",
                )

    def _emit(
        self,
        module: ModuleContext,
        node: ast.AST,
        seen: set[tuple[int, int]],
        what: str,
    ) -> Iterator[Finding]:
        key = (getattr(node, "lineno", 1), getattr(node, "col_offset", 0))
        if key in seen:
            return
        seen.add(key)
        yield self.finding(
            module,
            node,
            f"{what}; keep the clocks apart — convert explicitly or "
            "route wall measurements through the heartbeat/perf-gate "
            "surfaces only",
        )


def _call_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None
