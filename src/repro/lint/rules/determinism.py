"""RL001 — no nondeterminism inside the simulation core.

A run must be bit-for-bit reproducible given a seed, so the modules that
decide what the simulator does — ``repro.sim``, ``repro.policies`` and
``repro.core`` — may not consult wall clocks or unseeded entropy:

* ``time.time`` / ``time.time_ns`` / ``time.monotonic`` and friends,
* ``datetime.datetime.now`` / ``utcnow`` / ``date.today``,
* module-level ``random.*`` (the process-global, unseeded RNG;
  ``random.Random(seed)`` instances are the sanctioned alternative),
* ``os.urandom``, ``uuid.uuid1`` / ``uuid.uuid4``, and ``secrets.*``.

``time.perf_counter`` is special-cased: it measures, it never steers, and
exactly two modules may touch it.  ``repro.sim.engine`` times
``policy.select`` and its loop phases — but only inside a branch guarded
by an ``<...instrument...> is not None`` or ``<...profiler...> is not
None`` test.  ``repro.obs.profile`` (the phase profiler itself) may read
it only inside a branch guarded by an ``<...enabled...>`` truthiness
test — the profiler's master switch.  Both mirror the zero-cost contract
the overhead-guard test pins at runtime.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.engine import ModuleContext, Rule
from repro.lint.findings import Finding

__all__ = ["NoNondeterminism"]

#: Packages the determinism rules protect.
DETERMINISTIC_PACKAGES = (
    "repro.sim",
    "repro.policies",
    "repro.core",
    "repro.faults",
    "repro.obs.streaming",
    "repro.obs.profile",
    "repro.ckpt",
)

#: The engine may touch ``perf_counter`` (instrument/profiler-guarded).
ENGINE_MODULE = "repro.sim.engine"

#: The profiler may touch ``perf_counter`` (``enabled``-guarded).
PROFILE_MODULE = "repro.obs.profile"

_BANNED_EXACT = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "time.monotonic": "wall-clock read",
    "time.monotonic_ns": "wall-clock read",
    "time.process_time": "wall-clock read",
    "time.thread_time": "wall-clock read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.datetime.today": "wall-clock read",
    "datetime.date.today": "wall-clock read",
    "os.urandom": "OS entropy",
    "os.getrandom": "OS entropy",
    "uuid.uuid1": "host/time-derived id",
    "uuid.uuid4": "OS entropy",
    "random.SystemRandom": "OS entropy",
}

#: Module-level ``random.*`` calls are the process-global unseeded RNG;
#: only constructing a caller-seeded ``random.Random`` is allowed.
_RANDOM_ALLOWED = {"random.Random"}

_PERF_COUNTERS = {"time.perf_counter", "time.perf_counter_ns"}


def _alias_map(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted origin they were imported as."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return aliases


def _dotted(node: ast.expr, aliases: dict[str, str]) -> str | None:
    """Resolve ``node`` to a dotted origin path through the import aliases."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    root = aliases.get(current.id)
    if root is None:
        return None
    parts.append(root)
    return ".".join(reversed(parts))


def _mentions(expr: ast.expr, *needles: str) -> bool:
    """True when any name/attribute in ``expr`` contains a needle."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Name):
            name = node.id.lower()
        elif isinstance(node, ast.Attribute):
            name = node.attr.lower()
        else:
            continue
        for needle in needles:
            if needle in name:
                return True
    return False


class NoNondeterminism(Rule):
    """RL001: the simulation core must stay seed-deterministic."""

    rule_id = "RL001"
    summary = (
        "no wall clocks or unseeded entropy in repro.sim/policies/core; "
        "perf_counter only instrument/profiler-guarded in sim/engine.py "
        "and enabled-guarded in obs/profile.py"
    )

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        if not module.in_package(*DETERMINISTIC_PACKAGES):
            return ()
        return list(self._check(module))

    def _check(self, module: ModuleContext) -> Iterator[Finding]:
        aliases = _alias_map(module.tree)
        in_engine = module.module == ENGINE_MODULE
        in_profile = module.module == PROFILE_MODULE
        for node in module.walk():
            if isinstance(node, (ast.Name, ast.Attribute)):
                origin = _dotted(node, aliases)
                if origin is None:
                    continue
                parent = module.parents.get(node)
                if isinstance(parent, ast.Attribute) and parent.value is node:
                    continue  # judged at the outermost attribute
                if origin in _PERF_COUNTERS:
                    yield from self._check_perf_counter(
                        module, node, in_engine, in_profile
                    )
                    continue
                reason = self._banned_reason(origin)
                if reason is not None:
                    yield self.finding(
                        module,
                        node,
                        f"nondeterministic source `{origin}` ({reason}); "
                        "simulation modules must derive all values from "
                        "the workload, the event clock, or a seeded "
                        "random.Random",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if (
                        alias.name in ("perf_counter", "perf_counter_ns")
                        and not in_engine
                        and not in_profile
                    ):
                        yield self.finding(
                            module,
                            node,
                            "`time.perf_counter` may only be imported by "
                            f"{ENGINE_MODULE} (instrument/profiler-guarded "
                            f"timing) and {PROFILE_MODULE} (enabled-guarded "
                            "accumulation); other simulation modules must "
                            "not measure wall time",
                        )

    @staticmethod
    def _banned_reason(origin: str) -> str | None:
        if origin in _BANNED_EXACT:
            return _BANNED_EXACT[origin]
        if origin.startswith("secrets."):
            return "OS entropy"
        if origin.startswith("random.") and origin not in _RANDOM_ALLOWED:
            return "process-global unseeded RNG"
        return None

    def _check_perf_counter(
        self,
        module: ModuleContext,
        node: ast.expr,
        in_engine: bool,
        in_profile: bool,
    ) -> Iterator[Finding]:
        if in_engine:
            for conjunct in module.guard_conjuncts(node):
                guarded = _guarded_not_none(conjunct)
                if guarded is not None and _mentions(
                    guarded, "instrument", "profil"
                ):
                    return
            yield self.finding(
                module,
                node,
                "`perf_counter` outside an `... instrument/profiler ... is "
                "not None` guard: the unobserved hot path must never read "
                "the wall clock (overhead-guard contract)",
            )
            return
        if in_profile:
            for conjunct in module.guard_conjuncts(node):
                if _mentions(conjunct, "enabled"):
                    return
            yield self.finding(
                module,
                node,
                "`perf_counter` outside an `... enabled ...` guard: a "
                "disabled profiler must never read the wall clock "
                "(zero-cost-when-off contract)",
            )
            return
        yield self.finding(
            module,
            node,
            "`time.perf_counter` is reserved for the guarded timing in "
            f"{ENGINE_MODULE} and {PROFILE_MODULE}; simulation logic must "
            "use the event clock",
        )


def _guarded_not_none(expr: ast.expr) -> ast.expr | None:
    if (
        isinstance(expr, ast.Compare)
        and len(expr.ops) == 1
        and isinstance(expr.ops[0], ast.IsNot)
        and isinstance(expr.comparators[0], ast.Constant)
        and expr.comparators[0].value is None
    ):
        return expr.left
    return None
