"""RL012 — static event-schema contracts.

The JSONL event log is the interface between the simulator and every
analysis tool; its schema-1 contract is now *declared* once, as the
``EVENT_SCHEMAS`` literal in :mod:`repro.obs.jsonl`.  This project rule
parses that literal statically (no imports — the registry is data) and
cross-checks three surfaces against it:

* **emit sites** — every dict literal carrying ``"kind": "<k>"`` inside
  ``repro.obs`` must name a registered kind, contain every required
  field of that kind (conditional ``record["f"] = ...`` additions in the
  same function count), and contain no undeclared field;
* **consumers** — code under ``repro.obs.analyze`` that indexes or
  ``.get``\\ s event-record fields may only read fields some emitter can
  produce; reads are resolved against the kind(s) the enclosing
  ``if kind == "..."`` branch establishes, so a ``completion`` branch
  reading ``down`` is flagged even though ``down`` exists on crash
  records;
* **evolution** — schema 1 is additive-only: the rule carries the
  frozen baseline of required fields per kind, and a registry that
  drops a kind or demotes/removes a required field fails (adding
  optional fields or new kinds is fine).

The whole-registry checks only engage when the registry looks like the
real one (it declares ``run_start``), so toy fixtures can exercise the
mechanics with two-kind registries; the never-emitted check additionally
requires the recorder and streaming modules to be part of the lint run.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.lint.engine import ModuleContext, ProjectContext, ProjectRule
from repro.lint.findings import Finding

__all__ = ["EventSchemaContracts"]

REGISTRY_MODULE = "repro.obs.jsonl"
EMIT_SCOPE = "repro.obs"
CONSUMER_SCOPE = "repro.obs.analyze"

#: Fields any record may carry regardless of kind: the envelope plus the
#: sampler's ``sampled`` stamp.
UNIVERSAL_FIELDS = frozenset({"kind", "t", "schema", "sampled"})

#: The frozen schema-1 baseline: required fields per kind at the moment
#: the registry was introduced.  Within schema 1 these can only grow
#: optional siblings — removing a kind or demoting a required field is a
#: breaking change and needs a schema bump, not a registry edit.
_SCHEMA1_BASELINE: dict[str, frozenset[str]] = {
    "run_start": frozenset({"schema", "kind", "t", "policy", "n", "servers"}),
    "arrival": frozenset({"kind", "t", "txn"}),
    "dispatch": frozenset({"kind", "t", "txn", "overhead"}),
    "preempt": frozenset({"kind", "t", "txn"}),
    "overhead": frozenset({"kind", "t", "txn", "amount"}),
    "completion": frozenset({"kind", "t", "txn", "tardiness"}),
    "sched": frozenset({"kind", "t", "ready", "running", "select_s"}),
    "fault.stall": frozenset({"kind", "t", "txn", "amount"}),
    "fault.abort": frozenset({"kind", "t", "txn", "lost", "attempt"}),
    "retry": frozenset({"kind", "t", "txn", "attempt", "deadline"}),
    "fault.crash": frozenset({"kind", "t", "down"}),
    "fault.recover": frozenset({"kind", "t", "down"}),
    "shed": frozenset({"kind", "t", "txn", "reason"}),
    "run_end": frozenset({"kind", "t", "completed", "tardy", "makespan"}),
    "window.snapshot": frozenset(
        {
            "kind",
            "t",
            "window",
            "start",
            "end",
            "arrivals",
            "completions",
            "tardy",
            "miss_rate",
            "throughput",
            "tardiness",
            "utilization",
            "queue_max",
            "queue_mean",
        }
    ),
    "manifest": frozenset(
        {"schema", "kind", "base", "parts", "records", "max_bytes"}
    ),
}


@dataclass(frozen=True)
class _Schema:
    required: frozenset[str]
    optional: frozenset[str]

    @property
    def all_fields(self) -> frozenset[str]:
        return self.required | self.optional


def _string_set(node: ast.expr) -> frozenset[str] | None:
    """Statically evaluate a literal set of strings, or None."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "frozenset"
    ):
        if not node.args:
            return frozenset()
        if len(node.args) == 1:
            return _string_set(node.args[0])
        return None
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        out: set[str] = set()
        for element in node.elts:
            if not (
                isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            ):
                return None
            out.add(element.value)
        return frozenset(out)
    return None


def _parse_registry(
    module: ModuleContext,
) -> tuple[dict[str, _Schema], ast.AST] | None:
    """Extract the ``EVENT_SCHEMAS`` literal from the registry module."""
    for stmt in module.tree.body:
        target: ast.expr | None = None
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            target, value = stmt.target, stmt.value
        if (
            not isinstance(target, ast.Name)
            or target.id != "EVENT_SCHEMAS"
            or not isinstance(value, ast.Dict)
        ):
            continue
        registry: dict[str, _Schema] = {}
        for key, entry in zip(value.keys, value.values):
            if not (
                isinstance(key, ast.Constant)
                and isinstance(key.value, str)
                and isinstance(entry, ast.Call)
            ):
                continue
            required: frozenset[str] | None = frozenset()
            optional: frozenset[str] | None = frozenset()
            args = list(entry.args)
            if args:
                required = _string_set(args[0])
            if len(args) > 1:
                optional = _string_set(args[1])
            for kw in entry.keywords:
                if kw.arg == "required":
                    required = _string_set(kw.value)
                elif kw.arg == "optional":
                    optional = _string_set(kw.value)
            if required is None or optional is None:
                continue
            registry[key.value] = _Schema(required, optional)
        return registry, stmt
    return None


# ----------------------------------------------------------------------
# Emit-site extraction.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _EmitSite:
    module: ModuleContext
    node: ast.Dict
    kind: str
    #: Constant-string keys of the literal plus same-function
    #: ``var["f"] = ...`` conditional additions.
    fields: frozenset[str]
    #: True when a non-constant key or ``**spread`` makes the literal's
    #: field set open-ended (undeclared-field check is skipped then).
    exact: bool


def _literal_kind(node: ast.Dict) -> str | None:
    for key, value in zip(node.keys, node.values):
        if (
            isinstance(key, ast.Constant)
            and key.value == "kind"
            and isinstance(value, ast.Constant)
            and isinstance(value.value, str)
        ):
            return value.value
    return None


def _conditional_fields(
    module: ModuleContext, node: ast.Dict
) -> frozenset[str]:
    """Fields added as ``var["f"] = ...`` near the literal.

    The builder idiom is ``record = {...}`` followed by guarded
    subscript stores; any constant-string subscript store on the name
    the literal was assigned to, within the enclosing function (or the
    module, for module-level literals), counts as a conditional field.
    """
    parent = module.parents.get(node)
    var: str | None = None
    if isinstance(parent, ast.Assign):
        for target in parent.targets:
            if isinstance(target, ast.Name):
                var = target.id
    elif isinstance(parent, ast.AnnAssign) and isinstance(
        parent.target, ast.Name
    ):
        var = parent.target.id
    if var is None:
        return frozenset()
    scope: ast.AST = module.enclosing_function(node) or module.tree
    out: set[str] = set()
    for stmt in ast.walk(scope):
        if not isinstance(stmt, ast.Assign):
            continue
        for target in stmt.targets:
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id == var
                and isinstance(target.slice, ast.Constant)
                and isinstance(target.slice.value, str)
            ):
                out.add(target.slice.value)
    return frozenset(out)


def _emit_sites(module: ModuleContext) -> Iterator[_EmitSite]:
    for node in module.walk():
        if not isinstance(node, ast.Dict):
            continue
        kind = _literal_kind(node)
        if kind is None:
            continue
        fields: set[str] = set()
        exact = True
        for key in node.keys:
            if key is None:  # **spread
                exact = False
            elif isinstance(key, ast.Constant) and isinstance(
                key.value, str
            ):
                fields.add(key.value)
            else:
                exact = False
        fields |= _conditional_fields(module, node)
        yield _EmitSite(module, node, kind, frozenset(fields), exact)


# ----------------------------------------------------------------------
# Consumer extraction.
# ----------------------------------------------------------------------
def _get_field(node: ast.expr) -> tuple[ast.expr, str] | None:
    """``(receiver, field)`` for ``x["f"]`` / ``x.get("f", ...)``."""
    if (
        isinstance(node, ast.Subscript)
        and isinstance(node.slice, ast.Constant)
        and isinstance(node.slice.value, str)
    ):
        return node.value, node.slice.value
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "get"
        and node.args
        and isinstance(node.args[0], ast.Constant)
        and isinstance(node.args[0].value, str)
    ):
        return node.func.value, node.args[0].value
    return None


def _record_and_kind_vars(
    func: ast.AST,
) -> tuple[frozenset[str], frozenset[str]]:
    """Names that hold event records / their ``kind`` strings.

    A *record var* is any name whose ``["kind"]``/``.get("kind")`` is
    accessed in ``func``; a *kind var* is any name assigned from such an
    access.
    """
    records: set[str] = set()
    for node in ast.walk(func):
        access = _get_field(node)
        if access is None:
            continue
        receiver, field_name = access
        if field_name == "kind" and isinstance(receiver, ast.Name):
            records.add(receiver.id)
    kinds: set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign):
            continue
        access = _get_field(node.value)
        if access is None:
            continue
        receiver, field_name = access
        if (
            field_name == "kind"
            and isinstance(receiver, ast.Name)
            and receiver.id in records
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    kinds.add(target.id)
    return frozenset(records), frozenset(kinds)


def _is_kind_expr(
    node: ast.expr, records: frozenset[str], kinds: frozenset[str]
) -> bool:
    if isinstance(node, ast.Name):
        return node.id in kinds
    access = _get_field(node)
    if access is not None:
        receiver, field_name = access
        return (
            field_name == "kind"
            and isinstance(receiver, ast.Name)
            and receiver.id in records
        )
    return False


def _kind_constants(node: ast.expr) -> frozenset[str] | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return frozenset({node.value})
    return _string_set(node)


def _test_kinds(
    test: ast.expr, records: frozenset[str], kinds: frozenset[str]
) -> frozenset[str] | None:
    """The kind set a branch test constrains records to, or None."""
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        if isinstance(test.ops[0], (ast.Eq, ast.In)) and _is_kind_expr(
            test.left, records, kinds
        ):
            return _kind_constants(test.comparators[0])
        return None
    if isinstance(test, ast.BoolOp):
        out: set[str] = set()
        found = False
        for value in test.values:
            sub = _test_kinds(value, records, kinds)
            if sub is not None:
                found = True
                out |= sub
            elif isinstance(test.op, ast.Or):
                return None  # an un-analysed disjunct widens the set
        return frozenset(out) if found else None
    return None


def _branch_kinds(
    module: ModuleContext,
    node: ast.AST,
    records: frozenset[str],
    kinds: frozenset[str],
) -> frozenset[str] | None:
    """Kinds established by the innermost enclosing kind-test branch."""
    child: ast.AST = node
    for parent in module.ancestors(node):
        if isinstance(parent, ast.If) and child in parent.body:
            constrained = _test_kinds(parent.test, records, kinds)
            if constrained is not None:
                return constrained
        child = parent
    return None


# ----------------------------------------------------------------------
# The rule.
# ----------------------------------------------------------------------
class EventSchemaContracts(ProjectRule):
    """RL012: emit sites and consumers match the declared registry."""

    rule_id = "RL012"
    summary = (
        "every emit site and analyze consumer matches the EVENT_SCHEMAS "
        "registry; schema-1 evolution stays additive-only"
    )

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        registry_module = project.find(REGISTRY_MODULE)
        if registry_module is None:
            return ()
        parsed = _parse_registry(registry_module)
        if parsed is None:
            return [
                Finding(
                    path=str(registry_module.path),
                    line=1,
                    col=0,
                    rule=self.rule_id,
                    message=(
                        "repro.obs.jsonl defines no statically parseable "
                        "EVENT_SCHEMAS literal; RL012 cannot check the "
                        "event-schema contract"
                    ),
                )
            ]
        registry, registry_node = parsed
        findings = list(
            self._check_baseline(registry_module, registry_node, registry)
        )
        emitted: set[str] = set()
        have_emitters = True
        for module in project.modules:
            if module.in_package(EMIT_SCOPE) and not module.in_package(
                CONSUMER_SCOPE
            ):
                for site in _emit_sites(module):
                    emitted.add(site.kind)
                    findings.extend(self._check_emit(site, registry))
            if module.in_package(CONSUMER_SCOPE):
                findings.extend(self._check_consumers(module, registry))
        for name in (f"{EMIT_SCOPE}.recorder", f"{EMIT_SCOPE}.streaming"):
            if project.find(name) is None:
                have_emitters = False
        if have_emitters:
            for kind in sorted(set(registry) - emitted):
                findings.append(
                    Finding(
                        path=str(registry_module.path),
                        line=registry_node.lineno,
                        col=registry_node.col_offset,
                        rule=self.rule_id,
                        message=(
                            f"registered kind '{kind}' has no emit site "
                            "in repro.obs — dead schema entries hide "
                            "drift; remove it or emit it"
                        ),
                    )
                )
        return findings

    # ------------------------------------------------------------------
    def _check_baseline(
        self,
        module: ModuleContext,
        node: ast.AST,
        registry: dict[str, _Schema],
    ) -> Iterator[Finding]:
        if "run_start" not in registry:
            return  # toy registry (fixtures): skip evolution checks
        for kind, baseline_required in sorted(_SCHEMA1_BASELINE.items()):
            schema = registry.get(kind)
            if schema is None:
                yield Finding(
                    path=str(module.path),
                    line=node.lineno,
                    col=node.col_offset,
                    rule=self.rule_id,
                    message=(
                        f"schema-1 kind '{kind}' was removed from "
                        "EVENT_SCHEMAS; schema 1 is additive-only — "
                        "removing a kind needs a schema-version bump"
                    ),
                )
                continue
            missing = baseline_required - schema.required
            if missing:
                yield Finding(
                    path=str(module.path),
                    line=node.lineno,
                    col=node.col_offset,
                    rule=self.rule_id,
                    message=(
                        f"kind '{kind}' no longer requires "
                        f"{sorted(missing)}; schema 1 is additive-only — "
                        "required fields cannot be removed or demoted"
                    ),
                )

    def _check_emit(
        self, site: _EmitSite, registry: dict[str, _Schema]
    ) -> Iterator[Finding]:
        schema = registry.get(site.kind)
        if schema is None:
            yield self.finding(
                site.module,
                site.node,
                f"emit of unregistered event kind '{site.kind}'; declare "
                "it in EVENT_SCHEMAS (repro.obs.jsonl) first",
            )
            return
        missing = schema.required - site.fields - UNIVERSAL_FIELDS
        if missing:
            yield self.finding(
                site.module,
                site.node,
                f"emit of '{site.kind}' lacks required field(s) "
                f"{sorted(missing)} declared in EVENT_SCHEMAS",
            )
        if site.exact:
            undeclared = site.fields - schema.all_fields - UNIVERSAL_FIELDS
            if undeclared:
                yield self.finding(
                    site.module,
                    site.node,
                    f"emit of '{site.kind}' carries undeclared field(s) "
                    f"{sorted(undeclared)}; add them to EVENT_SCHEMAS "
                    "(additive) or drop them",
                )

    def _check_consumers(
        self, module: ModuleContext, registry: dict[str, _Schema]
    ) -> Iterator[Finding]:
        every_field = UNIVERSAL_FIELDS.union(
            *(s.all_fields for s in registry.values())
        ) if registry else UNIVERSAL_FIELDS
        for func in module.walk():
            if not isinstance(
                func, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            records, kind_vars = _record_and_kind_vars(func)
            if not records:
                continue
            for node in ast.walk(func):
                access = _get_field(node)
                if access is None:
                    continue
                receiver, field_name = access
                if not (
                    isinstance(receiver, ast.Name)
                    and receiver.id in records
                ):
                    continue
                if field_name in UNIVERSAL_FIELDS:
                    continue
                branch = _branch_kinds(module, node, records, kind_vars)
                if branch is not None:
                    known = {k for k in branch if k in registry}
                    if not known:
                        continue  # branch on kinds the registry ignores
                    if any(
                        field_name in registry[k].all_fields for k in known
                    ):
                        continue
                    yield self.finding(
                        module,
                        node,
                        f"consumer reads field '{field_name}' in a "
                        f"branch handling kind(s) {sorted(known)}, but "
                        "no emitter of those kinds produces it (per "
                        "EVENT_SCHEMAS)",
                    )
                elif field_name not in every_field:
                    yield self.finding(
                        module,
                        node,
                        f"consumer reads field '{field_name}' which no "
                        "registered event kind produces (per "
                        "EVENT_SCHEMAS)",
                    )
