"""RL002/RL003 — deterministic ordering and tolerant time comparison.

RL002: iteration order over a ``set`` is an implementation detail (it
varies with insertion history and, for strings, with hash randomisation),
so iterating a bare set inside the scheduling core can silently change
which transaction wins a tie.  Sets are fine for membership; the moment
one is *iterated* (``for``, a comprehension, ``list()``/``tuple()``/
``enumerate()``/``iter()``/``reversed()``) it must go through
``sorted(...)`` first.  Dicts are insertion-ordered in the supported
Python versions and stay allowed.

RL003: simulated time is accumulated float arithmetic; two event times
that are logically equal can differ by an ulp.  Comparing time-like
values with ``==``/``!=`` therefore needs either the ``_EPS`` tolerance
pattern from ``repro.sim.engine`` or an explicit suppression stating why
exact identity is intended (e.g. the scheduling-point identity check in
``NonPreemptive.select``).  Value-semantics dunders (``__eq__``,
``__ne__``, ``__hash__``) are exempt: there, exact equality is the
definition.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.engine import ModuleContext, Rule
from repro.lint.findings import Finding
from repro.lint.rules.determinism import DETERMINISTIC_PACKAGES

__all__ = ["NoFloatTimeEquality", "NoUnorderedSetIteration"]

_ITERATING_CALLS = {"list", "tuple", "iter", "enumerate", "reversed"}

_TIME_EXACT = {
    "now",
    "time",
    "arrival",
    "deadline",
    "since",
    "finish_time",
    "start_time",
}
_TIME_SUFFIXES = ("_time", "_now", "_deadline", "_arrival")

_EQUALITY_DUNDERS = {"__eq__", "__ne__", "__hash__"}


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _is_set_annotation(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id in ("set", "frozenset")
    if isinstance(node, ast.Subscript):
        return _is_set_annotation(node.value)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.split("[")[0].strip() in ("set", "frozenset")
    return False


def _target_key(node: ast.expr) -> str | None:
    """Stable key for a Name or ``self.attr`` assignment target."""
    if isinstance(node, ast.Name):
        return node.id
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return f"self.{node.attr}"
    return None


class NoUnorderedSetIteration(Rule):
    """RL002: never iterate a bare set in the scheduling core."""

    rule_id = "RL002"
    summary = (
        "iteration over bare set()/set literals in repro.sim/policies/core "
        "must go through sorted(...)"
    )

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        if not module.in_package(*DETERMINISTIC_PACKAGES):
            return ()
        return list(self._check(module))

    def _check(self, module: ModuleContext) -> Iterator[Finding]:
        set_names = self._set_typed_names(module)
        for node in module.walk():
            for iter_expr in self._iterated_exprs(node):
                if _is_set_expr(iter_expr):
                    yield self._finding(module, iter_expr, "a set expression")
                else:
                    key = _target_key(iter_expr)
                    if key is not None and key in set_names:
                        yield self._finding(module, iter_expr, f"`{key}`")

    def _iterated_exprs(self, node: ast.AST) -> Iterator[ast.expr]:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            for comp in node.generators:
                yield comp.iter
        elif isinstance(node, ast.DictComp):
            for comp in node.generators:
                yield comp.iter
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _ITERATING_CALLS
            and node.args
        ):
            yield node.args[0]

    def _set_typed_names(self, module: ModuleContext) -> set[str]:
        """Names and ``self.attr`` targets ever bound to a set in the file.

        A deliberately coarse, flow-insensitive approximation: a name that
        *ever* holds a set is treated as a set everywhere.  False
        positives carry a ``# repro-lint: disable=RL002`` with a reason.
        """
        names: set[str] = set()
        for node in module.walk():
            if isinstance(node, ast.Assign) and _is_set_expr(node.value):
                for target in node.targets:
                    key = _target_key(target)
                    if key is not None:
                        names.add(key)
            elif isinstance(node, ast.AnnAssign) and _is_set_annotation(
                node.annotation
            ):
                key = _target_key(node.target)
                if key is not None:
                    names.add(key)
        return names

    def _finding(
        self, module: ModuleContext, node: ast.expr, what: str
    ) -> Finding:
        return self.finding(
            module,
            node,
            f"iteration over {what} has no deterministic order; wrap it in "
            "sorted(...) or keep a list/dict alongside the set",
        )


class NoFloatTimeEquality(Rule):
    """RL003: compare simulated time with a tolerance, not ``==``."""

    rule_id = "RL003"
    summary = (
        "no ==/!= on simulated-time values; use the _EPS tolerance pattern "
        "from repro.sim.engine"
    )

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        if not module.in_package(*DETERMINISTIC_PACKAGES):
            return ()
        return list(self._check(module))

    def _check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in module.walk():
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            func = module.enclosing_function(node)
            if func is not None and func.name in _EQUALITY_DUNDERS:
                continue  # value-semantics dunders define exact equality
            operands = [node.left, *node.comparators]
            time_like = next(
                (o for o in operands if self._is_time_like(o)), None
            )
            if time_like is None:
                continue
            yield self.finding(
                module,
                node,
                f"float equality on simulated time `{_describe(time_like)}`; "
                "event times accumulate float error — compare with the "
                "engine's _EPS tolerance (abs(a - b) <= _EPS) or suppress "
                "with a reason if exact identity is intended",
            )

    @staticmethod
    def _is_time_like(node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        else:
            return False
        return name in _TIME_EXACT or name.endswith(_TIME_SUFFIXES)


def _describe(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ast.dump(node)
