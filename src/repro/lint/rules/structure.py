"""RL006/RL007 — structural discipline: guarded hooks, explicit exports.

RL006: the instrumentation layer's contract (see
``tests/obs/test_overhead_guard.py``) is that ``instrument=None`` keeps
the engine hot path at pre-instrumentation cost.  PR 1 enforced that
with one hand-written test; this rule generalises it to *every* hook
call site in ``repro.sim``: any ``<...instrument...>.on_*(...)`` call
must sit inside a branch guarded by an ``is not None`` test of that same
receiver (statement ``if``, conditional expression, or short-circuit
``and``).  A new hook call pasted without its guard fails CI instead of
silently taxing every uninstrumented run.

RL007: every public module under ``repro`` declares ``__all__``, keeping
the wildcard-import surface and the docs' API tables honest.  Modules
whose filename starts with an underscore (``_version.py``,
``__main__.py``) are private and exempt; ``__init__.py`` files are the
package's front door and are required to declare one.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.engine import ModuleContext, Rule
from repro.lint.findings import Finding

__all__ = ["GuardedObsHooks", "PublicModuleAll"]

SIM_PACKAGE = "repro.sim"


def _mentions_instrument(expr: ast.expr) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and "instrument" in node.id.lower():
            return True
        if isinstance(node, ast.Attribute) and "instrument" in node.attr.lower():
            return True
    return False


class GuardedObsHooks(Rule):
    """RL006: every instrument hook call sits behind ``is not None``."""

    rule_id = "RL006"
    summary = (
        "every instrument.on_*() call in repro.sim must be guarded by "
        "`<receiver> is not None`"
    )

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        if not module.in_package(SIM_PACKAGE):
            return ()
        return list(self._check(module))

    def _check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in module.walk():
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if not func.attr.startswith("on_"):
                continue
            if not _mentions_instrument(func.value):
                continue
            if module.is_guarded_not_none(node, receiver=func.value):
                continue
            yield self.finding(
                module,
                node,
                f"unguarded instrument hook `{func.attr}`: wrap the call in "
                "`if <receiver> is not None:` so the uninstrumented hot "
                "path stays zero-cost (overhead-guard contract)",
            )


class PublicModuleAll(Rule):
    """RL007: public ``repro`` modules declare ``__all__``."""

    rule_id = "RL007"
    summary = "every public module under repro declares __all__"

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        if not module.in_package("repro"):
            return ()
        basename = module.path.stem
        if basename.startswith("_") and basename != "__init__":
            return ()
        if self._declares_all(module.tree):
            return ()
        return [
            Finding(
                path=str(module.path),
                line=1,
                col=0,
                rule=self.rule_id,
                message=(
                    f"public module `{module.module}` does not declare "
                    "__all__; list the intended API explicitly (or rename "
                    "the module with a leading underscore if it is private)"
                ),
            )
        ]

    @staticmethod
    def _declares_all(tree: ast.Module) -> bool:
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign):
                if any(
                    isinstance(t, ast.Name) and t.id == "__all__"
                    for t in stmt.targets
                ):
                    return True
            elif isinstance(stmt, ast.AnnAssign):
                if (
                    isinstance(stmt.target, ast.Name)
                    and stmt.target.id == "__all__"
                    and stmt.value is not None
                ):
                    return True
            elif isinstance(stmt, ast.AugAssign):
                if (
                    isinstance(stmt.target, ast.Name)
                    and stmt.target.id == "__all__"
                ):
                    return True
        return False
