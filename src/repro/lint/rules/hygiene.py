"""RL009 — suppression pragmas must carry a reason.

A ``# repro-lint: disable=RLnnn`` pragma grants a permanent, reviewed
exemption from an invariant; the review is only meaningful if the
*grounds* travel with the code.  Every pragma must therefore carry
``-- <reason>`` text.  CI runs the full rule set, so a reasonless
suppression fails the ``analysis`` job the moment it lands — there is
no separate flag to forget.

The finding anchors on the pragma's own line.  Suppressing RL009 itself
requires a reasoned pragma, which is exactly the point.
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.engine import ModuleContext, Rule
from repro.lint.findings import Finding

__all__ = ["SuppressionHasReason"]


class SuppressionHasReason(Rule):
    """RL009: every ``repro-lint: disable`` pragma carries ``-- reason``."""

    rule_id = "RL009"
    summary = (
        "every suppression pragma carries a '-- reason' explaining the "
        "exemption"
    )

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        for pragma in module.suppressions.pragmas:
            if pragma.has_reason:
                continue
            rules = ",".join(sorted(pragma.rules))
            yield Finding(
                path=str(module.path),
                line=pragma.line,
                col=0,
                rule=self.rule_id,
                message=(
                    f"suppression of {rules} has no reason; write "
                    f"`# repro-lint: disable={rules} -- <why this site "
                    "is exempt>`"
                ),
            )
