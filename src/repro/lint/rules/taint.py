"""RL010 — believed-vs-true basis taint tracking.

RL008 bans *direct* loads of ``Transaction.remaining`` /
``believed_remaining`` inside ``repro.policies`` — but the pre-PR-4
ASETS* leak showed the same oracle read slipping through a local
variable, a same-module helper's return value, a ``getattr`` call, or a
comprehension, none of which a per-statement rule can see.  RL010
closes that blind spot with the dataflow engine of
:mod:`repro.lint.dataflow`: ground-truth reads become *taint labels*
that propagate through assignments, arithmetic, container literals,
tuple unpacking, comprehensions and one-level same-module call
summaries, and a finding is raised when a tainted value reaches a
**policy decision site**:

* any comparison (feasibility tests, negative-impact comparisons,
  cached-key comparisons like ``key < best_key``);
* an argument or ``key=`` callable of a ranking call (``sorted``,
  ``list.sort``, ``min``/``max``, ``heapq`` pushes, ``bisect.insort``);
* the return value of a ranking function (``sort_key``, ``key``,
  ``rank``, ``priority``, ``admit``, ``should_shed``).

The rule covers ``repro.policies`` plus the two satellite surfaces that
manipulate believed/true remaining time: ``repro.faults`` (admission
predicates) and ``repro.obs.streaming``.  The sanctioned accessor is
``scheduling_remaining`` (on ``Transaction`` and
``RepresentativeView``); values derived from it are never tainted.
An intentionally clairvoyant baseline suppresses with
``# repro-lint: disable=RL010 -- <why>`` at the decision site.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.dataflow import (
    EMPTY,
    Env,
    Label,
    TaintAnalysis,
    TaintSpec,
    iter_functions,
    point_exprs,
    summarize_module,
)
from repro.lint.engine import ModuleContext, Rule
from repro.lint.findings import Finding

__all__ = ["BelievedBasisTaint"]

#: Packages where policy/admission decisions must use the believed basis.
TAINT_SCOPES = ("repro.policies", "repro.faults", "repro.obs.streaming")

#: Ground-truth / raw-store attributes that seed taint (RL008's set).
ORACLE_ATTRS = frozenset({"remaining", "believed_remaining"})

#: Calls whose arguments (or ``key=``) are ranking expressions.
RANKING_CALLS = frozenset(
    {
        "sorted",
        "sort",
        "min",
        "max",
        "heappush",
        "heappushpop",
        "heapreplace",
        "nlargest",
        "nsmallest",
        "insort",
        "insort_left",
        "insort_right",
    }
)

#: Functions whose return value is a ranking decision.
RANKING_FUNCTIONS = frozenset(
    {"sort_key", "key", "rank", "priority", "admit", "should_shed"}
)


class _BasisSpec(TaintSpec):
    """Sources: oracle attribute loads and ``getattr`` laundering."""

    def classify_attribute(self, node: ast.Attribute) -> frozenset[Label]:
        if node.attr not in ORACLE_ATTRS:
            return EMPTY
        if not isinstance(node.ctx, ast.Load):
            return EMPTY
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            return EMPTY  # the policy's own attribute of the same name
        return frozenset({(node.attr, f"`.{node.attr}`", node.lineno)})

    def classify_call(self, node: ast.Call) -> frozenset[Label]:
        # getattr(x, "remaining") is the same oracle read without an
        # Attribute node — the classic RL008 blind spot.
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "getattr"
            and len(node.args) >= 2
            and isinstance(node.args[1], ast.Constant)
            and node.args[1].value in ORACLE_ATTRS
            and not (
                isinstance(node.args[0], ast.Name)
                and node.args[0].id == "self"
            )
        ):
            attr = node.args[1].value
            return frozenset(
                {(attr, f'getattr(..., "{attr}")', node.lineno)}
            )
        return EMPTY


def _sources(labels: frozenset[Label]) -> str:
    parts = sorted({f"{desc} (line {line})" for _, desc, line in labels})
    return ", ".join(parts)


class BelievedBasisTaint(Rule):
    """RL010: no ground-truth-derived value may reach a decision site."""

    rule_id = "RL010"
    summary = (
        "no value derived from remaining/believed_remaining (taint-"
        "tracked through locals, helpers, containers) reaches a policy "
        "decision site; rank by scheduling_remaining"
    )

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        if not module.in_package(*TAINT_SCOPES):
            return ()
        return list(self._check(module))

    def _check(self, module: ModuleContext) -> Iterator[Finding]:
        spec = _BasisSpec()
        summaries = summarize_module(module.tree, spec)
        seen: set[tuple[int, int]] = set()
        for func, _cls in iter_functions(module.tree):
            analysis = TaintAnalysis(func, spec, summaries)
            analysis.run()
            is_ranker = func.name in RANKING_FUNCTIONS
            for stmt, env in analysis.iter_states():
                if is_ranker and isinstance(stmt, ast.Return):
                    yield from self._check_return(
                        module, func, stmt, env, analysis, seen
                    )
                for expr in point_exprs(stmt):
                    yield from self._check_expr(
                        module, expr, env, analysis, seen
                    )

    # ------------------------------------------------------------------
    def _check_expr(
        self,
        module: ModuleContext,
        expr: ast.expr,
        env: Env,
        analysis: TaintAnalysis,
        seen: set[tuple[int, int]],
    ) -> Iterator[Finding]:
        for node in ast.walk(expr):
            if isinstance(node, ast.Compare):
                # Identity/membership tests (`key is None`) are not
                # magnitude decisions; only ordering/equality ranks.
                if all(
                    isinstance(op, (ast.Is, ast.IsNot, ast.In, ast.NotIn))
                    for op in node.ops
                ):
                    continue
                labels = analysis.eval(node, dict(env))
                if labels:
                    yield from self._emit(
                        module,
                        node,
                        seen,
                        "comparison on ground-truth basis: uses value "
                        f"derived from {_sources(labels)}",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_ranking_call(
                    module, node, env, analysis, seen
                )

    def _check_ranking_call(
        self,
        module: ModuleContext,
        node: ast.Call,
        env: Env,
        analysis: TaintAnalysis,
        seen: set[tuple[int, int]],
    ) -> Iterator[Finding]:
        name = _call_name(node.func)
        if name not in RANKING_CALLS:
            return
        for arg in node.args:
            labels = analysis.eval(arg, dict(env))
            if labels:
                yield from self._emit(
                    module,
                    arg,
                    seen,
                    f"argument of ranking call `{name}(...)` is derived "
                    f"from {_sources(labels)}",
                )
        for kw in node.keywords:
            if kw.arg != "key":
                continue
            labels = self._key_labels(kw.value, env, analysis)
            if labels:
                yield from self._emit(
                    module,
                    kw.value,
                    seen,
                    f"sort key of `{name}(...)` is derived from "
                    f"{_sources(labels)}",
                )

    def _key_labels(
        self, key: ast.expr, env: Env, analysis: TaintAnalysis
    ) -> frozenset[Label]:
        if isinstance(key, ast.Lambda):
            # Evaluate the body directly: parameters are unbound (their
            # elements' taint is unknown), but oracle sources inside the
            # body still classify.
            return analysis.eval(key.body, dict(env))
        if isinstance(key, ast.Name):
            summary = analysis.summaries.get(key.id)
        elif isinstance(key, ast.Attribute) and isinstance(
            key.value, ast.Name
        ) and key.value.id in ("self", "cls"):
            summary = analysis.summaries.get(key.attr)
        else:
            summary = None
        if summary is not None:
            return summary.own
        return analysis.eval(key, dict(env))

    def _check_return(
        self,
        module: ModuleContext,
        func: ast.AST,
        stmt: ast.Return,
        env: Env,
        analysis: TaintAnalysis,
        seen: set[tuple[int, int]],
    ) -> Iterator[Finding]:
        if stmt.value is None:
            return
        labels = analysis.eval(stmt.value, dict(env))
        if labels:
            name = getattr(func, "name", "<function>")
            yield from self._emit(
                module,
                stmt,
                seen,
                f"ranking function `{name}` returns a value derived "
                f"from {_sources(labels)}",
            )

    def _emit(
        self,
        module: ModuleContext,
        node: ast.AST,
        seen: set[tuple[int, int]],
        what: str,
    ) -> Iterator[Finding]:
        key = (getattr(node, "lineno", 1), getattr(node, "col_offset", 0))
        if key in seen:
            return
        seen.add(key)
        yield self.finding(
            module,
            node,
            f"{what}; decisions must use `scheduling_remaining` (the "
            "estimate-based belief) — with inexact length estimates this "
            "flow is an oracle leak RL008 cannot see (§II-A)",
        )


def _call_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None
