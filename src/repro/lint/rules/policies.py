"""RL004/RL005 — the policy layer's contract with the engine.

RL004: every *concrete* :class:`~repro.policies.base.Scheduler` subclass
must (a) set :attr:`name` (a class attribute, or ``self.name = ...`` in
``__init__`` for wrappers deriving it), (b) implement or inherit concrete
``on_ready`` and ``select``, and (c) be registered in
``repro.policies.registry`` so experiment configs can construct it by
name.  A policy that drifts from this contract still imports fine and may
even pass targeted unit tests, but silently disappears from the
experiment grid — exactly the code/contract drift the reproduction
cannot afford.  The rule resolves subclasses transitively from the three
base classes (``Scheduler``, ``ScanScheduler``, ``HeapScheduler``),
treats any class declaring ``abstractmethod``s as abstract, and skips the
registration check when the registry module is not part of the lint run
(single-file fixture checks).

RL005: policies *observe* transactions and *rank* them; the engine alone
moves them through their lifecycle.  Inside ``repro.policies``, writes to
engine-owned :class:`~repro.core.transaction.Transaction` fields
(``state``, ``remaining``, ``finish_time``, ...), calls to lifecycle
methods (``mark_*``, ``charge``, ``reset``), and any touch of engine
internals (``_events``, ``_running``, ``_pending_deps``) are contract
violations — the engine's accounting would desynchronise from the
transcript and the run would no longer replay.

RL008: policies rank by the scheduler's *belief*, never the engine's
ground truth.  ``remaining`` is the true remaining processing time the
engine charges against; ``believed_remaining`` is the raw estimate-based
store behind the ``scheduling_remaining`` property.  Policy code reading
either directly is an oracle leak: with inexact length estimates
(``WorkloadSpec.length_estimate_error > 0``) the policy would rank by
information the system cannot have (§II-A), silently inflating its
results.  The leak is invisible under the default exact estimates —
belief and truth coincide, every test stays green — which is exactly why
it needs a static rule.  Use ``scheduling_remaining`` (also available on
:class:`~repro.core.workflow.RepresentativeView`) instead.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.lint.engine import ModuleContext, ProjectContext, ProjectRule, Rule
from repro.lint.findings import Finding

__all__ = [
    "NoEngineStateMutation",
    "NoOracleRemainingRead",
    "SchedulerContract",
]

POLICIES_PACKAGE = "repro.policies"
REGISTRY_MODULE = "repro.policies.registry"

#: Base classes rooted in ``repro.policies.base``.  ``Scheduler`` leaves
#: ``on_ready``/``select`` abstract; the two workhorse bases implement
#: both (subclasses supply ``sort_key``/``key`` instead).
ROOT_BASES = {
    "Scheduler": frozenset(),
    "ScanScheduler": frozenset({"on_ready", "select"}),
    "HeapScheduler": frozenset({"on_ready", "select"}),
}

REQUIRED_METHODS = ("on_ready", "select")

#: Transaction fields only the engine may write.
ENGINE_OWNED_ATTRS = {
    "state",
    "remaining",
    "believed_remaining",
    "finish_time",
    "first_start_time",
    "last_dispatch_time",
    "preemptions",
}

#: Transaction lifecycle methods only the engine may call.
LIFECYCLE_METHODS = {
    "mark_waiting",
    "mark_ready",
    "mark_running",
    "mark_suspended",
    "mark_preempted",
    "mark_completed",
    "charge",
    "reset",
}

#: Private engine attributes policies must never reach into.
ENGINE_INTERNALS = {"_events", "_running", "_pending_deps"}

#: Ground-truth remaining-time attributes policies must never *read*
#: (RL008); ``scheduling_remaining`` is the sanctioned accessor.
ORACLE_REMAINING_ATTRS = {"remaining", "believed_remaining"}


@dataclass
class _ClassInfo:
    name: str
    module: ModuleContext
    node: ast.ClassDef
    bases: list[str] = field(default_factory=list)
    methods: set[str] = field(default_factory=set)
    abstract_methods: set[str] = field(default_factory=set)
    sets_name: bool = False


def _base_name(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _is_abstract_decorator(expr: ast.expr) -> bool:
    if isinstance(expr, ast.Name):
        return expr.id in ("abstractmethod", "abstractproperty")
    if isinstance(expr, ast.Attribute):
        return expr.attr in ("abstractmethod", "abstractproperty")
    return False


def _collect_class(module: ModuleContext, node: ast.ClassDef) -> _ClassInfo:
    info = _ClassInfo(name=node.name, module=module, node=node)
    for base in node.bases:
        name = _base_name(base)
        if name is not None:
            info.bases.append(name)
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if any(_is_abstract_decorator(d) for d in stmt.decorator_list):
                info.abstract_methods.add(stmt.name)
            else:
                info.methods.add(stmt.name)
            if stmt.name == "__init__":
                info.sets_name |= _init_sets_name(stmt)
        elif isinstance(stmt, ast.Assign):
            info.sets_name |= any(
                isinstance(t, ast.Name) and t.id == "name"
                for t in stmt.targets
            )
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            info.sets_name |= (
                isinstance(stmt.target, ast.Name) and stmt.target.id == "name"
            )
    return info


def _init_sets_name(init: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for node in ast.walk(init):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr == "name"
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    return True
    return False


class SchedulerContract(ProjectRule):
    """RL004: concrete schedulers set ``name``, hook in, and register."""

    rule_id = "RL004"
    summary = (
        "every concrete Scheduler subclass sets name, implements "
        "on_ready/select, and appears in policies/registry.py"
    )

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        classes: dict[str, _ClassInfo] = {}
        for module in project.modules:
            if not module.in_package(POLICIES_PACKAGE):
                continue
            for node in module.walk():
                if isinstance(node, ast.ClassDef):
                    classes[node.name] = _collect_class(module, node)
        registry = project.find(REGISTRY_MODULE)
        registered = (
            _referenced_names(registry) if registry is not None else None
        )
        findings: list[Finding] = []
        for info in classes.values():
            if info.name in ROOT_BASES or info.name.startswith("_"):
                continue
            if not self._is_scheduler(info, classes):
                continue
            if info.abstract_methods:
                continue  # abstract intermediates are not registrable
            findings.extend(self._check_concrete(info, classes, registered))
        return findings

    def _is_scheduler(
        self,
        info: _ClassInfo,
        classes: dict[str, _ClassInfo],
        _seen: frozenset[str] = frozenset(),
    ) -> bool:
        if info.name in _seen:
            return False
        for base in info.bases:
            if base in ROOT_BASES:
                return True
            parent = classes.get(base)
            if parent is not None and self._is_scheduler(
                parent, classes, _seen | {info.name}
            ):
                return True
        return False

    def _provides(
        self,
        info: _ClassInfo,
        method: str,
        classes: dict[str, _ClassInfo],
        _seen: frozenset[str] = frozenset(),
    ) -> bool:
        if info.name in _seen:
            return False
        if method in info.methods:
            return True
        if method in info.abstract_methods:
            return False
        for base in info.bases:
            if base in ROOT_BASES and method in ROOT_BASES[base]:
                return True
            parent = classes.get(base)
            if parent is not None and self._provides(
                parent, method, classes, _seen | {info.name}
            ):
                return True
        return False

    def _inherits_name(
        self,
        info: _ClassInfo,
        classes: dict[str, _ClassInfo],
        _seen: frozenset[str] = frozenset(),
    ) -> bool:
        if info.name in _seen:
            return False
        if info.sets_name:
            return True
        # The roots' own ``name = "abstract"`` sentinel never counts.
        for base in info.bases:
            parent = classes.get(base)
            if (
                parent is not None
                and parent.name not in ROOT_BASES
                and self._inherits_name(parent, classes, _seen | {info.name})
            ):
                return True
        return False

    def _check_concrete(
        self,
        info: _ClassInfo,
        classes: dict[str, _ClassInfo],
        registered: set[str] | None,
    ) -> Iterator[Finding]:
        if not self._inherits_name(info, classes):
            yield self.finding(
                info.module,
                info.node,
                f"concrete scheduler `{info.name}` never sets `name` (class "
                "attribute or self.name in __init__); the registry and all "
                "result records identify policies by it",
            )
        for method in REQUIRED_METHODS:
            if not self._provides(info, method, classes):
                yield self.finding(
                    info.module,
                    info.node,
                    f"concrete scheduler `{info.name}` neither implements "
                    f"nor inherits a concrete `{method}`; the engine "
                    "contract (repro.policies.base) requires it",
                )
        if registered is not None and info.name not in registered:
            yield self.finding(
                info.module,
                info.node,
                f"concrete scheduler `{info.name}` is not referenced by "
                f"{REGISTRY_MODULE}; register it in _FACTORIES so "
                "experiments can construct it by name",
            )


def _referenced_names(module: ModuleContext) -> set[str]:
    names: set[str] = set()
    for node in module.walk():
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[-1])
    return names


class NoEngineStateMutation(Rule):
    """RL005: policies never mutate engine-owned state."""

    rule_id = "RL005"
    summary = (
        "no writes to Transaction lifecycle state, lifecycle-method calls, "
        "or engine internals from repro.policies"
    )

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        if not module.in_package(POLICIES_PACKAGE):
            return ()
        return list(self._check(module))

    def _check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in module.walk():
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    yield from self._check_write(module, target)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    yield from self._check_write(module, target)
            elif isinstance(node, ast.Call):
                yield from self._check_call(module, node)
            elif isinstance(node, ast.Attribute):
                if node.attr in ENGINE_INTERNALS:
                    yield self.finding(
                        module,
                        node,
                        f"access to engine-internal `{node.attr}`: policies "
                        "interact with the run only through the Scheduler "
                        "hooks",
                    )

    def _check_write(
        self, module: ModuleContext, target: ast.expr
    ) -> Iterator[Finding]:
        if not isinstance(target, ast.Attribute):
            return
        if target.attr not in ENGINE_OWNED_ATTRS:
            return
        if isinstance(target.value, ast.Name) and target.value.id == "self":
            return  # the policy's own attribute of the same name
        yield self.finding(
            module,
            target,
            f"write to engine-owned `{target.attr}`: only the engine moves "
            "transactions through their lifecycle (the run could no longer "
            "replay deterministically)",
        )

    def _check_call(
        self, module: ModuleContext, node: ast.Call
    ) -> Iterator[Finding]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in LIFECYCLE_METHODS:
            return
        if isinstance(func.value, ast.Name) and func.value.id == "self":
            return  # the policy's own method of the same name
        yield self.finding(
            module,
            func,
            f"call to lifecycle method `{func.attr}()`: transaction state "
            "transitions belong to the engine, not the policy",
        )


class NoOracleRemainingRead(Rule):
    """RL008: policies read ``scheduling_remaining``, never ground truth."""

    rule_id = "RL008"
    summary = (
        "no reads of Transaction.remaining / believed_remaining from "
        "repro.policies; rank by scheduling_remaining (the belief)"
    )

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        if not module.in_package(POLICIES_PACKAGE):
            return ()
        return list(self._check(module))

    def _check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in module.walk():
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr not in ORACLE_REMAINING_ATTRS:
                continue
            if not isinstance(node.ctx, ast.Load):
                continue  # writes are RL005's finding, not a second one
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                continue  # the policy's own attribute of the same name
            yield self.finding(
                module,
                node,
                f"read of ground-truth `{node.attr}`: policies must rank by "
                "`scheduling_remaining` (the estimate-based belief) — with "
                "inexact length estimates this read is an oracle leak "
                "(§II-A)",
            )
