"""Suppression comments: ``# repro-lint: disable=RL003 -- reason``.

A suppression names one or more rule ids (comma-separated) and should
carry a reason after ``--``.  It applies to findings on its own line;
when the comment is the *only* thing on its line it applies to the next
non-blank, non-comment line instead, so long guarded statements can keep
the annotation above them::

    if now != self._last_now:  # repro-lint: disable=RL003 -- identity check

    # repro-lint: disable=RL003 -- identity check
    if now != self._last_now:

``disable=all`` suppresses every rule on the target line.  Suppressions
are parsed from raw source lines (not the AST) so they survive in code
the parser rejects elsewhere in the file.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = ["Pragma", "Suppressions"]

_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<rules>[A-Za-z0-9_,\s]+?)"
    r"(?:\s+--\s*(?P<reason>.*))?\s*$"
)


@dataclass(frozen=True)
class Pragma:
    """One parsed suppression comment.

    ``line`` is where the comment sits; ``target`` the code line it
    applies to (the next code line for comment-only pragmas).  ``reason``
    is the text after ``--``, or ``None`` when absent — RL009 requires
    every pragma to carry one.
    """

    line: int
    target: int
    rules: frozenset[str]
    reason: str | None

    @property
    def has_reason(self) -> bool:
        return bool(self.reason and self.reason.strip())


class Suppressions:
    """Per-file map from line number to the rule ids suppressed there.

    Examples
    --------
    >>> s = Suppressions.from_source("x = 1  # repro-lint: disable=RL001")
    >>> s.is_suppressed("RL001", 1)
    True
    >>> s.is_suppressed("RL002", 1)
    False
    >>> s.pragmas[0].has_reason
    False
    """

    def __init__(
        self,
        by_line: dict[int, frozenset[str]],
        pragmas: tuple[Pragma, ...] = (),
    ) -> None:
        self._by_line = by_line
        #: Every pragma in source order (for hygiene rules / reports).
        self.pragmas = pragmas

    @classmethod
    def from_source(cls, source: str) -> "Suppressions":
        """Parse every pragma comment out of ``source``."""
        lines = source.splitlines()
        by_line: dict[int, frozenset[str]] = {}
        pragmas: list[Pragma] = []
        for idx, text in enumerate(lines, start=1):
            match = _PRAGMA.search(text)
            if match is None:
                continue
            rules = frozenset(
                part.strip().upper()
                for part in match.group("rules").split(",")
                if part.strip()
            )
            if not rules:
                continue
            target = idx
            if text.lstrip().startswith("#"):
                # Comment-only line: the pragma covers the next code line.
                for nxt in range(idx + 1, len(lines) + 1):
                    following = lines[nxt - 1].strip()
                    if following and not following.startswith("#"):
                        target = nxt
                        break
            by_line[target] = by_line.get(target, frozenset()) | rules
            pragmas.append(
                Pragma(
                    line=idx,
                    target=target,
                    rules=rules,
                    reason=match.group("reason"),
                )
            )
        return cls(by_line, tuple(pragmas))

    def is_suppressed(self, rule: str, line: int) -> bool:
        """True iff ``rule`` is disabled on ``line``."""
        rules = self._by_line.get(line)
        if rules is None:
            return False
        return "ALL" in rules or rule.upper() in rules

    def __len__(self) -> int:
        return len(self._by_line)
