"""``repro.lint`` — AST-based invariant checking for the reproduction.

The test suite can only spot-check the properties the reproduction's
credibility rests on: bit-for-bit determinism given a seed, a zero-cost
uninstrumented engine hot path, and policies that honour the
:class:`~repro.policies.base.Scheduler` hook contract.  This package
enforces those invariants *at the source level* with a dependency-free
:mod:`ast` walker and a numbered rule library (RL001..RL012), wired into
CI as a blocking job.

Rules RL001–RL009 are per-statement AST matchers.  RL010–RL012 are the
*dataflow* rules: per-function control-flow graphs
(:mod:`repro.lint.cfg`), a taint lattice with one-level call summaries
(:mod:`repro.lint.dataflow`), believed-vs-true basis tracking (RL010),
sim-vs-wall time-dimension analysis (RL011), and static event-schema
contracts cross-checked against ``EVENT_SCHEMAS`` (RL012).

Usage::

    python -m repro.lint [--format json|sarif] [--select/--ignore RLxxx] paths...

or programmatically::

    >>> from repro.lint import run_lint
    >>> run_lint(["src/repro"])  # doctest: +SKIP
    []

See ``docs/lint.md`` for the rule catalog and the suppression syntax
(``# repro-lint: disable=RL003 -- reason``).
"""

from __future__ import annotations

from repro.lint.cfg import CFG, Block, build_cfg
from repro.lint.dataflow import (
    CallSummary,
    TaintAnalysis,
    TaintSpec,
    reaching_definitions,
    summarize_module,
)
from repro.lint.engine import (
    LintResult,
    ModuleContext,
    ProjectContext,
    check_file,
    collect_modules,
    lint,
    run_lint,
)
from repro.lint.findings import Finding
from repro.lint.reporters import (
    parse_json_report,
    render_json,
    render_sarif,
    render_text,
)
from repro.lint.rules import ALL_RULES, Rule, rules_by_id
from repro.lint.suppress import Pragma, Suppressions

__all__ = [
    "ALL_RULES",
    "Block",
    "CFG",
    "CallSummary",
    "Finding",
    "LintResult",
    "ModuleContext",
    "Pragma",
    "ProjectContext",
    "Rule",
    "Suppressions",
    "TaintAnalysis",
    "TaintSpec",
    "build_cfg",
    "check_file",
    "collect_modules",
    "lint",
    "parse_json_report",
    "reaching_definitions",
    "render_json",
    "render_sarif",
    "render_text",
    "rules_by_id",
    "run_lint",
    "summarize_module",
]
