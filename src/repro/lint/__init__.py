"""``repro.lint`` — AST-based invariant checking for the reproduction.

The test suite can only spot-check the properties the reproduction's
credibility rests on: bit-for-bit determinism given a seed, a zero-cost
uninstrumented engine hot path, and policies that honour the
:class:`~repro.policies.base.Scheduler` hook contract.  This package
enforces those invariants *at the source level* with a dependency-free
:mod:`ast` walker and a numbered rule library (RL001..RL007), wired into
CI as a blocking job.

Usage::

    python -m repro.lint [--format json] [--select/--ignore RLxxx] paths...

or programmatically::

    >>> from repro.lint import run_lint
    >>> run_lint(["src/repro"])  # doctest: +SKIP
    []

See ``docs/lint.md`` for the rule catalog and the suppression syntax
(``# repro-lint: disable=RL003 -- reason``).
"""

from __future__ import annotations

from repro.lint.engine import (
    LintResult,
    ModuleContext,
    ProjectContext,
    check_file,
    collect_modules,
    lint,
    run_lint,
)
from repro.lint.findings import Finding
from repro.lint.reporters import parse_json_report, render_json, render_text
from repro.lint.rules import ALL_RULES, Rule, rules_by_id
from repro.lint.suppress import Suppressions

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintResult",
    "ModuleContext",
    "ProjectContext",
    "Rule",
    "Suppressions",
    "check_file",
    "collect_modules",
    "lint",
    "parse_json_report",
    "render_json",
    "render_text",
    "rules_by_id",
    "run_lint",
]
