"""Finding reporters: a human text format and a round-trippable JSON one.

Text findings follow the ``path:line:col: RULE message`` convention every
editor understands.  The JSON report is schema-versioned (``version: 1``)
and :func:`parse_json_report` is its exact inverse, so CI artifacts can
be post-processed without scraping text.
"""

from __future__ import annotations

import json
from typing import Any

from repro.lint.engine import LintResult
from repro.lint.findings import Finding

__all__ = ["JSON_SCHEMA_VERSION", "parse_json_report", "render_json", "render_text"]

#: Bump when the JSON report layout changes shape.
JSON_SCHEMA_VERSION = 1


def render_text(result: LintResult) -> str:
    """Human-readable report: one finding per line plus a summary."""
    lines = [
        f"{f.location}: {f.rule} {f.message}" for f in result.findings
    ]
    summary = (
        f"{len(result.findings)} finding(s) in {result.files_checked} "
        f"file(s) ({result.suppressed} suppressed)"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report; invert with :func:`parse_json_report`."""
    payload: dict[str, Any] = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "findings": [f.to_dict() for f in result.findings],
        "counts": _counts(result),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _counts(result: LintResult) -> dict[str, int]:
    counts: dict[str, int] = {}
    for finding in result.findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return counts


def parse_json_report(text: str) -> LintResult:
    """Rebuild a :class:`LintResult` from :func:`render_json` output."""
    payload = json.loads(text)
    version = payload.get("version")
    if version != JSON_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported lint report version {version!r}; "
            f"expected {JSON_SCHEMA_VERSION}"
        )
    return LintResult(
        findings=[Finding.from_dict(d) for d in payload["findings"]],
        files_checked=int(payload["files_checked"]),
        suppressed=int(payload["suppressed"]),
    )
