"""Finding reporters: human text, round-trippable JSON, and SARIF.

Text findings follow the ``path:line:col: RULE message`` convention every
editor understands.  The JSON report is schema-versioned (``version: 1``)
and :func:`parse_json_report` is its exact inverse, so CI artifacts can
be post-processed without scraping text.  :func:`render_sarif` emits
SARIF 2.1.0 for GitHub code scanning, so findings surface as inline
annotations on pull requests.
"""

from __future__ import annotations

import json
from typing import Any

from repro.lint.engine import LintResult
from repro.lint.findings import Finding

__all__ = [
    "JSON_SCHEMA_VERSION",
    "SARIF_VERSION",
    "parse_json_report",
    "render_json",
    "render_sarif",
    "render_text",
]

#: Bump when the JSON report layout changes shape.
JSON_SCHEMA_VERSION = 1


def render_text(result: LintResult) -> str:
    """Human-readable report: one finding per line plus a summary."""
    lines = [
        f"{f.location}: {f.rule} {f.message}" for f in result.findings
    ]
    summary = (
        f"{len(result.findings)} finding(s) in {result.files_checked} "
        f"file(s) ({result.suppressed} suppressed)"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report; invert with :func:`parse_json_report`."""
    payload: dict[str, Any] = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "findings": [f.to_dict() for f in result.findings],
        "counts": _counts(result),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _counts(result: LintResult) -> dict[str, int]:
    counts: dict[str, int] = {}
    for finding in result.findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return counts


#: SARIF spec version emitted by :func:`render_sarif`.
SARIF_VERSION = "2.1.0"

_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_sarif(result: LintResult, rules: Any = None) -> str:
    """SARIF 2.1.0 report for GitHub code-scanning upload.

    ``rules`` is an optional iterable of rule instances (anything with
    ``rule_id`` and ``summary``); when given, the tool component carries
    per-rule metadata so annotations link to rule descriptions.
    """
    rule_meta = []
    seen: set[str] = set()
    for rule in rules or ():
        rule_id = getattr(rule, "rule_id", None)
        if rule_id is None or rule_id in seen:
            continue
        seen.add(rule_id)
        rule_meta.append(
            {
                "id": rule_id,
                "shortDescription": {
                    "text": getattr(rule, "summary", "") or rule_id
                },
            }
        )
    results = [
        {
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.path.replace("\\", "/")},
                        "region": {
                            "startLine": max(f.line, 1),
                            "startColumn": f.col + 1,
                        },
                    }
                }
            ],
        }
        for f in result.findings
    ]
    payload: dict[str, Any] = {
        "$schema": _SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.lint",
                        "informationUri": "docs/lint.md",
                        "rules": rule_meta,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def parse_json_report(text: str) -> LintResult:
    """Rebuild a :class:`LintResult` from :func:`render_json` output."""
    payload = json.loads(text)
    version = payload.get("version")
    if version != JSON_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported lint report version {version!r}; "
            f"expected {JSON_SCHEMA_VERSION}"
        )
    return LintResult(
        findings=[Finding.from_dict(d) for d in payload["findings"]],
        files_checked=int(payload["files_checked"]),
        suppressed=int(payload["suppressed"]),
    )
