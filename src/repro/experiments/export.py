"""Export experiment output to CSV and JSON.

Downstream users typically want the regenerated series in a machine
readable form (to plot against the paper's figures, or to diff across
code versions).  Both exporters are loss-free round trips of a
:class:`~repro.metrics.aggregates.MetricSeries`.
"""

from __future__ import annotations

import csv
import io
import json
import pathlib

from repro.errors import ExperimentError
from repro.metrics.aggregates import MetricSeries

__all__ = [
    "series_to_csv",
    "series_to_json",
    "series_from_json",
    "write_series",
]


def series_to_csv(series: MetricSeries) -> str:
    """Render a series as CSV text (header row + one row per x value)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(series.column_names())
    for row in series.as_rows():
        writer.writerow(row)
    return buffer.getvalue()


def series_to_json(series: MetricSeries) -> str:
    """Render a series as a JSON document (metadata + data columns)."""
    payload = {
        "metric": series.metric,
        "x_label": series.x_label,
        "x": series.x,
        "series": series.series,
    }
    if series.raw is not None:
        payload["raw"] = json.loads(series_to_json(series.raw))
    return json.dumps(payload, indent=2)


def series_from_json(text: str) -> MetricSeries:
    """Rebuild a :class:`MetricSeries` from :func:`series_to_json` output."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ExperimentError(f"invalid series JSON: {exc}") from exc
    for key in ("metric", "x_label", "x", "series"):
        if key not in payload:
            raise ExperimentError(f"series JSON missing key {key!r}")
    series = MetricSeries(
        x_label=payload["x_label"],
        x=list(payload["x"]),
        metric=payload["metric"],
    )
    for name, values in payload["series"].items():
        series.add(name, values)
    if "raw" in payload:
        series.raw = series_from_json(json.dumps(payload["raw"]))
    return series


def write_series(
    series: MetricSeries,
    path: str | pathlib.Path,
) -> pathlib.Path:
    """Write a series to ``path``; the suffix picks the format.

    ``.csv`` writes CSV, ``.json`` writes JSON; anything else is
    rejected.  Returns the path written.
    """
    path = pathlib.Path(path)
    if path.suffix == ".csv":
        path.write_text(series_to_csv(series))
    elif path.suffix == ".json":
        path.write_text(series_to_json(series))
    else:
        raise ExperimentError(
            f"unsupported export suffix {path.suffix!r}; use .csv or .json"
        )
    return path
