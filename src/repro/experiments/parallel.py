"""Process-pool fan-out for the experiment sweeps.

The sequential sweeps in :mod:`repro.experiments.runner` walk a
(x-value × seed × policy) grid one cell at a time.  Every cell is an
independent simulation, so this module fans the grid out across worker
processes and merges the per-cell results back **deterministically**: the
merged :class:`~repro.metrics.aggregates.MetricSeries` is byte-identical
to the sequential one regardless of worker count or completion order.

The unit of work shipped to a worker is a :class:`CellGroup` — one
``(spec, seed)`` pair plus the full policy list.  The worker generates
the workload *once* and replays it per policy (resetting in between),
exactly like the sequential path; shipping whole groups instead of
single cells avoids regenerating the same workload ``|policies|`` times.

Determinism argument: ``generate(spec, seed)`` is pure and each replay
is a deterministic function of ``(workload, policy)``, so every cell
value is the same float no matter where or when it is computed.  The
merge then averages those values *in seed order* with the same
:func:`~repro.metrics.aggregates.mean` the sequential path uses, so the
resulting series match bit for bit.

Failures are captured per cell: a raising policy (or a failing workload
generation, which fails every cell of its group) yields a
:class:`CellFailure` carrying the ``(x, seed, policy)`` coordinates and
the worker-side traceback.  Callers either collect them (``failures=``)
— failed cells are simply left out of the seed average, and a column
with no surviving seed reports ``nan`` — or get a
:class:`~repro.errors.SweepError` aggregating them all.

A sweep can also inject faults: a :class:`~repro.faults.FaultSpec` on a
:class:`CellGroup` is expanded worker-side into a
:class:`~repro.faults.plan.FaultPlan` (specs are small and picklable;
plans are rebuilt deterministically from the spec, so shipping the spec
keeps the pickle payload flat).  And it can guard against hangs: a
``timeout`` hands the whole run to the process pool (even with one
worker) and converts any window with no completed group into per-cell
timeout :class:`CellFailure` entries instead of blocking forever.
"""

from __future__ import annotations

import dataclasses
import math
import pathlib
import sys
import threading
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from traceback import format_exc
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.errors import CheckpointError, SweepError, SweepInterrupted
from repro.experiments.config import PolicySpec
from repro.faults import FaultSpec, plan_faults
from repro.metrics.aggregates import MetricSeries, mean
from repro.sim.engine import Simulator
from repro.workload.generator import generate
from repro.workload.spec import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ckpt.sweep import SweepManifest
    from repro.obs.profile import ProfileSnapshot
    from repro.obs.streaming import RunTelemetry

__all__ = [
    "CellGroup",
    "CellFailure",
    "GroupResult",
    "SweepColumn",
    "TelemetrySpec",
    "grid_sweep",
    "resolve_jobs",
    "run_cell_groups",
]

#: Type of the optional per-line progress callback shared by the sweeps.
ProgressFn = Callable[[str], None]


def resolve_jobs(jobs: int) -> int:
    """Map the user-facing ``--jobs`` value to a worker count.

    ``jobs >= 1`` is taken literally; ``jobs <= 0`` means "one per
    available core" (like ``make -j`` with no argument).
    """
    if jobs >= 1:
        return jobs
    import os

    return max(1, os.cpu_count() or 1)


@dataclasses.dataclass(frozen=True, slots=True)
class TelemetrySpec:
    """Per-cell streaming-telemetry request, shipped to sweep workers.

    When attached to a :class:`CellGroup` every cell runs with per-txn
    retention off and a
    :class:`~repro.obs.streaming.StreamingRecorder`; the resulting
    :class:`~repro.obs.streaming.RunTelemetry` rides home in the
    :class:`GroupResult`.  The sweep merges per-policy telemetry in grid
    order (column, then seed), and the sketch merges are associative, so
    the merged telemetry is byte-identical whatever the worker count.
    """

    quantile_accuracy: float = 0.01
    window: float | None = None
    topk: int = 16


@dataclasses.dataclass(frozen=True, slots=True)
class CellGroup:
    """One (spec, seed) workload replayed under every policy.

    ``index`` is the group's position along the sweep's x axis; together
    with ``seed`` and the policy position it addresses each cell of the
    grid, independent of completion order.
    """

    index: int
    x: float
    seed: int
    spec: WorkloadSpec
    policies: tuple[PolicySpec, ...]
    metric: str
    servers: int = 1
    #: Optional fault injection; the plan is rebuilt worker-side.
    fault_spec: FaultSpec | None = None
    #: Optional streaming telemetry; cells then run with retention off.
    telemetry: TelemetrySpec | None = None
    #: When True every cell runs with a fresh
    #: :class:`~repro.obs.profile.PhaseProfiler` and ships its
    #: :class:`~repro.obs.profile.ProfileSnapshot` home.
    profile: bool = False
    #: Set on resume remnants: ``policies[k]`` sits at position
    #: ``policy_positions[k]`` of the *original* grid's policy list, so
    #: the merge keys cells by their original coordinates even when
    #: already-completed policies were dropped from the group.
    policy_positions: tuple[int, ...] | None = None


@dataclasses.dataclass(frozen=True, slots=True)
class CellFailure:
    """Coordinates and worker-side traceback of one failed sweep cell."""

    x: float
    seed: int
    policy: str
    error: str
    traceback: str


@dataclasses.dataclass(frozen=True, slots=True)
class GroupResult:
    """What a worker sends back: one outcome per policy of the group.

    ``values[i]`` is the metric value of policy ``i`` (``None`` if that
    cell failed); ``failures[i]`` is the matching :class:`CellFailure`
    (``None`` if the cell succeeded).  When the group requested
    telemetry, ``telemetry[i]`` carries policy ``i``'s
    :class:`~repro.obs.streaming.RunTelemetry` (``None`` on failure, or
    an empty tuple when telemetry was off); ``profiles[i]`` is the
    analogous :class:`~repro.obs.profile.ProfileSnapshot` when the group
    requested profiling.
    """

    group: CellGroup
    values: tuple[float | None, ...]
    failures: tuple[CellFailure | None, ...]
    telemetry: "tuple[RunTelemetry | None, ...]" = ()
    profiles: "tuple[ProfileSnapshot | None, ...]" = ()


def _run_group(group: CellGroup) -> GroupResult:
    """Worker entry point: generate once, replay per policy.

    Must stay a module-level function (and :class:`CellGroup` picklable)
    for :class:`~concurrent.futures.ProcessPoolExecutor`.
    """
    try:
        workload = generate(group.spec, group.seed)
    except Exception as exc:  # noqa: BLE001 - reported per cell
        tb = format_exc()
        failures = tuple(
            CellFailure(
                x=group.x,
                seed=group.seed,
                policy=policy.display,
                error=repr(exc),
                traceback=tb,
            )
            for policy in group.policies
        )
        return GroupResult(group, (None,) * len(group.policies), failures)

    plan = None
    if group.fault_spec is not None and not group.fault_spec.is_null:
        # Built once per group: the plan keys off static transaction
        # attributes (id, length, arrival), so it is replay-safe across
        # the per-policy resets below.
        plan = plan_faults(
            group.fault_spec, workload.transactions, servers=group.servers
        )

    values: list[float | None] = []
    failures_out: list[CellFailure | None] = []
    telemetry_out: "list[RunTelemetry | None]" = []
    profiles_out: "list[ProfileSnapshot | None]" = []
    for policy in group.policies:
        try:
            workload.reset()
            recorder = None
            if group.telemetry is not None:
                from repro.obs.streaming import StreamingRecorder

                recorder = StreamingRecorder(
                    quantile_accuracy=group.telemetry.quantile_accuracy,
                    window=group.telemetry.window,
                    topk=group.telemetry.topk,
                )
            profiler = None
            if group.profile:
                from repro.obs.profile import PhaseProfiler

                profiler = PhaseProfiler()
            result = Simulator(
                workload.transactions,
                policy.make(),
                workflow_set=workload.workflow_set,
                servers=group.servers,
                faults=plan,
                instrument=recorder,
                retain_records=group.telemetry is None,
                profiler=profiler,
            ).run()
            values.append(float(getattr(result, group.metric)))
            failures_out.append(None)
            telemetry_out.append(
                recorder.telemetry if recorder is not None else None
            )
            profiles_out.append(
                profiler.snapshot(policy.display)
                if profiler is not None
                else None
            )
        except Exception as exc:  # noqa: BLE001 - reported per cell
            values.append(None)
            telemetry_out.append(None)
            profiles_out.append(None)
            failures_out.append(
                CellFailure(
                    x=group.x,
                    seed=group.seed,
                    policy=policy.display,
                    error=repr(exc),
                    traceback=format_exc(),
                )
            )
    return GroupResult(
        group,
        tuple(values),
        tuple(failures_out),
        tuple(telemetry_out) if group.telemetry is not None else (),
        tuple(profiles_out) if group.profile else (),
    )


def run_cell_groups(
    groups: Sequence[CellGroup],
    jobs: int = 1,
    progress: ProgressFn | None = None,
    timeout: float | None = None,
    telemetry_out: "dict[tuple[int, int, int], RunTelemetry] | None" = None,
    profile_out: "dict[tuple[int, int, int], ProfileSnapshot] | None" = None,
    manifest: "SweepManifest | None" = None,
) -> tuple[dict[tuple[int, int, int], float], list[CellFailure]]:
    """Execute the groups and index every cell result by its coordinates.

    Returns ``(results, failures)`` where ``results`` maps
    ``(group.index, group.seed, policy_position)`` to the metric value.
    The mapping is completion-order independent by construction; the
    failure list is sorted by the same coordinates.  When groups carry a
    :class:`TelemetrySpec`, pass ``telemetry_out`` to collect each
    cell's :class:`~repro.obs.streaming.RunTelemetry` under the same
    coordinate key; when groups set ``profile``, ``profile_out``
    likewise collects each cell's
    :class:`~repro.obs.profile.ProfileSnapshot`.  ``manifest`` (a
    :class:`~repro.ckpt.sweep.SweepManifest`) persists every successful
    cell the moment it is merged, making the sweep resumable.

    A ``KeyboardInterrupt`` (Ctrl-C, or the CLI's SIGTERM handler) is
    handled gracefully: workers are terminated before pool shutdown (no
    orphan processes), completed/failed/pending cell counts go to
    stderr, and :class:`~repro.errors.SweepInterrupted` is raised so
    callers can distinguish an interrupt from a failure.  Cells already
    merged — and, with ``manifest``, persisted — are not lost.

    With ``jobs == 1`` everything runs inline in this process (no pool,
    no pickling); with ``jobs > 1`` groups are fanned out over a
    :class:`~concurrent.futures.ProcessPoolExecutor`.  ``progress`` is
    invoked under a lock, one line per finished group, so callers may
    share a callback across concurrent sweeps.

    ``timeout`` (wall-clock seconds) is the watchdog window: if *no*
    group completes within it, every still-pending group is converted to
    per-policy timeout :class:`CellFailure` entries and the pool is
    abandoned without waiting for the hung worker.  Setting a timeout
    forces the pool path even with ``jobs == 1`` — an inline hang could
    never be interrupted.
    """
    jobs = resolve_jobs(jobs)
    lock = threading.Lock()

    def report(result: GroupResult) -> None:
        if progress is None:
            return
        failed = sum(1 for f in result.failures if f is not None)
        suffix = "" if not failed else f" ({failed} cell(s) failed)"
        with lock:
            progress(
                f"x={result.group.x:g} seed={result.group.seed} "
                f"[{len(result.group.policies)} policies]{suffix}"
            )

    results: dict[tuple[int, int, int], float] = {}
    failures: list[CellFailure] = []

    def merge(result: GroupResult) -> None:
        positions = result.group.policy_positions
        for local_pos, (value, failure) in enumerate(
            zip(result.values, result.failures)
        ):
            pos = positions[local_pos] if positions is not None else local_pos
            coord = (result.group.index, result.group.seed, pos)
            if failure is not None:
                failures.append(failure)
            else:
                assert value is not None
                results[coord] = value
                if manifest is not None:
                    manifest.record(
                        result.group.index, result.group.seed, pos, value
                    )
                if telemetry_out is not None and result.telemetry:
                    cell_telemetry = result.telemetry[local_pos]
                    if cell_telemetry is not None:
                        telemetry_out[coord] = cell_telemetry
                if profile_out is not None and result.profiles:
                    cell_profile = result.profiles[local_pos]
                    if cell_profile is not None:
                        profile_out[coord] = cell_profile
        report(result)

    try:
        if jobs == 1 and timeout is None:
            for group in groups:
                merge(_run_group(group))
        else:
            _run_pooled(groups, jobs, timeout, merge, failures)
    except KeyboardInterrupt:
        total = sum(len(group.policies) for group in groups)
        completed = len(results)
        failed = len(failures)
        pending = total - completed - failed
        print(
            f"sweep interrupted: {completed} cell(s) completed, "
            f"{failed} failed, {pending} pending",
            file=sys.stderr,
        )
        raise SweepInterrupted(completed, failed, pending) from None

    failures.sort(key=lambda f: (f.x, f.seed, f.policy))
    return results, failures


def _timeout_failures(group: CellGroup, timeout: float) -> list[CellFailure]:
    return [
        CellFailure(
            x=group.x,
            seed=group.seed,
            policy=policy.display,
            error=f"TimeoutError: no result within {timeout:g}s",
            traceback="(worker timed out; no worker-side traceback)",
        )
        for policy in group.policies
    ]


def _run_pooled(
    groups: Sequence[CellGroup],
    jobs: int,
    timeout: float | None,
    merge: Callable[[GroupResult], None],
    failures: list[CellFailure],
) -> None:
    """Pool execution with an optional no-progress watchdog.

    Abandons the pool (terminate workers, then non-waiting shutdown) in
    two cases: the watchdog fired, or the caller interrupted the sweep
    (``KeyboardInterrupt``, re-raised after the cleanup is armed).
    """
    pool = ProcessPoolExecutor(max_workers=jobs)
    abandon = False
    try:
        future_to_group = {
            pool.submit(_run_group, group): group for group in groups
        }
        pending = set(future_to_group)
        while pending:
            done, pending = wait(
                pending, timeout=timeout, return_when=FIRST_COMPLETED
            )
            if not done:
                # Nothing finished inside the watchdog window: treat every
                # outstanding group (hung or queued behind it) as failed.
                abandon = True
                for future in pending:
                    future.cancel()
                    failures.extend(
                        _timeout_failures(future_to_group[future], timeout or 0.0)
                    )
                break
            for future in done:
                merge(future.result())
    except KeyboardInterrupt:
        # Graceful interruption: reap the workers below instead of
        # orphaning them, then let run_cell_groups report the counts.
        abandon = True
        raise
    finally:
        if abandon:
            # Best effort: reap the live workers *before* shutdown (which
            # drops its process handles) so neither this call nor
            # interpreter exit blocks on them.  The manager thread then
            # observes the dead workers and winds itself down.
            # ``_processes`` is a private detail, so tolerate its absence
            # on future Python versions.
            try:
                procs = list(pool._processes.values())  # type: ignore[union-attr]
            except Exception:  # pragma: no cover - interpreter-specific
                procs = []
            for proc in procs:
                try:
                    proc.terminate()
                except Exception:  # pragma: no cover - already gone
                    pass
        pool.shutdown(wait=not abandon, cancel_futures=True)


@dataclasses.dataclass(frozen=True, slots=True)
class SweepColumn:
    """One x-axis position of a grid sweep: its spec and server count."""

    x: float
    spec: WorkloadSpec
    servers: int = 1


def grid_sweep(
    columns: Sequence[SweepColumn],
    policies: Sequence[PolicySpec],
    metric: str,
    seeds: Iterable[int],
    *,
    x_label: str,
    series_metric: str | None = None,
    jobs: int = 1,
    progress: ProgressFn | None = None,
    failures: list[CellFailure] | None = None,
    fault_spec: FaultSpec | None = None,
    cell_timeout: float | None = None,
    telemetry: TelemetrySpec | None = None,
    telemetry_out: "dict[str, RunTelemetry] | None" = None,
    profile: bool = False,
    profile_out: "dict[str, ProfileSnapshot] | None" = None,
    resume: str | pathlib.Path | None = None,
) -> MetricSeries:
    """Run a (column × seed × policy) grid and merge it deterministically.

    The returned series carries, per policy, the per-column metric
    averaged over seeds *in seed order* — exactly what the sequential
    sweeps compute.  Cells listed in ``failures`` are excluded from
    their seed average; a column whose every seed failed reports
    ``nan``.  When ``failures`` is ``None`` any cell failure raises
    :class:`~repro.errors.SweepError` (after the whole grid has run).
    ``fault_spec`` injects the same fault plan per (spec, seed) group;
    ``cell_timeout`` arms the no-progress watchdog of
    :func:`run_cell_groups`.

    ``telemetry`` opts every cell into constant-memory streaming
    telemetry; ``telemetry_out`` (a dict the caller owns) then receives,
    per policy display name, the cells' telemetry merged **in grid order**
    — column index first, then seed order, independent of completion
    order.  Together with the associative sketch merge this makes the
    merged telemetry byte-identical (``as_dict()``-equal) for any
    ``jobs`` count.

    ``profile=True`` runs every cell under a fresh
    :class:`~repro.obs.profile.PhaseProfiler`; ``profile_out`` then
    receives, per policy display name, the cells'
    :class:`~repro.obs.profile.ProfileSnapshot` merged in the same
    fixed grid order.  Counts and structure are deterministic for any
    ``jobs`` count (wall-clock totals naturally vary run to run).

    ``resume`` makes the sweep restartable: every completed cell is
    appended (atomically per line, flushed immediately) to a
    :class:`~repro.ckpt.sweep.SweepManifest` at that path, and on
    restart cells already listed — under the same grid fingerprint —
    are skipped and their persisted values merged back in.  JSON floats
    round-trip exactly, so the resumed series is byte-identical to a
    fresh single-process run.  Resume cannot be combined with
    ``telemetry`` or ``profile`` (their per-cell state is not
    persisted in the manifest).
    """
    seed_list = list(seeds)
    policy_list = list(policies)
    manifest: "SweepManifest | None" = None
    preloaded: dict[tuple[int, int, int], float] = {}
    if resume is not None:
        if telemetry is not None or profile:
            raise CheckpointError(
                "sweep resume cannot be combined with telemetry or "
                "profile collection: their per-cell state is not "
                "persisted in the manifest"
            )
        from repro.ckpt.sweep import SweepManifest, grid_fingerprint

        manifest = SweepManifest.open(
            resume,
            grid_fingerprint(
                columns, policy_list, metric, seed_list, fault_spec
            ),
        )
        preloaded = dict(manifest.completed)
    groups = []
    for i, column in enumerate(columns):
        for seed in seed_list:
            positions = tuple(
                pos
                for pos in range(len(policy_list))
                if (i, seed, pos) not in preloaded
            )
            if not positions:
                continue  # every cell of this group already completed
            groups.append(
                CellGroup(
                    index=i,
                    x=column.x,
                    seed=seed,
                    spec=column.spec,
                    policies=tuple(policy_list[pos] for pos in positions),
                    metric=metric,
                    servers=column.servers,
                    fault_spec=fault_spec,
                    telemetry=telemetry,
                    profile=profile,
                    policy_positions=(
                        positions
                        if len(positions) != len(policy_list)
                        else None
                    ),
                )
            )
    cell_telemetry: "dict[tuple[int, int, int], RunTelemetry] | None" = (
        {} if telemetry is not None and telemetry_out is not None else None
    )
    cell_profiles: "dict[tuple[int, int, int], ProfileSnapshot] | None" = (
        {} if profile and profile_out is not None else None
    )
    try:
        results, cell_failures = run_cell_groups(
            groups, jobs, progress, timeout=cell_timeout,
            telemetry_out=cell_telemetry,
            profile_out=cell_profiles,
            manifest=manifest,
        )
    finally:
        if manifest is not None:
            manifest.close()
    if preloaded:
        # Persisted cells merge under their original coordinates; cells
        # recomputed this attempt never collide with them (they were
        # excluded from the groups above).
        results = {**preloaded, **results}
    if cell_failures:
        if failures is None:
            raise SweepError(cell_failures)
        failures.extend(cell_failures)

    if cell_telemetry is not None:
        assert telemetry is not None and telemetry_out is not None
        from repro.obs.streaming import RunTelemetry

        for pos, policy in enumerate(policy_list):
            merged = RunTelemetry(
                telemetry.quantile_accuracy, topk=telemetry.topk
            )
            # Fixed grid order — the determinism lever for the float
            # (moments) part of the merge; sketches are order-free.
            for i in range(len(columns)):
                for seed in seed_list:
                    cell = cell_telemetry.get((i, seed, pos))
                    if cell is not None:
                        merged.merge(cell)
            telemetry_out[policy.display] = merged

    if cell_profiles is not None:
        assert profile_out is not None
        from repro.obs.profile import ProfileSnapshot

        for pos, policy in enumerate(policy_list):
            merged_profile = ProfileSnapshot(policy=policy.display)
            # Same fixed grid order as the telemetry merge above.
            for i in range(len(columns)):
                for seed in seed_list:
                    cell_snap = cell_profiles.get((i, seed, pos))
                    if cell_snap is not None:
                        merged_profile.merge(cell_snap)
            profile_out[policy.display] = merged_profile

    series = MetricSeries(
        x_label=x_label,
        x=[column.x for column in columns],
        metric=series_metric if series_metric is not None else metric,
    )
    for pos, policy in enumerate(policy_list):
        column_means: list[float] = []
        for i in range(len(columns)):
            values = [
                results[(i, seed, pos)]
                for seed in seed_list
                if (i, seed, pos) in results
            ]
            column_means.append(mean(values) if values else math.nan)
        series.add(policy.display, column_means)
    return series
