"""Experiment harness: every table and figure of Section IV.

Each figure of the paper's evaluation has a dedicated entry point in
:mod:`repro.experiments.figures` that regenerates the corresponding
series at the paper's parameters (1000 transactions, 5 seeds, Table I
defaults).  :mod:`repro.experiments.runner` holds the generic seeded
sweep machinery; :mod:`repro.experiments.config` the per-figure parameter
grids; :mod:`repro.experiments.tables` the Table I summary and the
headline-claims check; :mod:`repro.experiments.cli` a command-line front
end (``python -m repro.experiments fig10``).
"""

from repro.experiments.config import (
    ExperimentConfig,
    PolicySpec,
    DEFAULT_SEEDS,
    DEFAULT_UTILIZATIONS,
)
from repro.experiments.runner import (
    run_policy_on,
    mean_metric,
    metric_spread,
    utilization_sweep,
)
from repro.experiments.figures import (
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
    figure16,
    figure17,
    alpha_sweep,
)
from repro.experiments.tables import table1, headline_claims
from repro.experiments.extensions import (
    estimation_robustness,
    multiserver_sweep,
    tail_analysis,
)
from repro.experiments.export import series_to_csv, series_to_json, write_series

__all__ = [
    "ExperimentConfig",
    "PolicySpec",
    "DEFAULT_SEEDS",
    "DEFAULT_UTILIZATIONS",
    "run_policy_on",
    "mean_metric",
    "metric_spread",
    "utilization_sweep",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
    "figure15",
    "figure16",
    "figure17",
    "alpha_sweep",
    "table1",
    "headline_claims",
    "estimation_robustness",
    "multiserver_sweep",
    "tail_analysis",
    "series_to_csv",
    "series_to_json",
    "write_series",
]
