"""Experiment configuration: policy specs and parameter grids.

The defaults mirror Section IV-A: 1000 transactions per run, metrics
averaged over five seeded runs, utilization swept from 0.1 to 1.0, Zipf
:math:`\\alpha = 0.5`, :math:`k_{max} = 3`.  Every figure entry point
accepts an :class:`ExperimentConfig` so tests can shrink the workload
while benchmarks run at paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

from repro.errors import ExperimentError
from repro.policies.base import Scheduler
from repro.policies.registry import make_policy

__all__ = [
    "PolicySpec",
    "ExperimentConfig",
    "DEFAULT_JOBS",
    "DEFAULT_SEEDS",
    "DEFAULT_UTILIZATIONS",
    "LOW_UTILIZATIONS",
    "HIGH_UTILIZATIONS",
    "TIME_ACTIVATION_RATES",
    "COUNT_ACTIVATION_RATES",
    "DEFAULT_PROBE_UTILIZATION",
]

#: Five runs per setting, as in Section IV-A.
DEFAULT_SEEDS: tuple[int, ...] = (11, 23, 37, 41, 53)

#: Default worker count for the sweeps: 1 = the sequential in-process
#: path.  ``--jobs 0`` on the CLI means "one worker per core"
#: (:func:`repro.experiments.parallel.resolve_jobs`).
DEFAULT_JOBS: int = 1

#: The paper's utilization grid, 0.1 ... 1.0.
DEFAULT_UTILIZATIONS: tuple[float, ...] = tuple(
    round(0.1 * i, 1) for i in range(1, 11)
)

#: Figure 8 zooms into the low-utilization half ...
LOW_UTILIZATIONS: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5)

#: ... and Figure 9 into the high-utilization half.
HIGH_UTILIZATIONS: tuple[float, ...] = (0.6, 0.7, 0.8, 0.9, 1.0)

#: Section IV-F: time-based activation rates 0.002 ... 0.01.
TIME_ACTIVATION_RATES: tuple[float, ...] = (0.002, 0.004, 0.006, 0.008, 0.01)

#: Section IV-F: count-based activation rates 0.02 ... 0.1.
COUNT_ACTIVATION_RATES: tuple[float, ...] = (0.02, 0.04, 0.06, 0.08, 0.1)

#: Default utilization for single instrumented runs (``repro-experiments
#: run``): high enough that preemption churn and backlog are visible.
DEFAULT_PROBE_UTILIZATION: float = 0.9


@dataclass(frozen=True, slots=True)
class PolicySpec:
    """A named, reproducible policy configuration.

    ``make()`` returns a *fresh* scheduler instance — policies hold
    per-run state, so one instance must never serve two runs.
    """

    name: str
    label: str = ""
    kwargs: tuple[tuple[str, object], ...] = ()

    @staticmethod
    def of(name: str, label: str = "", **kwargs: object) -> "PolicySpec":
        return PolicySpec(
            name=name,
            label=label or name,
            kwargs=tuple(sorted(kwargs.items())),
        )

    def make(self) -> Scheduler:
        return make_policy(self.name, **dict(self.kwargs))

    @property
    def display(self) -> str:
        return self.label or self.name


@dataclass(frozen=True, slots=True)
class ExperimentConfig:
    """Scale knobs shared by every figure entry point."""

    n_transactions: int = 1000
    seeds: tuple[int, ...] = DEFAULT_SEEDS
    utilizations: tuple[float, ...] = DEFAULT_UTILIZATIONS

    def __post_init__(self) -> None:
        if self.n_transactions < 1:
            raise ExperimentError("n_transactions must be >= 1")
        if not self.seeds:
            raise ExperimentError("need at least one seed")
        if not self.utilizations:
            raise ExperimentError("need at least one utilization")

    def scaled(self, n_transactions: int, n_seeds: int | None = None) -> "ExperimentConfig":
        """A smaller copy for tests (fewer transactions / seeds)."""
        seeds = self.seeds[: n_seeds or len(self.seeds)]
        return replace(self, n_transactions=n_transactions, seeds=seeds)


#: The five transaction-level policies of Figures 8-9.
TRANSACTION_LEVEL_POLICIES: tuple[PolicySpec, ...] = (
    PolicySpec.of("fcfs", "FCFS"),
    PolicySpec.of("ls", "LS"),
    PolicySpec.of("edf", "EDF"),
    PolicySpec.of("srpt", "SRPT"),
    PolicySpec.of("asets", "ASETS*"),
)

#: The trio whose normalized ratios make up Figures 10-13.
NORMALIZATION_POLICIES: tuple[PolicySpec, ...] = (
    PolicySpec.of("edf", "EDF"),
    PolicySpec.of("srpt", "SRPT"),
    PolicySpec.of("asets", "ASETS*"),
)

#: Figure 14: workflow-level ASETS* against the Ready baseline.
WORKFLOW_LEVEL_POLICIES: tuple[PolicySpec, ...] = (
    PolicySpec.of("ready", "Ready"),
    PolicySpec.of("asets-star", "ASETS*"),
)

#: Figure 15: the weighted general case.
GENERAL_CASE_POLICIES: tuple[PolicySpec, ...] = (
    PolicySpec.of("edf", "EDF"),
    PolicySpec.of("hdf", "HDF"),
    PolicySpec.of("asets-star", "ASETS*"),
)


def policy_specs_by_label(
    specs: tuple[PolicySpec, ...]
) -> Mapping[str, PolicySpec]:
    return {spec.display: spec for spec in specs}
