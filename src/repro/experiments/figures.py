"""Per-figure experiment entry points (Section IV).

Every public function regenerates one figure of the paper's evaluation
and returns a :class:`~repro.metrics.aggregates.MetricSeries` holding the
same series the paper plots.  All functions accept an
:class:`~repro.experiments.config.ExperimentConfig` so the test-suite can
run them at reduced scale; the defaults are the paper's (1000
transactions, 5 seeds).

===========  ==========================================================
Figure 8     avg tardiness, low utilization, 5 transaction-level policies
Figure 9     avg tardiness, high utilization, same policies
Figure 10    avg tardiness of ASETS* normalized to EDF / SRPT, k_max = 3
Figure 11    same, k_max = 1
Figure 12    same, k_max = 2
Figure 13    same, k_max = 4
(§IV-C)      alpha sweep: crossover shift with length-distribution skew
Figure 14    workflow level: ASETS* vs Ready, avg tardiness
Figure 15    general case: ASETS* vs EDF vs HDF, avg weighted tardiness
Figure 16    balance-aware: max weighted tardiness vs activation rate
Figure 17    balance-aware: avg weighted tardiness vs activation rate
===========  ==========================================================
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Callable, Sequence

from repro.experiments.config import (
    COUNT_ACTIVATION_RATES,
    GENERAL_CASE_POLICIES,
    HIGH_UTILIZATIONS,
    LOW_UTILIZATIONS,
    NORMALIZATION_POLICIES,
    TIME_ACTIVATION_RATES,
    TRANSACTION_LEVEL_POLICIES,
    WORKFLOW_LEVEL_POLICIES,
    ExperimentConfig,
    PolicySpec,
)
from repro.experiments.runner import (
    generate_workloads,
    mean_metric,
    utilization_sweep,
)
from repro.metrics.aggregates import MetricSeries
from repro.workload.spec import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.parallel import CellFailure

__all__ = [
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
    "figure15",
    "figure16",
    "figure17",
    "alpha_sweep",
    "normalized_tardiness",
    "balance_aware_sweep",
]

#: Independent, unweighted workload of Sections IV-C (Table I defaults).
_TRANSACTION_LEVEL_SPEC = WorkloadSpec(zipf_alpha=0.5, k_max=3.0)

#: Figure 14's workflow workload: chains of length <= 5, membership 1.
_WORKFLOW_LEVEL_SPEC = WorkloadSpec(
    with_workflows=True,
    max_workflow_length=5,
    max_workflows_per_txn=1,
)

#: The general case (Figures 15-17): workflows plus uniform [1,10] weights.
_GENERAL_CASE_SPEC = dataclasses.replace(_WORKFLOW_LEVEL_SPEC, weighted=True)

#: Utilization at which the balance-aware trade-off is evaluated.  The
#: paper does not state its operating point for Figures 16-17; starvation
#: (the phenomenon the aging scheme addresses) only materialises under
#: overload, and the reported trade-off reproduces at full utilization.
_BALANCE_UTILIZATION = 1.0


def figure8(
    config: ExperimentConfig = ExperimentConfig(),
    progress: Callable[[str], None] | None = None,
    jobs: int = 1,
    failures: "list[CellFailure] | None" = None,
    cell_timeout: float | None = None,
    resume: str | None = None,
) -> MetricSeries:
    """Average tardiness under low system utilization (Figure 8)."""
    return utilization_sweep(
        _TRANSACTION_LEVEL_SPEC,
        TRANSACTION_LEVEL_POLICIES,
        "average_tardiness",
        config,
        utilizations=LOW_UTILIZATIONS,
        progress=progress,
        jobs=jobs,
        failures=failures,
        cell_timeout=cell_timeout,
        resume=resume,
    )


def figure9(
    config: ExperimentConfig = ExperimentConfig(),
    progress: Callable[[str], None] | None = None,
    jobs: int = 1,
    failures: "list[CellFailure] | None" = None,
    cell_timeout: float | None = None,
    resume: str | None = None,
) -> MetricSeries:
    """Average tardiness under high system utilization (Figure 9)."""
    return utilization_sweep(
        _TRANSACTION_LEVEL_SPEC,
        TRANSACTION_LEVEL_POLICIES,
        "average_tardiness",
        config,
        utilizations=HIGH_UTILIZATIONS,
        progress=progress,
        jobs=jobs,
        failures=failures,
        cell_timeout=cell_timeout,
        resume=resume,
    )


def normalized_tardiness(
    k_max: float,
    config: ExperimentConfig = ExperimentConfig(),
    progress: Callable[[str], None] | None = None,
    jobs: int = 1,
    failures: "list[CellFailure] | None" = None,
    cell_timeout: float | None = None,
    resume: str | None = None,
) -> MetricSeries:
    """ASETS* average tardiness normalized to EDF and to SRPT.

    The common machinery behind Figures 10-13: sweep the full utilization
    grid with EDF, SRPT and ASETS* at the given ``k_max``, then divide the
    ASETS* series by each baseline.  The returned series holds
    ``ASETS*/EDF`` and ``ASETS*/SRPT``; the raw sweep is attached as the
    ``raw`` attribute for crossover inspection.
    """
    spec = _TRANSACTION_LEVEL_SPEC.with_k_max(k_max)
    raw = utilization_sweep(
        spec,
        NORMALIZATION_POLICIES,
        "average_tardiness",
        config,
        progress=progress,
        jobs=jobs,
        failures=failures,
        cell_timeout=cell_timeout,
        resume=resume,
    )
    out = MetricSeries(
        x_label="utilization",
        x=list(raw.x),
        metric=f"average_tardiness normalized (k_max={k_max:g})",
    )
    asets = raw.get("ASETS*")
    for baseline in ("EDF", "SRPT"):
        base = raw.get(baseline)
        out.add(
            f"ASETS*/{baseline}",
            [a / b if b else (1.0 if a == 0 else float("inf")) for a, b in zip(asets, base)],
        )
    out.raw = raw
    return out


def figure10(
    config: ExperimentConfig = ExperimentConfig(),
    progress=None,
    jobs: int = 1,
    failures: "list[CellFailure] | None" = None,
    cell_timeout: float | None = None,
    resume: str | None = None,
) -> MetricSeries:
    """Normalized average tardiness at the default k_max = 3 (Figure 10)."""
    return normalized_tardiness(3.0, config, progress, jobs=jobs, failures=failures, cell_timeout=cell_timeout, resume=resume)


def figure11(
    config: ExperimentConfig = ExperimentConfig(),
    progress=None,
    jobs: int = 1,
    failures: "list[CellFailure] | None" = None,
    cell_timeout: float | None = None,
    resume: str | None = None,
) -> MetricSeries:
    """Normalized average tardiness at k_max = 1 (Figure 11)."""
    return normalized_tardiness(1.0, config, progress, jobs=jobs, failures=failures, cell_timeout=cell_timeout, resume=resume)


def figure12(
    config: ExperimentConfig = ExperimentConfig(),
    progress=None,
    jobs: int = 1,
    failures: "list[CellFailure] | None" = None,
    cell_timeout: float | None = None,
    resume: str | None = None,
) -> MetricSeries:
    """Normalized average tardiness at k_max = 2 (Figure 12)."""
    return normalized_tardiness(2.0, config, progress, jobs=jobs, failures=failures, cell_timeout=cell_timeout, resume=resume)


def figure13(
    config: ExperimentConfig = ExperimentConfig(),
    progress=None,
    jobs: int = 1,
    failures: "list[CellFailure] | None" = None,
    cell_timeout: float | None = None,
    resume: str | None = None,
) -> MetricSeries:
    """Normalized average tardiness at k_max = 4 (Figure 13)."""
    return normalized_tardiness(4.0, config, progress, jobs=jobs, failures=failures, cell_timeout=cell_timeout, resume=resume)


def alpha_sweep(
    alphas: Sequence[float] = (0.2, 0.5, 0.9, 1.2),
    config: ExperimentConfig = ExperimentConfig(),
    progress: Callable[[str], None] | None = None,
    jobs: int = 1,
    failures: "list[CellFailure] | None" = None,
    cell_timeout: float | None = None,
    resume: str | None = None,
) -> dict[float, MetricSeries]:
    """Length-distribution skew study (Section IV-C, plots omitted there).

    For each Zipf :math:`\\alpha`, sweep EDF/SRPT/ASETS* over the full
    utilization grid at :math:`k_{max} = 3`.  The paper's observation:
    the more skewed the lengths, the earlier (lower utilization) the
    EDF/SRPT crossover.  Use ``MetricSeries.crossover("EDF", "SRPT")`` on
    the returned series to read the crossover points.  ``resume`` keeps
    one manifest per alpha (``{path}.alpha-{alpha:g}``): each alpha is a
    distinct grid with its own fingerprint.
    """
    out: dict[float, MetricSeries] = {}
    for alpha in alphas:
        spec = _TRANSACTION_LEVEL_SPEC.with_alpha(alpha)
        out[alpha] = utilization_sweep(
            spec,
            NORMALIZATION_POLICIES,
            "average_tardiness",
            config,
            progress=progress,
            jobs=jobs,
            failures=failures,
            cell_timeout=cell_timeout,
            resume=(
                f"{resume}.alpha-{alpha:g}" if resume is not None else None
            ),
        )
    return out


def figure14(
    config: ExperimentConfig = ExperimentConfig(),
    progress: Callable[[str], None] | None = None,
    jobs: int = 1,
    failures: "list[CellFailure] | None" = None,
    cell_timeout: float | None = None,
    resume: str | None = None,
) -> MetricSeries:
    """Workflow level: ASETS* vs the Ready baseline (Figure 14).

    Unweighted dependent workload, maximum workflow length 5, maximum
    number of workflows per transaction 1, as stated in Section IV-D.
    """
    return utilization_sweep(
        _WORKFLOW_LEVEL_SPEC,
        WORKFLOW_LEVEL_POLICIES,
        "average_tardiness",
        config,
        progress=progress,
        jobs=jobs,
        failures=failures,
        cell_timeout=cell_timeout,
        resume=resume,
    )


def figure15(
    config: ExperimentConfig = ExperimentConfig(),
    progress: Callable[[str], None] | None = None,
    jobs: int = 1,
    failures: "list[CellFailure] | None" = None,
    cell_timeout: float | None = None,
    resume: str | None = None,
) -> MetricSeries:
    """The general case: ASETS* vs EDF vs HDF on weighted tardiness (Figure 15)."""
    return utilization_sweep(
        _GENERAL_CASE_SPEC,
        GENERAL_CASE_POLICIES,
        "average_weighted_tardiness",
        config,
        progress=progress,
        jobs=jobs,
        failures=failures,
        cell_timeout=cell_timeout,
        resume=resume,
    )


def balance_aware_sweep(
    metric: str,
    rates: Sequence[float],
    rate_kind: str = "time",
    config: ExperimentConfig = ExperimentConfig(),
    utilization: float = _BALANCE_UTILIZATION,
    progress: Callable[[str], None] | None = None,
    jobs: int = 1,
    failures: "list[CellFailure] | None" = None,
    cell_timeout: float | None = None,
    resume: str | None = None,
) -> MetricSeries:
    """Balance-aware ASETS* against plain ASETS* over activation rates.

    The shared machinery behind Figures 16-17 (and their count-based
    twins): at a fixed utilization, sweep the activation rate and compare
    ``metric`` of balance-aware ASETS* with the flat ASETS* reference.
    ``resume`` persists completed cells to a
    :class:`~repro.ckpt.sweep.SweepManifest` and skips them on restart
    (forces the grouped path).
    """
    if rate_kind not in ("time", "count"):
        raise ValueError(f"rate_kind must be 'time' or 'count', got {rate_kind!r}")
    spec = dataclasses.replace(
        _GENERAL_CASE_SPEC,
        utilization=utilization,
        n_transactions=config.n_transactions,
    )
    baseline_spec = PolicySpec.of("asets-star", "ASETS*")

    def rate_policy(rate: float) -> PolicySpec:
        kwargs = {"time_rate": rate} if rate_kind == "time" else {"count_rate": rate}
        return PolicySpec.of("balance-aware", "ASETS* (balance-aware)", **kwargs)

    series = MetricSeries(
        x_label=f"{rate_kind}-based activation rate",
        x=list(rates),
        metric=metric,
    )

    if (
        jobs == 1
        and failures is None
        and cell_timeout is None
        and resume is None
    ):
        workloads = generate_workloads(spec, config.seeds)
        baseline = mean_metric(workloads, baseline_spec, metric)
        balanced_values = []
        for rate in rates:
            value = mean_metric(workloads, rate_policy(rate), metric)
            balanced_values.append(value)
            if progress is not None:
                progress(f"rate={rate:<6} balance-aware {metric}={value:.3f}")
        series.add("ASETS*", [baseline] * len(series.x))
        series.add("ASETS* (balance-aware)", balanced_values)
        return series

    # Parallel path: one group per seed, carrying the baseline plus one
    # balanced policy per rate, so every workload is generated once and
    # replayed len(rates) + 1 times — the same work as the sequential
    # path, fanned out over seeds.
    from repro.errors import SweepError
    from repro.experiments.parallel import CellGroup, run_cell_groups
    from repro.metrics.aggregates import mean as _mean

    policy_tuple = (baseline_spec,) + tuple(rate_policy(rate) for rate in rates)
    manifest = None
    preloaded: dict[tuple[int, int, int], float] = {}
    if resume is not None:
        from repro.ckpt.sweep import SweepManifest, grid_fingerprint
        from repro.experiments.parallel import SweepColumn

        manifest = SweepManifest.open(
            resume,
            grid_fingerprint(
                [SweepColumn(x=utilization, spec=spec)],
                policy_tuple,
                metric,
                config.seeds,
                None,
            ),
        )
        preloaded = dict(manifest.completed)
    groups = []
    for seed in config.seeds:
        positions = tuple(
            pos
            for pos in range(len(policy_tuple))
            if (0, seed, pos) not in preloaded
        )
        if not positions:
            continue
        groups.append(
            CellGroup(
                index=0,
                x=utilization,
                seed=seed,
                spec=spec,
                policies=tuple(policy_tuple[pos] for pos in positions),
                metric=metric,
                policy_positions=(
                    positions if len(positions) != len(policy_tuple) else None
                ),
            )
        )
    try:
        results, cell_failures = run_cell_groups(
            groups, jobs, progress, timeout=cell_timeout, manifest=manifest
        )
    finally:
        if manifest is not None:
            manifest.close()
    if preloaded:
        results = {**preloaded, **results}
    if cell_failures:
        if failures is None:
            raise SweepError(cell_failures)
        failures.extend(cell_failures)

    def seed_mean(pos: int) -> float:
        values = [
            results[(0, seed, pos)]
            for seed in config.seeds
            if (0, seed, pos) in results
        ]
        return _mean(values) if values else float("nan")

    series.add("ASETS*", [seed_mean(0)] * len(series.x))
    series.add(
        "ASETS* (balance-aware)",
        [seed_mean(1 + i) for i in range(len(rates))],
    )
    return series


def figure16(
    config: ExperimentConfig = ExperimentConfig(),
    progress: Callable[[str], None] | None = None,
    jobs: int = 1,
    failures: "list[CellFailure] | None" = None,
    cell_timeout: float | None = None,
    resume: str | None = None,
) -> MetricSeries:
    """Worst case: maximum weighted tardiness vs time-based rate (Figure 16)."""
    return balance_aware_sweep(
        "max_weighted_tardiness", TIME_ACTIVATION_RATES, "time", config,
        progress=progress, jobs=jobs, failures=failures,
        cell_timeout=cell_timeout, resume=resume,
    )


def figure17(
    config: ExperimentConfig = ExperimentConfig(),
    progress: Callable[[str], None] | None = None,
    jobs: int = 1,
    failures: "list[CellFailure] | None" = None,
    cell_timeout: float | None = None,
    resume: str | None = None,
) -> MetricSeries:
    """Average case: average weighted tardiness vs time-based rate (Figure 17)."""
    return balance_aware_sweep(
        "average_weighted_tardiness", TIME_ACTIVATION_RATES, "time", config,
        progress=progress, jobs=jobs, failures=failures,
        cell_timeout=cell_timeout, resume=resume,
    )


def figure16_count_based(
    config: ExperimentConfig = ExperimentConfig(),
    progress: Callable[[str], None] | None = None,
    jobs: int = 1,
    failures: "list[CellFailure] | None" = None,
    cell_timeout: float | None = None,
    resume: str | None = None,
) -> MetricSeries:
    """Count-based twin of Figure 16 ("same behavior", Section IV-F)."""
    return balance_aware_sweep(
        "max_weighted_tardiness", COUNT_ACTIVATION_RATES, "count", config,
        progress=progress, jobs=jobs, failures=failures,
        cell_timeout=cell_timeout, resume=resume,
    )


def figure17_count_based(
    config: ExperimentConfig = ExperimentConfig(),
    progress: Callable[[str], None] | None = None,
    jobs: int = 1,
    failures: "list[CellFailure] | None" = None,
    cell_timeout: float | None = None,
    resume: str | None = None,
) -> MetricSeries:
    """Count-based twin of Figure 17."""
    return balance_aware_sweep(
        "average_weighted_tardiness", COUNT_ACTIVATION_RATES, "count", config,
        progress=progress, jobs=jobs, failures=failures,
        cell_timeout=cell_timeout, resume=resume,
    )
