"""Generic seeded sweep machinery.

One experiment setting = one :class:`~repro.workload.spec.WorkloadSpec`
plus one policy.  The runner generates a workload per seed, replays it
(resetting between policies so every policy sees the *same* arrival
trace, as in the authors' simulator), extracts a metric from each run and
averages over seeds.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.experiments.config import ExperimentConfig, PolicySpec
from repro.faults import FaultSpec, plan_faults
from repro.metrics.aggregates import MetricSeries, confidence_interval, mean
from repro.sim.engine import Simulator
from repro.sim.results import SimulationResult
from repro.workload.generator import Workload, generate
from repro.workload.spec import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ckpt.snapshot import Checkpointer
    from repro.experiments.parallel import CellFailure
    from repro.obs.hooks import Instrument
    from repro.obs.jsonl import EventSink
    from repro.obs.profile import PhaseProfiler
    from repro.obs.streaming import StreamingRecorder

__all__ = [
    "run_policy_on",
    "run_policy_streaming",
    "mean_metric",
    "metric_spread",
    "utilization_sweep",
    "generate_workloads",
]


def generate_workloads(spec: WorkloadSpec, seeds: Iterable[int]) -> list[Workload]:
    """One workload per seed, ready for repeated replay."""
    return [generate(spec, seed) for seed in seeds]


def run_policy_on(
    workload: Workload,
    policy_spec: PolicySpec,
    instrument: "Instrument | None" = None,
    faults: FaultSpec | None = None,
    profiler: "PhaseProfiler | None" = None,
    checkpoint_every: int | None = None,
    checkpointer: "Checkpointer | None" = None,
) -> SimulationResult:
    """Replay ``workload`` under a fresh instance of ``policy_spec``.

    The workload is reset first, so call order between policies does not
    matter.  Pass an :class:`~repro.obs.hooks.Instrument` (e.g. a
    :class:`~repro.obs.recorder.Recorder`) to observe the run; attach a
    fresh recorder per run.  ``faults`` injects a deterministic
    :mod:`repro.faults` plan derived from the spec's own seed —
    independent of the workload seed, so the same fault schedule replays
    under every policy.  ``profiler`` attaches a
    :class:`~repro.obs.profile.PhaseProfiler` for per-phase hot-path
    attribution (observation-only; results are byte-identical with or
    without it).  ``checkpoint_every`` + ``checkpointer`` make the run
    crash-resilient (:mod:`repro.ckpt`); checkpointing is likewise
    observation-only.
    """
    workload.reset()
    plan = None
    if faults is not None and not faults.is_null:
        plan = plan_faults(faults, workload.transactions)
    return Simulator(
        workload.transactions,
        policy_spec.make(),
        workflow_set=workload.workflow_set,
        instrument=instrument,
        faults=plan,
        profiler=profiler,
        checkpoint_every=checkpoint_every,
        checkpointer=checkpointer,
    ).run()


def run_policy_streaming(
    workload: Workload,
    policy_spec: PolicySpec,
    quantile_accuracy: float = 0.01,
    window: float | None = None,
    sink: "EventSink | None" = None,
    sample: float = 1.0,
    faults: FaultSpec | None = None,
    checkpoint_every: int | None = None,
    checkpoint_out: "str | None" = None,
    checkpoint_metadata: dict | None = None,
) -> "tuple[SimulationResult, StreamingRecorder]":
    """Replay ``workload`` in constant-memory streaming mode.

    Per-transaction record retention is off (the result answers every
    aggregate from a :class:`~repro.sim.results.StreamSummary`) and a
    :class:`~repro.obs.streaming.StreamingRecorder` rides along for
    tardiness/response quantiles, top-k culprits and — with ``window`` —
    tumbling-window time-series.  Returns ``(result, recorder)``;
    ``recorder.report()`` yields the quantile-bearing
    :class:`~repro.obs.summary.RunReport` and ``recorder.telemetry`` the
    mergeable :class:`~repro.obs.streaming.RunTelemetry`.

    ``checkpoint_every`` + ``checkpoint_out`` checkpoint the run to that
    path (:mod:`repro.ckpt`): the recorder's accumulators and — when
    ``sink`` is a JSONL writer — the log position ride in the same
    snapshot as the engine, so a killed run resumes byte-identically.
    """
    from repro.obs.streaming import StreamingRecorder

    workload.reset()
    plan = None
    if faults is not None and not faults.is_null:
        plan = plan_faults(faults, workload.transactions)
    recorder = StreamingRecorder(
        quantile_accuracy=quantile_accuracy,
        window=window,
        sink=sink,
        sample=sample,
    )
    checkpointer = None
    if checkpoint_out is not None:
        from repro.ckpt import Checkpointer

        checkpointer = Checkpointer(
            checkpoint_out,
            instrument=recorder,
            writer=sink if hasattr(sink, "ckpt_state") else None,
            metadata=checkpoint_metadata,
        )
    result = Simulator(
        workload.transactions,
        policy_spec.make(),
        workflow_set=workload.workflow_set,
        instrument=recorder,
        faults=plan,
        retain_records=False,
        checkpoint_every=checkpoint_every,
        checkpointer=checkpointer,
    ).run()
    return result, recorder


def mean_metric(
    workloads: Sequence[Workload],
    policy_spec: PolicySpec,
    metric: str,
    faults: FaultSpec | None = None,
) -> float:
    """Average one named :class:`SimulationResult` attribute over seeds."""
    return mean(
        getattr(run_policy_on(w, policy_spec, faults=faults), metric)
        for w in workloads
    )


def metric_spread(
    workloads: Sequence[Workload],
    policy_spec: PolicySpec,
    metric: str,
    streaming: bool = False,
) -> tuple[float, float, float]:
    """Mean plus a normal-approximation confidence interval over seeds.

    Returns ``(mean, low, high)``.  The paper plots plain 5-run means;
    the interval quantifies how much seed noise those means carry —
    worth checking before reading anything into a small gap between two
    policies.

    With ``streaming=True`` each run executes in constant-memory mode
    (``retain_records=False`` + :func:`run_policy_streaming`); every
    aggregate metric answers exactly from the stream summary, so the
    returned values are identical to the stored-record path.
    """
    if streaming:
        values = [
            getattr(run_policy_streaming(w, policy_spec)[0], metric)
            for w in workloads
        ]
    else:
        values = [
            getattr(run_policy_on(w, policy_spec), metric) for w in workloads
        ]
    low, high = confidence_interval(values)
    return mean(values), low, high


def utilization_sweep(
    base_spec: WorkloadSpec,
    policies: Sequence[PolicySpec],
    metric: str,
    config: ExperimentConfig,
    utilizations: Sequence[float] | None = None,
    progress: Callable[[str], None] | None = None,
    jobs: int = 1,
    failures: "list[CellFailure] | None" = None,
    fault_spec: FaultSpec | None = None,
    cell_timeout: float | None = None,
    resume: str | None = None,
) -> MetricSeries:
    """The workhorse behind Figures 8-15: metric vs utilization per policy.

    Parameters
    ----------
    base_spec:
        Workload template; its ``utilization`` and ``n_transactions`` are
        overridden by the sweep.
    policies:
        Policies to compare; one series per policy (keyed by display
        label).
    metric:
        Attribute name on :class:`~repro.sim.results.SimulationResult`
        (e.g. ``"average_tardiness"``).
    config:
        Scale (transaction count, seeds, default utilization grid).
    utilizations:
        Overrides ``config.utilizations`` (Figures 8/9 use half grids).
    progress:
        Optional callable receiving one human-readable line per setting.
    jobs:
        Worker processes; ``1`` (the default) runs the sweep inline,
        ``> 1`` fans the (utilization × seed × policy) grid out through
        :mod:`repro.experiments.parallel`.  Results are byte-identical
        either way.
    failures:
        Opt-in cell-failure capture for the parallel harness: pass a
        list to collect :class:`~repro.experiments.parallel.CellFailure`
        entries instead of raising
        :class:`~repro.errors.SweepError`.
    fault_spec:
        Optional :class:`~repro.faults.FaultSpec`; the same seeded fault
        schedule is injected per (utilization, seed) workload so the
        policies compete under identical adversity.
    cell_timeout:
        Wall-clock seconds of the no-progress watchdog; forces the pool
        path (a hung inline cell could never be interrupted).
    resume:
        Path of a :class:`~repro.ckpt.sweep.SweepManifest`: completed
        cells are persisted as the sweep goes and skipped on restart
        (forces the grid path; the merged series stays byte-identical
        to a fresh ``jobs=1`` run).
    """
    xs = list(utilizations if utilizations is not None else config.utilizations)
    if (
        jobs == 1
        and failures is None
        and cell_timeout is None
        and resume is None
    ):
        series = MetricSeries(x_label="utilization", x=xs, metric=metric)
        values: dict[str, list[float]] = {p.display: [] for p in policies}
        for util in xs:
            spec = dataclasses.replace(
                base_spec,
                utilization=util,
                n_transactions=config.n_transactions,
            )
            workloads = generate_workloads(spec, config.seeds)
            for policy in policies:
                value = mean_metric(workloads, policy, metric, faults=fault_spec)
                values[policy.display].append(value)
                if progress is not None:
                    progress(
                        f"U={util:<4} {policy.display:<10} {metric}={value:.3f}"
                    )
        for policy in policies:
            series.add(policy.display, values[policy.display])
        return series

    from repro.experiments.parallel import SweepColumn, grid_sweep

    columns = [
        SweepColumn(
            x=util,
            spec=dataclasses.replace(
                base_spec,
                utilization=util,
                n_transactions=config.n_transactions,
            ),
        )
        for util in xs
    ]
    return grid_sweep(
        columns,
        policies,
        metric,
        config.seeds,
        x_label="utilization",
        jobs=jobs,
        progress=progress,
        failures=failures,
        fault_spec=fault_spec,
        cell_timeout=cell_timeout,
        resume=resume,
    )
