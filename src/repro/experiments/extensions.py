"""Extension experiments beyond the paper's evaluation.

Three studies the paper motivates but does not run:

* :func:`estimation_robustness` — §II-A assumes profile-based length
  estimates; how do the length-aware policies degrade as estimates get
  worse?
* :func:`multiserver_sweep` — the conclusion claims ASETS* applies to
  any real-time system; does its dominance survive parallel servers?
* :func:`tail_analysis` — the paper reports means and maxima; what do
  the tails (p95/p99) and the tardiness *concentration* (Gini) look like
  per policy?  This quantifies the starvation story behind §III-D.

Each function returns a :class:`~repro.metrics.aggregates.MetricSeries`
and is exposed both through the CLI (``python -m repro.experiments
ext-estimation`` etc.) and the benchmark suite.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

from repro.experiments.config import ExperimentConfig, PolicySpec
from repro.experiments.runner import generate_workloads, mean_metric
from repro.metrics.aggregates import MetricSeries, mean
from repro.metrics.distributions import gini, tardiness, tardiness_percentile
from repro.sim.engine import Simulator
from repro.workload.spec import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.parallel import CellFailure

__all__ = [
    "estimation_robustness",
    "multiserver_sweep",
    "tail_analysis",
    "format_tail_table",
    "ESTIMATION_ERRORS",
    "SERVER_COUNTS",
    "TAIL_STATISTICS",
]

#: Row labels for :func:`tail_analysis` output.
TAIL_STATISTICS: tuple[str, ...] = ("mean", "p95", "p99", "max", "gini")

#: Relative length-estimation errors swept by estimation_robustness.
ESTIMATION_ERRORS: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0)

#: Server counts swept by multiserver_sweep.
SERVER_COUNTS: tuple[int, ...] = (1, 2, 4)

_LENGTH_AWARE_POLICIES: tuple[PolicySpec, ...] = (
    PolicySpec.of("edf", "EDF"),
    PolicySpec.of("srpt", "SRPT"),
    PolicySpec.of("asets", "ASETS"),
)


def estimation_robustness(
    config: ExperimentConfig = ExperimentConfig(),
    utilization: float = 0.8,
    errors: Sequence[float] = ESTIMATION_ERRORS,
    progress: Callable[[str], None] | None = None,
    jobs: int = 1,
    failures: "list[CellFailure] | None" = None,
    cell_timeout: float | None = None,
    resume: str | None = None,
) -> MetricSeries:
    """Average tardiness vs. maximum relative length-estimation error.

    EDF ignores lengths and stays flat by construction; SRPT and ASETS
    run on the corrupted estimates.  True lengths, deadlines and offered
    load are identical across error levels (paired comparison).
    """
    specs = [
        WorkloadSpec(
            n_transactions=config.n_transactions,
            utilization=utilization,
            length_estimate_error=error,
        )
        for error in errors
    ]
    if (
        jobs != 1
        or failures is not None
        or cell_timeout is not None
        or resume is not None
    ):
        from repro.experiments.parallel import SweepColumn, grid_sweep

        return grid_sweep(
            [SweepColumn(x=e, spec=s) for e, s in zip(errors, specs)],
            _LENGTH_AWARE_POLICIES,
            "average_tardiness",
            config.seeds,
            x_label="max relative estimation error",
            jobs=jobs,
            progress=progress,
            failures=failures,
            cell_timeout=cell_timeout,
            resume=resume,
        )
    series = MetricSeries(
        x_label="max relative estimation error",
        x=list(errors),
        metric="average_tardiness",
    )
    values: dict[str, list[float]] = {
        p.display: [] for p in _LENGTH_AWARE_POLICIES
    }
    for error, spec in zip(errors, specs):
        workloads = generate_workloads(spec, config.seeds)
        for policy in _LENGTH_AWARE_POLICIES:
            value = mean_metric(workloads, policy, "average_tardiness")
            values[policy.display].append(value)
            if progress is not None:
                progress(f"error={error:<5} {policy.display:<6} {value:.3f}")
    for policy in _LENGTH_AWARE_POLICIES:
        series.add(policy.display, values[policy.display])
    return series


def multiserver_sweep(
    config: ExperimentConfig = ExperimentConfig(),
    per_server_utilization: float = 0.8,
    server_counts: Sequence[int] = SERVER_COUNTS,
    progress: Callable[[str], None] | None = None,
    jobs: int = 1,
    failures: "list[CellFailure] | None" = None,
    cell_timeout: float | None = None,
    resume: str | None = None,
) -> MetricSeries:
    """Average tardiness vs. server count at constant per-server load."""
    if (
        jobs != 1
        or failures is not None
        or cell_timeout is not None
        or resume is not None
    ):
        from repro.experiments.parallel import SweepColumn, grid_sweep

        columns = [
            SweepColumn(
                x=float(m),
                spec=WorkloadSpec(
                    n_transactions=config.n_transactions,
                    utilization=per_server_utilization * m,
                ),
                servers=m,
            )
            for m in server_counts
        ]
        return grid_sweep(
            columns,
            _LENGTH_AWARE_POLICIES,
            "average_tardiness",
            config.seeds,
            x_label="servers",
            jobs=jobs,
            progress=progress,
            failures=failures,
            cell_timeout=cell_timeout,
            resume=resume,
        )
    series = MetricSeries(
        x_label="servers",
        x=[float(m) for m in server_counts],
        metric="average_tardiness",
    )
    values: dict[str, list[float]] = {
        p.display: [] for p in _LENGTH_AWARE_POLICIES
    }
    for m in server_counts:
        spec = WorkloadSpec(
            n_transactions=config.n_transactions,
            utilization=per_server_utilization * m,
        )
        workloads = generate_workloads(spec, config.seeds)
        for policy in _LENGTH_AWARE_POLICIES:
            runs = []
            for w in workloads:
                w.reset()
                runs.append(
                    Simulator(w.transactions, policy.make(), servers=m).run()
                )
            value = mean(r.average_tardiness for r in runs)
            values[policy.display].append(value)
            if progress is not None:
                progress(f"servers={m} {policy.display:<6} {value:.3f}")
    for policy in _LENGTH_AWARE_POLICIES:
        series.add(policy.display, values[policy.display])
    return series


def tail_analysis(
    config: ExperimentConfig = ExperimentConfig(),
    utilization: float = 0.9,
    policies: Sequence[PolicySpec] = (
        PolicySpec.of("edf", "EDF"),
        PolicySpec.of("srpt", "SRPT"),
        PolicySpec.of("asets", "ASETS"),
        PolicySpec.of("ls", "LS"),
    ),
    progress: Callable[[str], None] | None = None,
) -> MetricSeries:
    """Tardiness distribution per policy: mean, p95, p99, max and Gini.

    Returned as a :class:`MetricSeries` whose "x axis" enumerates the
    statistics (one column per policy), which renders naturally as the
    table the benchmark prints.  The Gini coefficient captures how
    *concentrated* tardiness is: SRPT buys its low mean with a much more
    unequal distribution — the starvation §III-D addresses.
    """
    spec = WorkloadSpec(
        n_transactions=config.n_transactions, utilization=utilization
    )
    workloads = generate_workloads(spec, config.seeds)
    stats = TAIL_STATISTICS
    series = MetricSeries(
        x_label="statistic",
        x=list(range(len(stats))),
        metric=f"tardiness distribution at U={utilization}",
    )
    for policy in policies:
        per_stat = {name: [] for name in stats}
        for w in workloads:
            result = Simulator(w.transactions, policy.make()).run()
            values = [tardiness(r) for r in result.records]
            per_stat["mean"].append(result.average_tardiness)
            per_stat["p95"].append(tardiness_percentile(result.records, 95))
            per_stat["p99"].append(tardiness_percentile(result.records, 99))
            per_stat["max"].append(result.max_tardiness)
            per_stat["gini"].append(gini(values))
        series.add(policy.display, [mean(per_stat[name]) for name in stats])
        if progress is not None:
            progress(f"{policy.display}: done")
    return series


def format_tail_table(series: MetricSeries) -> str:
    """Render :func:`tail_analysis` output with named statistic rows."""
    from repro.metrics.report import format_table

    headers = ["statistic"] + list(series.series)
    rows = [
        [stat] + [series.series[name][i] for name in series.series]
        for i, stat in enumerate(TAIL_STATISTICS)
    ]
    return format_table(headers, rows)
