"""Command-line front end for the experiment harness.

Usage::

    python -m repro.experiments fig10
    python -m repro.experiments fig14 --n 500 --seeds 3
    python -m repro.experiments table1
    python -m repro.experiments claims
    repro-experiments all          # every figure, paper scale

Each figure command prints the series the corresponding paper figure
plots, as an aligned text table.

The ``run`` target executes one instrumented run and exposes the
observability layer (:mod:`repro.obs`)::

    python -m repro.experiments run --policy asets --n 2000 --report
    python -m repro.experiments run --events-out run.jsonl --trace-out t.json

The ``analyze`` and ``diff`` targets run the deadline-miss forensics of
:mod:`repro.obs.analyze` over recorded event logs::

    python -m repro.experiments analyze run.jsonl --top 10
    python -m repro.experiments analyze run.jsonl --format json
    python -m repro.experiments diff asets.jsonl asets_star.jsonl

The ``profile`` target attaches the hot-path profiler
(:mod:`repro.obs.profile`) to one run and prints the per-phase/probe
breakdown; ``--profile-out`` dumps the snapshot as JSON (also valid on
``run``) and ``--flame-out`` exports a flamegraph::

    python -m repro.experiments profile --policy asets-star --n 5000
    python -m repro.experiments profile --flame-out sel.speedscope.json
    python -m repro.experiments run --policy edf --profile-out prof.json

The ``chaos`` target reruns the transaction-level comparison under a
deterministic :mod:`repro.faults` plan (``--faults`` tunes it), and any
sweep accepts ``--cell-timeout`` to convert hung workers into reported
cell failures instead of blocking forever::

    python -m repro.experiments chaos --faults abort_prob=0.2,crash_count=2
    python -m repro.experiments fig8 --jobs 4 --cell-timeout 300

Crash resilience (:mod:`repro.ckpt`, docs/robustness.md): ``run`` can
checkpoint itself periodically and resume after a kill; every sweep
target can persist per-cell completions to a manifest and skip them on
restart.  SIGINT/SIGTERM interrupt gracefully (exit code 3; a second
signal hard-kills)::

    python -m repro.experiments run --checkpoint-every 10000 \\
        --checkpoint-out run.ckpt --streaming --events-out run.jsonl
    python -m repro.experiments run --resume run.ckpt
    python -m repro.experiments fig9 --jobs 4 --resume fig9.sweep
"""

from __future__ import annotations

import argparse
import difflib
import sys
from typing import Callable, Sequence

from repro.experiments import extensions, figures, tables
from repro.experiments.config import (
    DEFAULT_JOBS,
    DEFAULT_PROBE_UTILIZATION,
    DEFAULT_SEEDS,
    ExperimentConfig,
    PolicySpec,
)
from repro.metrics.aggregates import MetricSeries
from repro.metrics.report import format_series

__all__ = ["main", "build_parser"]

_FIGURES: dict[str, tuple[Callable[..., MetricSeries], str]] = {
    "fig8": (figures.figure8, "Avg tardiness, low utilization (Figure 8)"),
    "fig9": (figures.figure9, "Avg tardiness, high utilization (Figure 9)"),
    "fig10": (figures.figure10, "Normalized avg tardiness, k_max=3 (Figure 10)"),
    "fig11": (figures.figure11, "Normalized avg tardiness, k_max=1 (Figure 11)"),
    "fig12": (figures.figure12, "Normalized avg tardiness, k_max=2 (Figure 12)"),
    "fig13": (figures.figure13, "Normalized avg tardiness, k_max=4 (Figure 13)"),
    "fig14": (figures.figure14, "Workflow level: ASETS* vs Ready (Figure 14)"),
    "fig15": (figures.figure15, "General case: weighted tardiness (Figure 15)"),
    "fig16": (figures.figure16, "Balance-aware: max weighted tardiness (Figure 16)"),
    "fig17": (figures.figure17, "Balance-aware: avg weighted tardiness (Figure 17)"),
    "fig16c": (
        figures.figure16_count_based,
        "Balance-aware, count-based: max weighted tardiness",
    ),
    "fig17c": (
        figures.figure17_count_based,
        "Balance-aware, count-based: avg weighted tardiness",
    ),
    "ext-estimation": (
        extensions.estimation_robustness,
        "Extension: sensitivity to length-estimation error",
    ),
    "ext-servers": (
        extensions.multiserver_sweep,
        "Extension: multi-server scaling at constant per-server load",
    ),
}

#: Every valid positional target, figures included.
_TARGETS: tuple[str, ...] = tuple(
    sorted(_FIGURES)
    + [
        "alpha",
        "tail",
        "table1",
        "claims",
        "chaos",
        "all",
        "run",
        "profile",
        "analyze",
        "diff",
    ]
)

#: Flamegraph export formats of the ``profile`` target.
_FLAME_FORMATS = ("speedscope", "collapsed")

#: Default fault plan of the ``chaos`` target (overridden by --faults).
_DEFAULT_CHAOS_FAULTS = (
    "abort_prob=0.1,max_retries=2,stall_prob=0.1,stall_max=1.0,crash_count=1"
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of "
        "'Adaptive Scheduling of Web Transactions' (ICDE 2009).",
    )
    # No argparse ``choices``: the target is validated in main() so an
    # unknown name gets a did-you-mean suggestion (still exit code 2).
    parser.add_argument(
        "target",
        metavar="TARGET",
        help="which experiment to run: "
        f"{', '.join(_TARGETS)} ('run' = one instrumented run; "
        "'profile' = one profiled run with a per-phase breakdown; "
        "'analyze'/'diff' = forensics over recorded event logs; "
        "'chaos' = fault-injection sweep)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="LOG.jsonl",
        help="event log(s): one for 'analyze', two for 'diff'",
    )
    parser.add_argument(
        "--n", type=int, default=1000, help="transactions per run (default 1000)"
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=len(DEFAULT_SEEDS),
        help=f"number of seeded runs to average (default {len(DEFAULT_SEEDS)})",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-setting progress lines"
    )
    parser.add_argument(
        "--progress",
        nargs="?",
        const=-1.0,  # sentinel: "flag given without a value"
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock heartbeat to stderr at most every SECONDS "
        "(default 10 when given without a value): sim-time, backlog and "
        "txns/s on 'run'/'chaos', finished groups on the sweeps; off by "
        "default and zero-cost when off",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=DEFAULT_JOBS,
        metavar="N",
        help="worker processes for the sweeps (default "
        f"{DEFAULT_JOBS} = sequential; 0 = one per core); results are "
        "byte-identical at any N",
    )
    parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="no-progress watchdog for the sweeps: if no cell finishes "
        "within SECONDS, pending cells become reported failures instead "
        "of hanging the sweep (forces the worker-pool path)",
    )
    parser.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help="fault-injection spec as 'key=value,...' (e.g. "
        "'seed=7,abort_prob=0.1,crash_count=2'); applies to 'run', "
        "'profile' and 'chaos'",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="also render the series as an ASCII chart",
    )
    parser.add_argument(
        "--log",
        action="store_true",
        help="use a log y-scale for --chart (tardiness spans decades)",
    )
    parser.add_argument(
        "--export",
        metavar="PATH",
        default=None,
        help="write the series to PATH (.csv or .json)",
    )
    group = parser.add_argument_group("run target (single instrumented run)")
    group.add_argument(
        "--policy",
        default="asets",
        help="policy registry name for 'run'/'profile' (default asets)",
    )
    group.add_argument(
        "--scan-select",
        action="store_true",
        help="asets-star only: select by the reference full-list rescan "
        "instead of the incremental heaps (decision-identical; for "
        "debugging the incremental structures and measuring their win)",
    )
    group.add_argument(
        "--utilization",
        type=float,
        default=DEFAULT_PROBE_UTILIZATION,
        help="target utilization for 'run'/'profile' "
        f"(default {DEFAULT_PROBE_UTILIZATION})",
    )
    group.add_argument(
        "--seed",
        type=int,
        default=DEFAULT_SEEDS[0],
        help=f"workload seed for 'run'/'profile' (default {DEFAULT_SEEDS[0]})",
    )
    group.add_argument(
        "--events-out",
        metavar="FILE.jsonl",
        default=None,
        help="write the run's JSONL event log to FILE.jsonl",
    )
    group.add_argument(
        "--events-sample",
        type=float,
        default=1.0,
        metavar="RATE",
        help="keep only RATE (0 < RATE <= 1) of per-transaction events in "
        "--events-out; tardy completions and window snapshots are always "
        "kept and 'analyze' scale-corrects thinned totals (default 1.0 = "
        "everything)",
    )
    group.add_argument(
        "--events-rotate",
        type=int,
        default=None,
        metavar="BYTES",
        help="rotate --events-out into BYTES-sized parts "
        "(FILE-0001.jsonl, ... + FILE.manifest.json); 'analyze' and "
        "read_tolerant() accept the base path transparently",
    )
    group.add_argument(
        "--streaming",
        action="store_true",
        help="constant-memory run: per-transaction retention off, "
        "quantiles/top-k from online sketches (repro.obs.streaming); "
        "events stream straight to --events-out instead of buffering",
    )
    group.add_argument(
        "--window",
        type=float,
        default=None,
        metavar="WIDTH",
        help="with --streaming: emit window.snapshot time-series events "
        "per WIDTH simulated-time window (queue depth, utilization, "
        "throughput, miss rate)",
    )
    group.add_argument(
        "--report",
        action="store_true",
        help="print the full run report (scheduling points, preemptions, "
        "select-latency percentiles)",
    )
    forensics = parser.add_argument_group(
        "forensics (analyze / diff targets, and --trace-out on run)"
    )
    forensics.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="fmt",
        help="report format for 'analyze' and 'diff' (default text)",
    )
    forensics.add_argument(
        "--top",
        type=int,
        default=5,
        help="how many transactions the text reports detail (default 5)",
    )
    forensics.add_argument(
        "--trace-out",
        metavar="FILE.json",
        default=None,
        help="export a Chrome trace-event / Perfetto JSON of the run "
        "(valid on 'run' and 'analyze')",
    )
    profiling = parser.add_argument_group(
        "profiling ('profile' target, and --profile-out on 'run')"
    )
    profiling.add_argument(
        "--profile-out",
        metavar="FILE.json",
        default=None,
        help="write the profile snapshot (phases, probes, depth scaling; "
        "the BENCH schema-3 'profile' section) to FILE.json",
    )
    profiling.add_argument(
        "--flame-out",
        metavar="FILE",
        default=None,
        help="export the select-time flamegraph to FILE "
        "('profile' target only; format from --flame-format)",
    )
    profiling.add_argument(
        "--flame-format",
        default="speedscope",
        metavar="FORMAT",
        help="flamegraph format for --flame-out: "
        f"{', '.join(_FLAME_FORMATS)} (default speedscope)",
    )
    robust = parser.add_argument_group(
        "crash resilience (checkpoint / resume; see docs/robustness.md)"
    )
    robust.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="EVENTS",
        help="'run' only: snapshot engine + telemetry + event-log "
        "position to --checkpoint-out every EVENTS processed events "
        "(atomic replace; observation-only — results stay byte-identical "
        "to an uncheckpointed run)",
    )
    robust.add_argument(
        "--checkpoint-out",
        metavar="FILE.ckpt",
        default=None,
        help="checkpoint file for --checkpoint-every (required together)",
    )
    robust.add_argument(
        "--resume",
        metavar="PATH",
        default=None,
        help="on 'run': resume a killed run from its checkpoint file "
        "(run configuration comes from the checkpoint; the event log is "
        "truncated to the snapshot and continued, finishing "
        "byte-identical to an uninterrupted run).  On the sweep targets: "
        "per-cell completion manifest at PATH — completed cells are "
        "persisted as the sweep goes and skipped on restart",
    )
    return parser


def _policy_spec(args: argparse.Namespace) -> PolicySpec:
    """The run/profile target's policy, honouring ``--scan-select``."""
    if getattr(args, "scan_select", False):
        return PolicySpec.of(args.policy, incremental=False)
    return PolicySpec.of(args.policy)


def _config(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig().scaled(args.n, args.seeds)


def _heartbeat_interval(args: argparse.Namespace) -> float | None:
    """The --progress interval in seconds, or ``None`` when off."""
    if args.progress is None:
        return None
    if args.progress == -1.0:  # bare --progress
        from repro.obs.progress import DEFAULT_INTERVAL

        return DEFAULT_INTERVAL
    return args.progress


def _progress(args: argparse.Namespace) -> Callable[[str], None] | None:
    interval = _heartbeat_interval(args)
    if interval is not None:
        from repro.obs.progress import SweepHeartbeat

        return SweepHeartbeat(interval)
    if args.quiet:
        return None
    return lambda line: print(f"  {line}", file=sys.stderr)


def _report_failures(failures: "list[object]") -> int:
    """Print captured sweep-cell failures to stderr; return the exit code."""
    if not failures:
        return 0
    print(f"\n{len(failures)} sweep cell(s) failed:", file=sys.stderr)
    for f in failures:
        print(
            f"  x={f.x:g} seed={f.seed} policy={f.policy}: {f.error}",  # type: ignore[attr-defined]
            file=sys.stderr,
        )
    print(
        "surviving cells were averaged; columns with no surviving seed "
        "report nan (first traceback follows)",
        file=sys.stderr,
    )
    print(failures[0].traceback, file=sys.stderr)  # type: ignore[attr-defined]
    return 1


def _unknown_name_error(
    parser: argparse.ArgumentParser, kind: str, value: str, valid: Sequence[str]
) -> None:
    """Exit 2 with a did-you-mean hint for a misspelled name."""
    close = difflib.get_close_matches(value, valid, n=3, cutoff=0.5)
    hint = f" — did you mean: {', '.join(close)}?" if close else ""
    parser.error(
        f"unknown {kind} {value!r}{hint} (choose from: {', '.join(valid)})"
    )


def _parse_faults(
    parser: argparse.ArgumentParser, args: argparse.Namespace, default: str | None = None
):
    """Parse --faults (or ``default``) into a FaultSpec, exiting 2 on errors."""
    text = args.faults if args.faults is not None else default
    if text is None:
        return None
    from repro.errors import FaultError
    from repro.faults import parse_fault_spec

    try:
        return parse_fault_spec(text)
    except FaultError as exc:
        parser.error(f"bad --faults spec: {exc}")


def _sweep_kwargs(args: argparse.Namespace, failures: list) -> dict:
    """Shared sweep kwargs: parallel fan-out, watchdog and resume.

    jobs == 1 with no timeout or manifest keeps the sequential path
    (failures=None → fail fast); anything else opts into per-cell
    failure capture so one bad cell cannot kill a long sweep.
    ``--resume`` forces the grid path: its manifest is what survives an
    interrupt.
    """
    if (
        args.jobs == 1
        and args.cell_timeout is None
        and args.resume is None
    ):
        return {}
    kwargs: dict = {"jobs": args.jobs, "failures": failures}
    if args.cell_timeout is not None:
        kwargs["cell_timeout"] = args.cell_timeout
    if args.resume is not None:
        kwargs["resume"] = args.resume
    return kwargs


def _run_figure(name: str, args: argparse.Namespace) -> int:
    fn, title = _FIGURES[name]
    failures: list = []
    series = fn(_config(args), progress=_progress(args), **_sweep_kwargs(args, failures))
    print(format_series(series, title))
    if series.raw is not None:
        print()
        print(format_series(series.raw, "Underlying raw sweep"))
    if args.chart:
        from repro.metrics.charts import render_chart

        print()
        print(render_chart(series, log_scale=args.log))
    if args.export:
        from repro.experiments.export import write_series

        path = write_series(series, args.export)
        print(f"\nseries written to {path}", file=sys.stderr)
    return _report_failures(failures)


def _make_sink(events_out: str, events_rotate: int | None):
    """The --events-out sink: plain or rotating JSONL writer."""
    from repro.obs.jsonl import JsonlWriter, RotatingJsonlWriter

    if events_rotate is not None:
        return RotatingJsonlWriter(events_out, max_bytes=events_rotate)
    return JsonlWriter(events_out)


def _run_metadata(args: argparse.Namespace) -> dict:
    """JSON-safe run configuration stored in the checkpoint header.

    ``run --resume`` rebuilds the run from this — the command line at
    resume time does not have to repeat the original flags.
    """
    return {
        "target": "run",
        "policy": args.policy,
        "scan_select": bool(args.scan_select),
        "n": args.n,
        "seed": args.seed,
        "utilization": args.utilization,
        "streaming": bool(args.streaming),
        "window": args.window,
        "events_out": args.events_out,
        "events_rotate": args.events_rotate,
        "events_sample": args.events_sample,
        "faults": args.faults,
        "checkpoint_every": args.checkpoint_every,
        "checkpoint_out": args.checkpoint_out,
    }


def _export_events(
    recorder, events_out: str, events_sample: float, events_rotate: int | None
) -> tuple[object, int]:
    """Write a buffered run's events, with optional sampling/rotation.

    Returns ``(path, records_written)`` — the streaming path writes
    natively; this mirrors its sampling/rotation pipeline for events
    buffered by a :class:`~repro.obs.recorder.Recorder`.
    """
    if events_sample < 1.0 or events_rotate is not None:
        from repro.obs.jsonl import EventSampler

        sampler = EventSampler(events_sample) if events_sample < 1.0 else None
        with _make_sink(events_out, events_rotate) as sink:
            for record in recorder.events:
                if sampler is not None:
                    if record.get("kind") == "run_start":
                        record = dict(record, sample=sampler.rate)
                    filtered = sampler.filter(record)
                    if filtered is None:
                        continue
                    record = filtered
                sink.write(record)
        return sink.path, sink.records_written
    path = recorder.write_events(events_out)
    return path, len(recorder.events)


def _run_streaming(args: argparse.Namespace, fault_spec=None) -> int:
    """Constant-memory run: sketches + optional windows, retention off."""
    from repro.experiments.runner import run_policy_streaming
    from repro.workload.generator import generate
    from repro.workload.spec import WorkloadSpec

    spec = WorkloadSpec(n_transactions=args.n, utilization=args.utilization)
    workload = generate(spec, seed=args.seed)
    sink = (
        _make_sink(args.events_out, args.events_rotate)
        if args.events_out
        else None
    )
    interval = _heartbeat_interval(args)
    try:
        if interval is None:
            result, recorder = run_policy_streaming(
                workload,
                _policy_spec(args),
                window=args.window,
                sink=sink,
                sample=args.events_sample,
                faults=fault_spec,
                checkpoint_every=args.checkpoint_every,
                checkpoint_out=args.checkpoint_out,
                checkpoint_metadata=(
                    _run_metadata(args) if args.checkpoint_out else None
                ),
            )
        else:
            # Heartbeat rides along via MultiInstrument; it observes only.
            from repro.faults import plan_faults
            from repro.obs.hooks import MultiInstrument
            from repro.obs.progress import Heartbeat
            from repro.obs.streaming import StreamingRecorder
            from repro.sim.engine import Simulator

            workload.reset()
            plan = None
            if fault_spec is not None and not fault_spec.is_null:
                plan = plan_faults(fault_spec, workload.transactions)
            recorder = StreamingRecorder(
                window=args.window, sink=sink, sample=args.events_sample
            )
            checkpointer = None
            if args.checkpoint_out:
                # The checkpointer captures the recorder, not the
                # MultiInstrument: the heartbeat holds wall-clock state
                # and is rebuilt fresh on resume.
                from repro.ckpt import Checkpointer

                checkpointer = Checkpointer(
                    args.checkpoint_out,
                    instrument=recorder,
                    writer=sink if hasattr(sink, "ckpt_state") else None,
                    metadata=_run_metadata(args),
                )
            result = Simulator(
                workload.transactions,
                _policy_spec(args).make(),
                workflow_set=workload.workflow_set,
                instrument=MultiInstrument([recorder, Heartbeat(interval)]),
                faults=plan,
                retain_records=False,
                checkpoint_every=args.checkpoint_every,
                checkpointer=checkpointer,
            ).run()
    finally:
        if sink is not None:
            sink.close()
    report = recorder.report()
    if args.report:
        print(report.render())
    else:
        print(
            f"{report.policy}: n={report.n_transactions} "
            f"avg_tardiness={result.average_tardiness:.3f} "
            f"tardiness_p99={report.tardiness_p99:.3f} "
            f"miss_ratio={report.miss_ratio:.4f} "
            f"scheduling_points={report.scheduling_points}"
        )
    if args.events_out:
        print(
            f"event log ({sink.records_written} records) streamed to "
            f"{args.events_out}",
            file=sys.stderr,
        )
    return 0


def _write_profile(snapshot, path: str) -> str:
    """Write one ProfileSnapshot as indented JSON; returns the path."""
    import json
    import pathlib

    pathlib.Path(path).write_text(
        json.dumps(snapshot.as_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def _run_profile(args: argparse.Namespace, fault_spec=None) -> int:
    """One profiled run: phase/probe report plus JSON/flamegraph exports."""
    from repro.experiments.runner import run_policy_on
    from repro.obs.profile import PhaseProfiler
    from repro.workload.generator import generate
    from repro.workload.spec import WorkloadSpec

    # Warm-up: a small discarded profiled run lets the adaptive
    # interpreter specialize the hot loop first, so the measured run's
    # inter-span gaps reflect steady state, not first-pass bytecode.
    warmup = generate(
        WorkloadSpec(n_transactions=100, utilization=args.utilization), seed=1
    )
    run_policy_on(warmup, _policy_spec(args), profiler=PhaseProfiler())

    spec = WorkloadSpec(n_transactions=args.n, utilization=args.utilization)
    workload = generate(spec, seed=args.seed)
    profiler = PhaseProfiler()
    result = run_policy_on(
        workload, _policy_spec(args), faults=fault_spec, profiler=profiler
    )
    snapshot = profiler.snapshot(args.policy)
    print(snapshot.render())
    print(
        f"\n{args.policy}: n={result.n} "
        f"avg_tardiness={result.average_tardiness:.3f} "
        f"select_total_s={snapshot.select_total_s:.4f}"
    )
    if args.profile_out:
        print(
            "profile snapshot written to "
            f"{_write_profile(snapshot, args.profile_out)}",
            file=sys.stderr,
        )
    if args.flame_out:
        import json
        import pathlib

        if args.flame_format == "speedscope":
            text = json.dumps(snapshot.to_speedscope()) + "\n"
        else:
            text = snapshot.to_collapsed()
        pathlib.Path(args.flame_out).write_text(text, encoding="utf-8")
        print(
            f"flamegraph ({args.flame_format}) written to {args.flame_out}",
            file=sys.stderr,
        )
    return 0


def _run_instrumented(args: argparse.Namespace, fault_spec=None) -> int:
    """One instrumented run: summary line, optional report and JSONL log."""
    from repro.experiments.runner import run_policy_on
    from repro.obs import Recorder
    from repro.workload.generator import generate
    from repro.workload.spec import WorkloadSpec

    if args.streaming:
        return _run_streaming(args, fault_spec)

    spec = WorkloadSpec(n_transactions=args.n, utilization=args.utilization)
    workload = generate(spec, seed=args.seed)
    recorder = Recorder()
    interval = _heartbeat_interval(args)
    instrument = recorder
    if interval is not None:
        from repro.obs.hooks import MultiInstrument
        from repro.obs.progress import Heartbeat

        instrument = MultiInstrument([recorder, Heartbeat(interval)])
    profiler = None
    if args.profile_out:
        from repro.obs.profile import PhaseProfiler

        profiler = PhaseProfiler()
    checkpointer = None
    if args.checkpoint_out:
        # Buffered events live inside the Recorder, which the
        # checkpointer pickles whole — no separate writer state.
        from repro.ckpt import Checkpointer

        checkpointer = Checkpointer(
            args.checkpoint_out,
            instrument=recorder,
            metadata=_run_metadata(args),
        )
    result = run_policy_on(
        workload,
        _policy_spec(args),
        instrument=instrument,
        faults=fault_spec,
        profiler=profiler,
        checkpoint_every=args.checkpoint_every,
        checkpointer=checkpointer,
    )
    report = recorder.report()
    if args.report:
        print(report.render())
    else:
        fault_suffix = ""
        if fault_spec is not None:
            fault_suffix = (
                f" aborted={result.aborted_count} shed={result.shed_count} "
                f"retries={result.total_retries}"
            )
        print(
            f"{report.policy}: n={report.n_transactions} "
            f"avg_tardiness={result.average_tardiness:.3f} "
            f"scheduling_points={report.scheduling_points} "
            f"preemptions={report.preemptions}{fault_suffix}"
        )
    if args.events_out:
        path, written = _export_events(
            recorder, args.events_out, args.events_sample, args.events_rotate
        )
        print(
            f"event log ({written} records) written to {path}",
            file=sys.stderr,
        )
    if args.trace_out:
        from repro.obs.analyze import reconstruct, write_trace

        trace_path = write_trace(reconstruct(recorder.events), args.trace_out)
        print(f"perfetto trace written to {trace_path}", file=sys.stderr)
    if profiler is not None:
        print(
            "profile snapshot written to "
            f"{_write_profile(profiler.snapshot(args.policy), args.profile_out)}",
            file=sys.stderr,
        )
    return 0


def _run_resume(args: argparse.Namespace) -> int:
    """Resume a killed ``run`` from its checkpoint to completion.

    The run configuration (policy, workload, streaming mode, event log)
    comes from the checkpoint's metadata; the event log is truncated
    back to the snapshot and continued, so the finished artifacts are
    byte-identical to an uninterrupted run's.  Checkpointing continues
    at the original cadence (override with --checkpoint-every /
    --checkpoint-out), so a resumed run can itself be killed and
    resumed again.
    """
    from repro.ckpt import Checkpointer, load_checkpoint, restore_writer
    from repro.obs.streaming import StreamingRecorder
    from repro.sim.engine import Simulator

    checkpoint = load_checkpoint(args.resume)
    meta = checkpoint.metadata
    writer = restore_writer(checkpoint.writer_state)
    recorder = checkpoint.restore_instrument(sink=writer)
    every = args.checkpoint_every or meta.get("checkpoint_every")
    checkpointer = None
    if every:
        checkpointer = Checkpointer(
            args.checkpoint_out or args.resume,
            instrument=recorder,
            writer=writer,
            metadata=meta,
        )
    instrument = recorder
    interval = _heartbeat_interval(args)
    if interval is not None and recorder is not None:
        from repro.obs.hooks import MultiInstrument
        from repro.obs.progress import Heartbeat

        instrument = MultiInstrument([recorder, Heartbeat(interval)])
    try:
        result = Simulator.resume_from(
            checkpoint,
            instrument=instrument,
            checkpoint_every=every,
            checkpointer=checkpointer,
        ).run()
    finally:
        if writer is not None:
            writer.close()
    print(
        f"resumed {args.resume} at event {checkpoint.events_processed} "
        f"(t={checkpoint.now:g})",
        file=sys.stderr,
    )
    if isinstance(recorder, StreamingRecorder):
        report = recorder.report()
        if args.report:
            print(report.render())
        else:
            print(
                f"{report.policy}: n={report.n_transactions} "
                f"avg_tardiness={result.average_tardiness:.3f} "
                f"tardiness_p99={report.tardiness_p99:.3f} "
                f"miss_ratio={report.miss_ratio:.4f} "
                f"scheduling_points={report.scheduling_points}"
            )
        if writer is not None:
            print(
                f"event log ({writer.records_written} records) continued "
                f"at {meta.get('events_out')}",
                file=sys.stderr,
            )
    elif recorder is not None:
        report = recorder.report()
        if args.report:
            print(report.render())
        else:
            print(
                f"{report.policy}: n={report.n_transactions} "
                f"avg_tardiness={result.average_tardiness:.3f} "
                f"scheduling_points={report.scheduling_points} "
                f"preemptions={report.preemptions}"
            )
        if meta.get("events_out"):
            path, written = _export_events(
                recorder,
                meta["events_out"],
                float(meta.get("events_sample") or 1.0),
                meta.get("events_rotate"),
            )
            print(
                f"event log ({written} records) written to {path}",
                file=sys.stderr,
            )
    else:
        print(
            f"{checkpoint.policy_name}: n={result.n} "
            f"avg_tardiness={result.average_tardiness:.3f}"
        )
    return 0


def _run_chaos(args: argparse.Namespace, fault_spec) -> int:
    """Fault-injection sweep: the transaction-level comparison under a
    deterministic fault plan (Figure 8/9 conditions plus adversity)."""
    from repro.experiments.config import TRANSACTION_LEVEL_POLICIES
    from repro.experiments.runner import utilization_sweep
    from repro.workload.spec import WorkloadSpec

    failures: list = []
    series = utilization_sweep(
        WorkloadSpec(),
        TRANSACTION_LEVEL_POLICIES,
        "average_tardiness",
        _config(args),
        progress=_progress(args),
        fault_spec=fault_spec,
        **_sweep_kwargs(args, failures),
    )
    print(
        format_series(
            series,
            f"Chaos sweep: avg tardiness under faults ({fault_spec.describe()})",
        )
    )
    if args.export:
        from repro.experiments.export import write_series

        path = write_series(series, args.export)
        print(f"\nseries written to {path}", file=sys.stderr)
    return _report_failures(failures)


def _run_analyze(args: argparse.Namespace) -> int:
    """Forensics report over one recorded event log."""
    from repro.obs.analyze import (
        attribute_all,
        reconstruct_file,
        render_analysis_json,
        render_analysis_text,
        write_trace,
    )

    run = reconstruct_file(args.paths[0])
    blames = attribute_all(run)
    if args.fmt == "json":
        print(render_analysis_json(run, blames))
    else:
        print(render_analysis_text(run, blames, top=args.top))
    if args.trace_out:
        trace_path = write_trace(run, args.trace_out)
        print(f"perfetto trace written to {trace_path}", file=sys.stderr)
    return 0


def _run_diff(args: argparse.Namespace) -> int:
    """Cross-run diff of two event logs of the same workload."""
    from repro.obs.analyze import (
        diff_runs,
        reconstruct_file,
        render_diff_json,
        render_diff_text,
    )

    diff = diff_runs(
        reconstruct_file(args.paths[0]), reconstruct_file(args.paths[1])
    )
    if args.fmt == "json":
        print(render_diff_json(diff))
    else:
        print(render_diff_text(diff, top=args.top))
    return 0


def _install_signal_handlers() -> None:
    """SIGINT/SIGTERM raise KeyboardInterrupt once, then revert to default.

    The first signal interrupts gracefully (sweeps drain their pool and
    persist the manifest; exit code 3); resetting to SIG_DFL means a
    second signal hard-kills a shutdown that is itself stuck.
    """
    import signal

    def _handler(signum: int, frame: object) -> None:
        signal.signal(signum, signal.SIG_DFL)
        raise KeyboardInterrupt

    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(sig, _handler)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _install_signal_handlers()
    from repro.errors import CheckpointError, SweepInterrupted

    try:
        return _dispatch(parser, args)
    except SweepInterrupted:
        # run_cell_groups already reported the cell counts to stderr.
        if getattr(args, "resume", None):
            print(
                "interrupted; completed cells are persisted — rerun the "
                "same command to continue",
                file=sys.stderr,
            )
        else:
            print(
                "interrupted; progress was not persisted (pass --resume "
                "PATH to make sweeps resumable)",
                file=sys.stderr,
            )
        return 3
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 3
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _dispatch(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    if args.target not in _TARGETS:
        _unknown_name_error(parser, "target", args.target, _TARGETS)
    expected_paths = {"analyze": 1, "diff": 2}.get(args.target, 0)
    if len(args.paths) != expected_paths:
        parser.error(
            f"target '{args.target}' takes exactly {expected_paths} "
            f"event-log path(s), got {len(args.paths)}"
        )
    if args.profile_out and args.target not in ("run", "profile"):
        parser.error("--profile-out applies to the 'run' and 'profile' targets")
    if args.flame_out and args.target != "profile":
        parser.error("--flame-out/--flame-format apply to the 'profile' target")
    if args.scan_select and args.policy != "asets-star":
        parser.error(
            "--scan-select applies only to --policy asets-star "
            "(the incremental/scan split exists only there)"
        )
    if args.checkpoint_every is not None or args.checkpoint_out is not None:
        if args.target != "run":
            parser.error(
                "--checkpoint-every/--checkpoint-out apply to the 'run' "
                "target (sweeps persist progress via --resume instead)"
            )
        if args.checkpoint_every is None or args.checkpoint_out is None:
            parser.error(
                "--checkpoint-every and --checkpoint-out must be given "
                "together"
            )
        if args.checkpoint_every < 1:
            parser.error(
                f"--checkpoint-every must be >= 1, got {args.checkpoint_every}"
            )
        if args.profile_out:
            parser.error(
                "checkpointing cannot be combined with --profile-out: "
                "wall-clock phase timings do not survive a resume"
            )
    if args.resume is not None:
        resumable = set(_FIGURES) | {"run", "chaos", "alpha"}
        if args.target not in resumable:
            parser.error(
                "--resume applies to 'run' (checkpoint file) and the "
                "sweep targets (completion manifest): "
                f"{', '.join(sorted(resumable))}"
            )
        if args.target == "run" and args.events_out:
            parser.error(
                "'run --resume' continues the event log recorded in the "
                "checkpoint; --events-out does not apply"
            )
    if args.target == "analyze":
        return _run_analyze(args)
    if args.target == "diff":
        return _run_diff(args)
    if args.target == "profile":
        from repro.policies.registry import available_policies

        if args.policy not in available_policies():
            _unknown_name_error(
                parser, "policy", args.policy, available_policies()
            )
        if args.flame_format not in _FLAME_FORMATS:
            _unknown_name_error(
                parser, "flame format", args.flame_format, _FLAME_FORMATS
            )
        return _run_profile(args, fault_spec=_parse_faults(parser, args))
    if args.target == "run":
        if args.resume is not None:
            return _run_resume(args)
        from repro.policies.registry import available_policies

        if args.policy not in available_policies():
            _unknown_name_error(
                parser, "policy", args.policy, available_policies()
            )
        if not 0.0 < args.events_sample <= 1.0:
            parser.error(
                f"--events-sample must be in (0, 1], got {args.events_sample}"
            )
        if args.events_rotate is not None and args.events_rotate < 1:
            parser.error(
                f"--events-rotate must be >= 1 byte, got {args.events_rotate}"
            )
        if (
            args.events_sample < 1.0 or args.events_rotate is not None
        ) and not args.events_out:
            parser.error(
                "--events-sample/--events-rotate need --events-out"
            )
        if args.window is not None and not args.streaming:
            parser.error("--window needs --streaming")
        if args.streaming and args.trace_out:
            parser.error(
                "--trace-out needs buffered events; drop --streaming, or "
                "run 'analyze --trace-out' over the streamed --events-out log"
            )
        if args.streaming and args.profile_out:
            parser.error(
                "--profile-out needs the buffered engine path; drop "
                "--streaming, or use the 'profile' target"
            )
        return _run_instrumented(args, fault_spec=_parse_faults(parser, args))
    if args.target == "chaos":
        return _run_chaos(
            args, _parse_faults(parser, args, default=_DEFAULT_CHAOS_FAULTS)
        )
    if args.target == "table1":
        print(tables.table1())
        return 0
    if args.target == "claims":
        results = tables.headline_claims(
            _config(args),
            _progress(args),
            jobs=args.jobs,
            cell_timeout=args.cell_timeout,
        )
        print(tables.format_claims(results))
        return 0 if all(r.holds for r in results) else 1
    if args.target == "tail":
        # Record-level statistics: always sequential (no cell grid).
        series = extensions.tail_analysis(_config(args), progress=_progress(args))
        print("Tardiness distribution per policy")
        print(extensions.format_tail_table(series))
        return 0
    if args.target == "alpha":
        failures: list = []
        sweeps = figures.alpha_sweep(
            config=_config(args),
            progress=_progress(args),
            **_sweep_kwargs(args, failures),
        )
        for alpha, series in sweeps.items():
            crossover = series.crossover("EDF", "SRPT")
            print(format_series(series, f"alpha={alpha} (EDF/SRPT crossover: {crossover})"))
            print()
        return _report_failures(failures)
    if args.target == "all":
        code = 0
        for name in sorted(_FIGURES):
            code = max(code, _run_figure(name, args))
            print()
        return code
    return _run_figure(args.target, args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
