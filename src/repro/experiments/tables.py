"""Tabular outputs: Table I and the headline-claims check.

``table1()`` renders the experimental-parameter summary of the paper's
Table I from the live defaults (so documentation cannot drift from code).
``headline_claims()`` runs a reduced version of the whole evaluation and
reports, claim by claim, whether the paper's qualitative findings hold in
this reproduction — the table EXPERIMENTS.md is generated from.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.experiments import figures
from repro.experiments.config import (
    DEFAULT_SEEDS,
    DEFAULT_UTILIZATIONS,
    TIME_ACTIVATION_RATES,
    ExperimentConfig,
)
from repro.metrics.aggregates import mean
from repro.metrics.report import format_table
from repro.workload.spec import WorkloadSpec
from repro.workload.zipf import ZipfSampler

__all__ = ["table1", "headline_claims", "ClaimResult"]


def table1() -> str:
    """Render Table I (summary of experimental parameters)."""
    spec = WorkloadSpec()
    sampler = ZipfSampler(spec.zipf_alpha, spec.length_min, spec.length_max)
    rows = [
        ("l_i", "transaction length",
         f"Zipf(alpha) over [{spec.length_min} - {spec.length_max}]"),
        ("alpha", "skewness of job length distribution", f"{spec.zipf_alpha}"),
        ("k", "slack factor", f"[0.0 - k_max], default k_max = {spec.k_max}"),
        ("a_i", "arrival time",
         "Poisson, rate = SystemUtilization / AvgTransactionLength"
         f" (avg length = {sampler.mean():.3f})"),
        ("SystemUtilization", "offered load",
         f"[{DEFAULT_UTILIZATIONS[0]} - {DEFAULT_UTILIZATIONS[-1]}]"),
        ("Weight", "transaction importance",
         f"[{spec.weight_min} - {spec.weight_max}]"),
        ("N", "transactions per run", f"{spec.n_transactions}"),
        ("runs", "seeds averaged per setting", f"{len(DEFAULT_SEEDS)}"),
    ]
    return format_table(["Parameter", "Meaning", "Value"], rows)


@dataclasses.dataclass(slots=True)
class ClaimResult:
    """Outcome of checking one of the paper's headline claims."""

    claim: str
    paper: str
    measured: str
    holds: bool


def headline_claims(
    config: ExperimentConfig = ExperimentConfig(),
    progress: Callable[[str], None] | None = None,
    jobs: int = 1,
    cell_timeout: float | None = None,
) -> list[ClaimResult]:
    """Check the seven headline claims of DESIGN.md section 4.

    Runs the underlying experiments at the scale of ``config`` and
    compares shapes (who wins, where the crossover falls), not absolute
    numbers.  ``jobs > 1`` fans every underlying sweep out over worker
    processes; a failing cell raises :class:`~repro.errors.SweepError`
    (the claims need every cell, so there is nothing useful to salvage).
    """
    results: list[ClaimResult] = []

    # Claims 1 & 2 come from the full-grid k_max = 3 sweep.
    fig10 = figures.figure10(config, progress, jobs=jobs, cell_timeout=cell_timeout)
    raw = fig10.raw
    assert raw is not None
    crossover = raw.crossover("EDF", "SRPT")
    edf_low = raw.get("EDF")[0] <= raw.get("SRPT")[0]
    srpt_high = raw.get("SRPT")[-1] <= raw.get("EDF")[-1]
    results.append(
        ClaimResult(
            claim="EDF wins at low utilization, SRPT at high; crossover near 0.6",
            paper="crossover at utilization 0.6 (k_max=3)",
            measured=(
                f"EDF<=SRPT at U=0.1: {edf_low}; SRPT<=EDF at U=1.0: "
                f"{srpt_high}; crossover at U={crossover}"
            ),
            holds=bool(edf_low and srpt_high and crossover is not None),
        )
    )
    asets = raw.get("ASETS*")
    dominated = all(
        a <= min(e, s) * 1.02  # 2% tolerance for seed noise
        for a, e, s in zip(asets, raw.get("EDF"), raw.get("SRPT"))
    )
    best_gain = 1.0 - min(
        min(r) for r in zip(fig10.get("ASETS*/EDF"), fig10.get("ASETS*/SRPT"))
    )
    results.append(
        ClaimResult(
            claim="ASETS* <= min(EDF, SRPT) at every utilization",
            paper="up to ~30% reduction near the crossover",
            measured=f"dominates: {dominated}; best gain {best_gain:.0%}",
            holds=dominated,
        )
    )

    # Claim 3: crossover moves right with k_max.
    crossovers = {}
    for k_max, fig in ((1.0, figures.figure11), (4.0, figures.figure13)):
        series = fig(config, progress, jobs=jobs, cell_timeout=cell_timeout)
        assert series.raw is not None
        crossovers[k_max] = series.raw.crossover("EDF", "SRPT")
    shifted = (
        crossovers[1.0] is not None
        and (crossovers[4.0] is None or crossovers[4.0] >= crossovers[1.0])
    )
    results.append(
        ClaimResult(
            claim="EDF/SRPT crossover moves right as k_max grows",
            paper="looser deadlines let EDF cope with higher utilization",
            measured=f"crossover k_max=1: {crossovers[1.0]}, k_max=4: {crossovers[4.0]}",
            holds=shifted,
        )
    )

    # Claim 5 (workflow level): ASETS* beats Ready.
    fig14 = figures.figure14(config, progress, jobs=jobs, cell_timeout=cell_timeout)
    ready = fig14.get("Ready")
    astar = fig14.get("ASETS*")
    gains = [
        1.0 - a / r for a, r in zip(astar, ready) if r > 0
    ]
    wf_holds = bool(gains) and mean(gains) > 0
    results.append(
        ClaimResult(
            claim="workflow-level ASETS* beats Ready",
            paper="28-57% lower average tardiness, ~44% on average",
            measured=(
                f"average gain {mean(gains):.0%} over utilizations with tardiness"
                if gains
                else "no tardiness observed"
            ),
            holds=wf_holds,
        )
    )

    # Claim 6 (general case): ASETS* <= min(EDF, HDF) on weighted tardiness.
    fig15 = figures.figure15(config, progress, jobs=jobs, cell_timeout=cell_timeout)
    dominated_w = all(
        a <= min(e, h) * 1.05
        for a, e, h in zip(
            fig15.get("ASETS*"), fig15.get("EDF"), fig15.get("HDF")
        )
    )
    results.append(
        ClaimResult(
            claim="general-case ASETS* <= min(EDF, HDF) on weighted tardiness",
            paper="outperforms both under all utilizations",
            measured=f"dominates within 5% tolerance: {dominated_w}",
            holds=dominated_w,
        )
    )

    # Claim 7 (balance-aware): worst case improves, average degrades mildly.
    fig16 = figures.figure16(config, progress, jobs=jobs, cell_timeout=cell_timeout)
    fig17 = figures.figure17(config, progress, jobs=jobs, cell_timeout=cell_timeout)
    base_max = fig16.get("ASETS*")[0]
    best_max = min(fig16.get("ASETS* (balance-aware)"))
    base_avg = fig17.get("ASETS*")[0]
    worst_avg = max(fig17.get("ASETS* (balance-aware)"))
    max_gain = 1.0 - best_max / base_max if base_max > 0 else 0.0
    avg_cost = worst_avg / base_avg - 1.0 if base_avg > 0 else 0.0
    results.append(
        ClaimResult(
            claim="balance-aware trades small average-case loss for worst-case gain",
            paper="max weighted tardiness -7..-27%, average +<=5% (at rate 0.01)",
            measured=(
                f"best worst-case gain {max_gain:.0%}, "
                f"largest average-case cost {avg_cost:.0%}"
            ),
            holds=max_gain > 0,
        )
    )
    return results


def format_claims(results: list[ClaimResult]) -> str:
    """Render claim results as a fixed-width table."""
    rows = [
        (r.claim, r.paper, r.measured, "yes" if r.holds else "NO")
        for r in results
    ]
    return format_table(["Claim", "Paper", "Measured", "Holds"], rows)
