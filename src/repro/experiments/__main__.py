"""Allow ``python -m repro.experiments <target>``."""

from repro.experiments.cli import main

raise SystemExit(main())
