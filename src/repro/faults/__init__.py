"""Deterministic fault injection and overload protection.

The paper evaluates ASETS* under clean conditions — every transaction
runs to completion and every server stays up.  Its target domain (web
transactions backing dynamic pages) is exactly where aborts, restarts
and overload are routine, and the firm-deadline RTDBMS literature treats
abort/re-submission as first class.  This package adds that dimension to
the simulator without disturbing the paper-reproduction paths: a run
with no :class:`FaultSpec` is byte-identical to one built before this
package existed.

Three pieces:

* :mod:`~repro.faults.spec` — :class:`FaultSpec`, the frozen, picklable
  description of what to inject (aborts with configurable work loss,
  server crash windows, transient stalls, an admission-control guard)
  plus the CLI's ``key=value,...`` parser;
* :mod:`~repro.faults.plan` — :func:`plan_faults` expands a spec against
  a workload into a deterministic :class:`FaultPlan` using RNG
  substreams seeded only by ``spec.seed``;
* :mod:`~repro.faults.admission` — pluggable shed policies picking the
  lowest-value ready work under overload.

Quickstart::

    from repro.faults import FaultSpec, plan_faults

    spec = FaultSpec(seed=7, abort_prob=0.1, crash_count=2)
    plan = plan_faults(spec, workload.transactions)
    result = Simulator(workload.transactions, policy, faults=plan).run()
    print(result.summary())   # completed / tardy / aborted / shed / retries

or from the command line::

    python -m repro.experiments run --policy asets \\
        --faults "seed=7,abort_prob=0.1,crash_count=2"
    python -m repro.experiments chaos --jobs 2
"""

from repro.faults.admission import (
    ShedByFeasibility,
    ShedByWeight,
    ShedPolicy,
    available_shed_policies,
    make_shed_policy,
)
from repro.faults.plan import CrashWindow, FaultPlan, TxnFaultSchedule, plan_faults
from repro.faults.spec import WORK_LOSS_MODES, FaultSpec, parse_fault_spec

__all__ = [
    "CrashWindow",
    "FaultPlan",
    "FaultSpec",
    "ShedByFeasibility",
    "ShedByWeight",
    "ShedPolicy",
    "TxnFaultSchedule",
    "WORK_LOSS_MODES",
    "available_shed_policies",
    "make_shed_policy",
    "parse_fault_spec",
    "plan_faults",
]
