"""Declarative fault-injection specifications.

A :class:`FaultSpec` describes *what kinds* of faults a run should suffer
— abort probability and work-loss model, server crash windows, transient
processing stalls, and an optional admission-control guard — without
fixing *where* they land.  The concrete schedule is derived by
:func:`repro.faults.plan.plan_faults` from the spec's own ``seed``, using
RNG substreams that are fully independent of the workload seeds: the same
workload can be replayed with different fault draws, and the same fault
draw can be applied to different policies.

Specs are frozen and picklable so parallel sweep workers
(:mod:`repro.experiments.parallel`) can rebuild identical plans
process-side.

Command-line front ends accept the compact ``key=value,...`` syntax of
:func:`parse_fault_spec`::

    --faults "seed=7,abort_prob=0.1,crash_count=2,backlog_limit=40"
"""

from __future__ import annotations

import dataclasses
import math

from repro.errors import FaultError

__all__ = ["FaultSpec", "WORK_LOSS_MODES", "parse_fault_spec"]

#: Accepted work-loss models for an injected abort: ``"restart"`` re-does
#: the whole transaction (firm-deadline RTDBMS tradition), ``"checkpoint"``
#: resumes from the abort point (only the retry delay is lost).
WORK_LOSS_MODES = ("restart", "checkpoint")

#: Admission-control shed policies (see :mod:`repro.faults.admission`).
_SHED_POLICIES = ("weight", "feasibility")


@dataclasses.dataclass(frozen=True, eq=True)
class FaultSpec:
    """What faults to inject, independent of any particular workload.

    Parameters
    ----------
    seed:
        Seed of the fault RNG streams.  Independent of workload seeds.
    abort_prob:
        Per-attempt probability in ``[0, 1]`` that a transaction's attempt
        is aborted partway through.
    work_loss:
        ``"restart"`` (abort discards all served work) or ``"checkpoint"``
        (the attempt resumes where it stopped).
    max_retries:
        Retry budget per transaction; once exhausted the next abort is
        terminal (outcome ``aborted``).
    retry_delay:
        Base re-submission delay after an abort, in simulated time units.
    retry_backoff:
        Exponential factor (>= 1) applied to both the retry delay and the
        re-submission deadline extension: retry ``k`` (0-based) waits
        ``retry_delay * retry_backoff**k``.
    crash_count:
        Number of server crash windows to draw over the workload horizon.
    crash_min_duration / crash_max_duration:
        Uniform bounds of each crash window's length.
    stall_prob:
        Probability in ``[0, 1]`` that a transaction suffers one transient
        processing-time stall.
    stall_max:
        Upper bound of the uniform extra-work draw for a stall.
    backlog_limit:
        Admission-control threshold: when the instantaneous ready backlog
        exceeds this many transactions, the overload guard sheds the
        lowest-value ready work down to the limit.  ``None`` disables the
        guard.
    shed_policy:
        Which work the guard considers lowest-value: ``"weight"``
        (smallest weight first) or ``"feasibility"`` (most-infeasible
        first, i.e. smallest believed slack).
    """

    seed: int = 0
    abort_prob: float = 0.0
    work_loss: str = "restart"
    max_retries: int = 3
    retry_delay: float = 1.0
    retry_backoff: float = 2.0
    crash_count: int = 0
    crash_min_duration: float = 1.0
    crash_max_duration: float = 5.0
    stall_prob: float = 0.0
    stall_max: float = 1.0
    backlog_limit: int | None = None
    shed_policy: str = "weight"

    def __post_init__(self) -> None:
        if not isinstance(self.seed, int):
            raise FaultError(f"seed must be an int, got {self.seed!r}")
        for name in ("abort_prob", "stall_prob"):
            value = getattr(self, name)
            if not (0.0 <= value <= 1.0):
                raise FaultError(f"{name} must be in [0, 1], got {value}")
        if self.work_loss not in WORK_LOSS_MODES:
            raise FaultError(
                f"work_loss must be one of {WORK_LOSS_MODES}, "
                f"got {self.work_loss!r}"
            )
        if self.max_retries < 0:
            raise FaultError(f"max_retries must be >= 0, got {self.max_retries}")
        for name in ("retry_delay", "stall_max"):
            value = getattr(self, name)
            if not math.isfinite(value) or value < 0:
                raise FaultError(
                    f"{name} must be finite and >= 0, got {value}"
                )
        if not math.isfinite(self.retry_backoff) or self.retry_backoff < 1.0:
            raise FaultError(
                f"retry_backoff must be >= 1, got {self.retry_backoff}"
            )
        if self.crash_count < 0:
            raise FaultError(f"crash_count must be >= 0, got {self.crash_count}")
        if self.crash_min_duration <= 0 or not math.isfinite(
            self.crash_min_duration
        ):
            raise FaultError(
                "crash_min_duration must be finite and > 0, "
                f"got {self.crash_min_duration}"
            )
        if self.crash_max_duration < self.crash_min_duration or not math.isfinite(
            self.crash_max_duration
        ):
            raise FaultError(
                "crash_max_duration must be finite and >= crash_min_duration, "
                f"got {self.crash_max_duration}"
            )
        if self.backlog_limit is not None and self.backlog_limit < 1:
            raise FaultError(
                f"backlog_limit must be >= 1 or None, got {self.backlog_limit}"
            )
        if self.shed_policy not in _SHED_POLICIES:
            raise FaultError(
                f"shed_policy must be one of {_SHED_POLICIES}, "
                f"got {self.shed_policy!r}"
            )

    @property
    def is_null(self) -> bool:
        """True iff this spec can never inject anything."""
        return (
            self.abort_prob == 0.0
            and self.stall_prob == 0.0
            and self.crash_count == 0
            and self.backlog_limit is None
        )

    def describe(self) -> str:
        """Compact ``key=value,...`` of the non-default fields.

        The inverse of :func:`parse_fault_spec` up to field order; used
        in CLI titles and reports so a run's adversity is self-describing.
        """
        parts = []
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if value != field.default:
                parts.append(f"{field.name}={value}")
        return ",".join(parts) if parts else "null"


_INT_FIELDS = ("seed", "max_retries", "crash_count", "backlog_limit")
_STR_FIELDS = ("work_loss", "shed_policy")


def parse_fault_spec(text: str) -> FaultSpec:
    """Parse the CLI's compact ``key=value,...`` syntax into a spec.

    Examples
    --------
    >>> parse_fault_spec("abort_prob=0.2,max_retries=1").abort_prob
    0.2
    >>> parse_fault_spec("seed=7,crash_count=2").seed
    7
    """
    field_names = {f.name for f in dataclasses.fields(FaultSpec)}
    kwargs: dict[str, object] = {}
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        key, sep, raw = item.partition("=")
        key = key.strip()
        if not sep:
            raise FaultError(
                f"malformed fault spec item {item!r}: expected key=value"
            )
        if key not in field_names:
            raise FaultError(
                f"unknown fault spec field {key!r}; known fields: "
                + ", ".join(sorted(field_names))
            )
        raw = raw.strip()
        if key in _STR_FIELDS:
            kwargs[key] = raw
        elif key in _INT_FIELDS:
            try:
                kwargs[key] = int(raw)
            except ValueError:
                raise FaultError(
                    f"fault spec field {key!r} expects an integer, got {raw!r}"
                ) from None
        else:
            try:
                kwargs[key] = float(raw)
            except ValueError:
                raise FaultError(
                    f"fault spec field {key!r} expects a number, got {raw!r}"
                ) from None
    return FaultSpec(**kwargs)  # type: ignore[arg-type]
