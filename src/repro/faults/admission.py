"""Admission control: shed lowest-value ready work under overload.

When a :class:`~repro.faults.spec.FaultSpec` sets ``backlog_limit``, the
engine consults a :class:`ShedPolicy` at every scheduling point: if the
instantaneous ready backlog exceeds the limit, the guard picks victims
among the *ready* (never running) transactions until the backlog is back
at the limit.  Shedding is a terminal outcome (``shed``) recorded in
:class:`~repro.sim.results.SimulationResult` — graceful degradation, not
silent loss.

Two notions of "lowest value" ship with the paper reproduction:

* :class:`ShedByWeight` — smallest weight first (drop the least important
  fragment; §II-A weights are the SLA currency);
* :class:`ShedByFeasibility` — smallest believed slack first (drop the
  work least likely to meet its deadline anyway, a firm-deadline
  heuristic in the AED tradition).

Both break ties by transaction id, so victim selection is deterministic.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.transaction import Transaction
from repro.errors import FaultError

__all__ = [
    "ShedByFeasibility",
    "ShedByWeight",
    "ShedPolicy",
    "available_shed_policies",
    "make_shed_policy",
]


class ShedPolicy:
    """Ranks ready transactions by how expendable they are under overload."""

    #: Registry name; shown in ``shed`` events as the reason.
    name = "base"

    def rank(self, txn: Transaction, now: float) -> tuple[float, int]:
        """Sort key: ascending, most expendable first (ties by id)."""
        raise NotImplementedError

    def victims(
        self, ready: Sequence[Transaction], now: float, excess: int
    ) -> list[Transaction]:
        """The ``excess`` most-expendable transactions of ``ready``."""
        if excess <= 0:
            return []
        ranked = sorted(ready, key=lambda txn: self.rank(txn, now))
        return ranked[:excess]


class ShedByWeight(ShedPolicy):
    """Shed the lowest-weight (least important) ready work first."""

    name = "weight"

    def rank(self, txn: Transaction, now: float) -> tuple[float, int]:
        return (txn.weight, txn.txn_id)


class ShedByFeasibility(ShedPolicy):
    """Shed the most-infeasible ready work first (smallest believed slack).

    Uses the scheduler-visible slack (believed remaining time), matching
    the estimate-blind basis every policy ranks by.
    """

    name = "feasibility"

    def rank(self, txn: Transaction, now: float) -> tuple[float, int]:
        return (txn.slack(now), txn.txn_id)


_POLICIES: dict[str, type[ShedPolicy]] = {
    ShedByWeight.name: ShedByWeight,
    ShedByFeasibility.name: ShedByFeasibility,
}


def available_shed_policies() -> list[str]:
    """Sorted names accepted by :func:`make_shed_policy`."""
    return sorted(_POLICIES)


def make_shed_policy(name: str) -> ShedPolicy:
    """Construct a shed policy by registry name.

    Raises
    ------
    FaultError
        If the name is unknown.
    """
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise FaultError(
            f"unknown shed policy {name!r}; available: "
            + ", ".join(available_shed_policies())
        ) from None
    return cls()
