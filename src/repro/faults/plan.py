"""Deterministic fault plans: where each fault of a :class:`FaultSpec` lands.

:func:`plan_faults` expands a spec against one concrete workload into a
:class:`FaultPlan` — per-transaction abort/stall schedules plus global
server crash windows — using dedicated RNG substreams seeded only by
``spec.seed`` (the :func:`repro.workload.generator` substream idiom, so
fault draws are decorrelated from every workload stream).  All draws
happen up front, per transaction in ascending id order: the plan for a
given ``(spec, workload)`` pair is a pure function, identical across
processes, ``--jobs`` values and repeated runs.

Fault *positions* are expressed in served processing time within an
attempt (an abort at ``0.4 * length`` fires once the attempt has been
charged that much work), so the plan is meaningful under any scheduling
policy — a preemption postpones the trigger together with the work.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Iterable, Mapping

from repro.core.transaction import Transaction
from repro.errors import FaultError
from repro.faults.spec import FaultSpec

__all__ = ["CrashWindow", "FaultPlan", "TxnFaultSchedule", "plan_faults"]

_STREAM_ABORTS = 0xFA17_0001
_STREAM_STALLS = 0xFA17_0002
_STREAM_CRASHES = 0xFA17_0003

#: Fault positions are drawn in the central band of an attempt so a
#: trigger never coincides (within float noise) with a dispatch or a
#: completion boundary.
_POSITION_LO = 0.05
_POSITION_HI = 0.95


def _substream(seed: int, offset: int) -> random.Random:
    # Tuple hashing over ints is deterministic (no string randomisation),
    # matching the workload generator's substream construction.
    return random.Random(hash((seed, offset)))


@dataclasses.dataclass(frozen=True)
class TxnFaultSchedule:
    """Per-transaction fault schedule.

    ``abort_points`` are served-time thresholds consumed one per attempt:
    attempt ``k`` (0-based) is aborted once it has served
    ``abort_points[k]`` time units; attempts beyond the tuple run
    fault-free.  ``stall_at`` (or ``None``) is the served-time threshold
    of the single transient stall, which inflates the true remaining work
    by ``stall_extra`` the first time any attempt crosses it.
    """

    txn_id: int
    abort_points: tuple[float, ...] = ()
    stall_at: float | None = None
    stall_extra: float = 0.0

    @property
    def is_empty(self) -> bool:
        return not self.abort_points and self.stall_at is None


@dataclasses.dataclass(frozen=True)
class CrashWindow:
    """One server-down interval ``[start, start + duration)``."""

    start: float
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A spec expanded against one workload: the concrete fault schedule.

    ``schedules`` only holds transactions with at least one planned fault;
    :meth:`schedule_for` returns ``None`` for the rest.  ``crash_windows``
    are sorted by start time and may overlap (overlaps stack: two
    concurrent windows take two servers down).
    """

    spec: FaultSpec
    schedules: Mapping[int, TxnFaultSchedule]
    crash_windows: tuple[CrashWindow, ...] = ()

    def schedule_for(self, txn_id: int) -> TxnFaultSchedule | None:
        return self.schedules.get(txn_id)

    @property
    def n_planned_aborts(self) -> int:
        """Total abort triggers planned (not all necessarily fire)."""
        return sum(len(s.abort_points) for s in self.schedules.values())


def plan_faults(
    spec: FaultSpec,
    transactions: Iterable[Transaction],
    servers: int = 1,
) -> FaultPlan:
    """Expand ``spec`` into the concrete :class:`FaultPlan` for a workload.

    Deterministic in ``(spec, transaction set, servers)``: transactions
    are visited in ascending id order and every stream's draws are fully
    consumed regardless of what downstream consumers use.
    """
    if servers < 1:
        raise FaultError(f"servers must be >= 1, got {servers}")
    txns = sorted(transactions, key=lambda t: t.txn_id)
    if not txns:
        raise FaultError("cannot plan faults for an empty workload")

    rng_aborts = _substream(spec.seed, _STREAM_ABORTS)
    rng_stalls = _substream(spec.seed, _STREAM_STALLS)
    schedules: dict[int, TxnFaultSchedule] = {}
    for txn in txns:
        # Abort attempt k iff the k-th Bernoulli draw succeeds; at most
        # max_retries + 1 attempts can ever be aborted (the last one
        # terminally), so the draw count is bounded per transaction.
        points: list[float] = []
        while (
            len(points) <= spec.max_retries
            and rng_aborts.random() < spec.abort_prob
        ):
            fraction = rng_aborts.uniform(_POSITION_LO, _POSITION_HI)
            points.append(fraction * txn.length)
        stall_at: float | None = None
        stall_extra = 0.0
        if rng_stalls.random() < spec.stall_prob:
            stall_at = rng_stalls.uniform(_POSITION_LO, _POSITION_HI) * txn.length
            stall_extra = rng_stalls.uniform(0.0, spec.stall_max)
        if points or stall_at is not None:
            schedules[txn.txn_id] = TxnFaultSchedule(
                txn_id=txn.txn_id,
                abort_points=tuple(points),
                stall_at=stall_at,
                stall_extra=stall_extra,
            )

    windows: list[CrashWindow] = []
    if spec.crash_count:
        rng_crashes = _substream(spec.seed, _STREAM_CRASHES)
        # Spread windows over the busy horizon: last arrival plus the
        # serial drain time of the total work across the server pool.
        horizon = max(t.arrival for t in txns) + sum(
            t.length for t in txns
        ) / servers
        for _ in range(spec.crash_count):
            start = rng_crashes.uniform(0.0, horizon)
            duration = rng_crashes.uniform(
                spec.crash_min_duration, spec.crash_max_duration
            )
            windows.append(CrashWindow(start=start, duration=duration))
        windows.sort(key=lambda w: (w.start, w.duration))

    return FaultPlan(
        spec=spec, schedules=schedules, crash_windows=tuple(windows)
    )
