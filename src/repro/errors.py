"""Exception hierarchy for the ASETS* reproduction package.

All exceptions raised on purpose by this package derive from
:class:`ReproError`, so callers can catch package-level failures with a
single ``except`` clause while letting genuine bugs (``TypeError``,
``KeyError`` from broken invariants, ...) propagate.
"""

from __future__ import annotations

__all__ = [
    "ExperimentError",
    "FaultError",
    "InvalidTransactionError",
    "InvalidWorkflowError",
    "ObservabilityError",
    "QueryError",
    "ReproError",
    "SchedulingError",
    "SimulationError",
    "SweepError",
    "WorkloadError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class InvalidTransactionError(ReproError):
    """A transaction was constructed or mutated with inconsistent fields."""


class InvalidWorkflowError(ReproError):
    """A workflow definition is malformed (cycles, unknown members, ...)."""


class SchedulingError(ReproError):
    """A scheduling policy violated its contract with the simulator."""


class SimulationError(ReproError):
    """The discrete-event engine reached an impossible state."""


class WorkloadError(ReproError):
    """A workload specification or generated workload is invalid."""


class QueryError(ReproError):
    """A web-database query is malformed or references unknown data."""


class ExperimentError(ReproError):
    """An experiment configuration is inconsistent."""


class FaultError(ReproError):
    """A fault-injection spec or plan is invalid."""


class ObservabilityError(ReproError):
    """An instrumentation artefact (metric, event log, report) is invalid."""


class SweepError(ExperimentError):
    """One or more cells of an experiment sweep failed.

    Raised by the sweep harness when the caller did not opt into failure
    capture (``failures=``): every surviving cell has still been computed
    — the exception aggregates each failed cell's ``(x, seed, policy)``
    coordinates and traceback (:attr:`failures`) rather than losing the
    whole sweep to the first error.
    """

    def __init__(self, failures):  # type: ignore[no-untyped-def]
        self.failures = list(failures)
        coords = ", ".join(
            f"(x={f.x:g}, seed={f.seed}, policy={f.policy!r})"
            for f in self.failures[:5]
        )
        more = (
            f" and {len(self.failures) - 5} more"
            if len(self.failures) > 5
            else ""
        )
        super().__init__(
            f"{len(self.failures)} sweep cell(s) failed: {coords}{more}; "
            "first traceback:\n" + self.failures[0].traceback
        )
