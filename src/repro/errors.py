"""Exception hierarchy for the ASETS* reproduction package.

All exceptions raised on purpose by this package derive from
:class:`ReproError`, so callers can catch package-level failures with a
single ``except`` clause while letting genuine bugs (``TypeError``,
``KeyError`` from broken invariants, ...) propagate.
"""

from __future__ import annotations

__all__ = [
    "CheckpointError",
    "ExperimentError",
    "FaultError",
    "InvalidTransactionError",
    "InvalidWorkflowError",
    "ObservabilityError",
    "QueryError",
    "ReproError",
    "SchedulingError",
    "SimulationError",
    "SweepError",
    "SweepInterrupted",
    "WorkloadError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class InvalidTransactionError(ReproError):
    """A transaction was constructed or mutated with inconsistent fields."""


class InvalidWorkflowError(ReproError):
    """A workflow definition is malformed (cycles, unknown members, ...)."""


class SchedulingError(ReproError):
    """A scheduling policy violated its contract with the simulator."""


class SimulationError(ReproError):
    """The discrete-event engine reached an impossible state."""


class WorkloadError(ReproError):
    """A workload specification or generated workload is invalid."""


class QueryError(ReproError):
    """A web-database query is malformed or references unknown data."""


class ExperimentError(ReproError):
    """An experiment configuration is inconsistent."""


class FaultError(ReproError):
    """A fault-injection spec or plan is invalid."""


class ObservabilityError(ReproError):
    """An instrumentation artefact (metric, event log, report) is invalid."""


class CheckpointError(ReproError):
    """A run checkpoint is missing, malformed, or incompatible.

    Raised by :mod:`repro.ckpt` when a snapshot file fails its magic,
    version or schema validation, when a resume target does not match
    the checkpoint (wrong grid fingerprint, truncation underflow), or
    when checkpointing is requested in a configuration that cannot
    honour the byte-identity contract (e.g. together with a profiler).
    """


class SweepError(ExperimentError):
    """One or more cells of an experiment sweep failed.

    Raised by the sweep harness when the caller did not opt into failure
    capture (``failures=``): every surviving cell has still been computed
    — the exception aggregates each failed cell's ``(x, seed, policy)``
    coordinates and traceback (:attr:`failures`) rather than losing the
    whole sweep to the first error.
    """

    def __init__(self, failures):  # type: ignore[no-untyped-def]
        self.failures = list(failures)
        coords = ", ".join(
            f"(x={f.x:g}, seed={f.seed}, policy={f.policy!r})"
            for f in self.failures[:5]
        )
        more = (
            f" and {len(self.failures) - 5} more"
            if len(self.failures) > 5
            else ""
        )
        super().__init__(
            f"{len(self.failures)} sweep cell(s) failed: {coords}{more}; "
            "first traceback:\n" + self.failures[0].traceback
        )


class SweepInterrupted(ExperimentError):
    """A sweep was interrupted (SIGINT/SIGTERM) before finishing.

    Raised by the sweep harness after a graceful shutdown: workers have
    been terminated, completed cells are preserved (and, when a resume
    manifest is attached, persisted), and the counts describe how far
    the grid got.  Callers that want to survive an interrupt catch this
    instead of ``KeyboardInterrupt``; the CLI maps it to exit code 3.
    """

    def __init__(self, completed: int, failed: int, pending: int) -> None:
        self.completed = completed
        self.failed = failed
        self.pending = pending
        super().__init__(
            f"sweep interrupted: {completed} cell(s) completed, "
            f"{failed} failed, {pending} pending"
        )
