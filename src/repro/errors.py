"""Exception hierarchy for the ASETS* reproduction package.

All exceptions raised on purpose by this package derive from
:class:`ReproError`, so callers can catch package-level failures with a
single ``except`` clause while letting genuine bugs (``TypeError``,
``KeyError`` from broken invariants, ...) propagate.
"""

from __future__ import annotations

__all__ = [
    "ExperimentError",
    "InvalidTransactionError",
    "InvalidWorkflowError",
    "ObservabilityError",
    "QueryError",
    "ReproError",
    "SchedulingError",
    "SimulationError",
    "WorkloadError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class InvalidTransactionError(ReproError):
    """A transaction was constructed or mutated with inconsistent fields."""


class InvalidWorkflowError(ReproError):
    """A workflow definition is malformed (cycles, unknown members, ...)."""


class SchedulingError(ReproError):
    """A scheduling policy violated its contract with the simulator."""


class SimulationError(ReproError):
    """The discrete-event engine reached an impossible state."""


class WorkloadError(ReproError):
    """A workload specification or generated workload is invalid."""


class QueryError(ReproError):
    """A web-database query is malformed or references unknown data."""


class ExperimentError(ReproError):
    """An experiment configuration is inconsistent."""


class ObservabilityError(ReproError):
    """An instrumentation artefact (metric, event log, report) is invalid."""
