"""CI perf-regression gate over ``BENCH_engine.json`` snapshots.

``benchmarks/bench_engine_performance.py`` emits a machine-readable
perf snapshot: per-policy engine throughput plus, for each streaming
tier, peak RSS and wall time of the plain and constant-memory paths.
This module compares a freshly measured snapshot against the committed
baseline and exits nonzero on a regression::

    python -m repro.perfgate BENCH_current.json --baseline BENCH_engine.json

Three checks, with tolerances read from the **baseline's** ``gate``
section (so loosening the gate is a reviewed change to the committed
file, not a CI-side knob):

* per-policy throughput must not drop below
  ``baseline * (1 - throughput_drop_tolerance)``;
* per-tier streaming peak RSS must not exceed
  ``baseline * (1 + rss_growth_tolerance)``;
* per-tier streaming wall-clock overhead (vs the instrument-off plain
  path measured in the *same* snapshot) must stay under
  ``streaming_overhead_max``;
* (schema 3) per-policy, per-phase mean cost per occurrence from the
  ``profile`` section must not exceed
  ``baseline * (1 + phase_cost_growth_tolerance)`` — so a regression in
  one phase (say the ASETS* scan) fails the gate even if the end-to-end
  throughput check absorbs it;
* (schema 4) per-policy, per-phase cost-vs-depth scaling exponents from
  ``profile.depth_scaling`` must not exceed
  ``baseline_exponent + depth_exponent_tolerance`` — an *absolute*
  ceiling, because exponents are complexity classes, not wall times: an
  incremental select drifting from ~depth^0.1 toward ~depth^1 is a
  data-structure regression even while small depths keep it fast;
* (schema 4) per-tier plain and streaming wall time must not exceed
  ``baseline * (1 + tier_wall_growth_tolerance)`` — the
  million-transaction tier is where a complexity slip actually hurts.

Only keys present in **both** snapshots are compared, so a baseline
regenerated with more tiers than CI measures does not fail the gate,
a schema-2 baseline without ``profile`` sections simply skips the
per-phase checks, and a schema-2/3 baseline (or a phase whose depth fit
had too few occupied buckets, ``exponent: null``) skips the exponent
checks.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from dataclasses import dataclass, field
from typing import IO

__all__ = ["DEFAULT_GATE", "GateReport", "compare", "load", "main"]

#: Fallback tolerances for baselines predating the ``gate`` section.
#: Phase costs are per-occurrence means of shared-CI wall time, so the
#: tolerance is deliberately loose — the check exists to catch order-of-
#: magnitude slips (a quadratic scan), not percent-level noise.
DEFAULT_GATE = {
    "throughput_drop_tolerance": 0.6,
    "rss_growth_tolerance": 0.5,
    "streaming_overhead_max": 0.5,
    "phase_cost_growth_tolerance": 3.0,
    "depth_exponent_tolerance": 0.5,
    "tier_wall_growth_tolerance": 1.0,
}


@dataclass(slots=True)
class GateReport:
    """Outcome of one gate evaluation: passed checks and regressions."""

    checks: list[str] = field(default_factory=list)
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [f"perf gate: {len(self.checks)} check(s)"]
        lines += [f"  ok   {line}" for line in self.checks]
        lines += [f"  FAIL {line}" for line in self.failures]
        lines.append(
            "perf gate: PASS" if self.ok else
            f"perf gate: FAIL ({len(self.failures)} regression(s))"
        )
        return "\n".join(lines)


def load(path: str | pathlib.Path) -> dict:
    """Read one snapshot; raises ``ValueError`` on a non-object payload."""
    data = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, dict):
        raise ValueError(f"{path}: perf snapshot must be a JSON object")
    return data


def _gate_value(gate: dict, key: str) -> float:
    return float(gate.get(key, DEFAULT_GATE[key]))


def compare(current: dict, baseline: dict) -> GateReport:
    """Evaluate ``current`` against ``baseline`` and its tolerances."""
    report = GateReport()
    gate = baseline.get("gate") or DEFAULT_GATE

    drop_tol = _gate_value(gate, "throughput_drop_tolerance")
    base_policies = baseline.get("policies") or {}
    cur_policies = current.get("policies") or {}
    for name in sorted(set(base_policies) & set(cur_policies)):
        base_tp = float(base_policies[name].get("throughput_txns_per_s", 0.0))
        cur_tp = float(cur_policies[name].get("throughput_txns_per_s", 0.0))
        if base_tp <= 0:
            continue
        floor = base_tp * (1.0 - drop_tol)
        line = (
            f"throughput[{name}]: {cur_tp:.0f}/s "
            f"(baseline {base_tp:.0f}/s, floor {floor:.0f}/s)"
        )
        (report.checks if cur_tp >= floor else report.failures).append(line)

    phase_tol = _gate_value(gate, "phase_cost_growth_tolerance")
    for name in sorted(set(base_policies) & set(cur_policies)):
        base_phases = (base_policies[name].get("profile") or {}).get(
            "phases"
        ) or {}
        cur_phases = (cur_policies[name].get("profile") or {}).get(
            "phases"
        ) or {}
        for phase in sorted(set(base_phases) & set(cur_phases)):
            base_mean = float(base_phases[phase].get("mean_s", 0.0))
            cur_mean = float(cur_phases[phase].get("mean_s", 0.0))
            if base_mean <= 0:
                continue
            ceiling = base_mean * (1.0 + phase_tol)
            line = (
                f"phase[{name}/{phase}]: {cur_mean * 1e6:.2f}us/occurrence "
                f"(baseline {base_mean * 1e6:.2f}us, "
                f"ceiling {ceiling * 1e6:.2f}us)"
            )
            (
                report.checks if cur_mean <= ceiling else report.failures
            ).append(line)

    exp_tol = _gate_value(gate, "depth_exponent_tolerance")
    for name in sorted(set(base_policies) & set(cur_policies)):
        base_scaling = (base_policies[name].get("profile") or {}).get(
            "depth_scaling"
        ) or {}
        cur_scaling = (cur_policies[name].get("profile") or {}).get(
            "depth_scaling"
        ) or {}
        for phase in sorted(set(base_scaling) & set(cur_scaling)):
            base_exp = base_scaling[phase].get("exponent")
            cur_exp = cur_scaling[phase].get("exponent")
            if base_exp is None or cur_exp is None:
                continue  # too few occupied depth buckets for a fit
            ceiling = float(base_exp) + exp_tol
            line = (
                f"depth-exponent[{name}/{phase}]: ~depth^{cur_exp:.2f} "
                f"(baseline ~depth^{float(base_exp):.2f}, "
                f"ceiling ~depth^{ceiling:.2f})"
            )
            (
                report.checks if float(cur_exp) <= ceiling
                else report.failures
            ).append(line)

    rss_tol = _gate_value(gate, "rss_growth_tolerance")
    wall_tol = _gate_value(gate, "tier_wall_growth_tolerance")
    overhead_max = _gate_value(gate, "streaming_overhead_max")
    base_tiers = baseline.get("tiers") or {}
    cur_tiers = current.get("tiers") or {}
    for tier in sorted(set(base_tiers) & set(cur_tiers), key=int):
        base_rss = float(
            base_tiers[tier].get("streaming", {}).get("peak_rss_mb", 0.0)
        )
        cur_rss = float(
            cur_tiers[tier].get("streaming", {}).get("peak_rss_mb", 0.0)
        )
        if base_rss > 0:
            ceiling = base_rss * (1.0 + rss_tol)
            line = (
                f"streaming rss[n={tier}]: {cur_rss:.1f} MB "
                f"(baseline {base_rss:.1f} MB, ceiling {ceiling:.1f} MB)"
            )
            (
                report.checks if cur_rss <= ceiling else report.failures
            ).append(line)
        for mode in ("plain", "streaming"):
            base_wall = float(
                base_tiers[tier].get(mode, {}).get("wall_seconds", 0.0)
            )
            cur_wall = float(
                cur_tiers[tier].get(mode, {}).get("wall_seconds", 0.0)
            )
            if base_wall <= 0 or cur_wall <= 0:
                continue
            ceiling = base_wall * (1.0 + wall_tol)
            line = (
                f"wall[n={tier}/{mode}]: {cur_wall:.2f}s "
                f"(baseline {base_wall:.2f}s, ceiling {ceiling:.2f}s)"
            )
            (
                report.checks if cur_wall <= ceiling else report.failures
            ).append(line)
        overhead = float(
            cur_tiers[tier].get("streaming_overhead_ratio", 0.0)
        )
        line = (
            f"streaming overhead[n={tier}]: {overhead:+.1%} "
            f"(max {overhead_max:+.1%})"
        )
        (
            report.checks if overhead <= overhead_max else report.failures
        ).append(line)

    return report


def main(argv: list[str] | None = None, out: IO[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.perfgate",
        description="Gate a perf snapshot against the committed baseline.",
    )
    parser.add_argument("current", help="freshly measured BENCH_*.json")
    parser.add_argument(
        "--baseline",
        default="BENCH_engine.json",
        help="committed baseline snapshot (default: %(default)s)",
    )
    args = parser.parse_args(argv)
    stream = out if out is not None else sys.stdout

    report = compare(load(args.current), load(args.baseline))
    print(report.render(), file=stream)
    if not report.checks and not report.failures:
        print(
            "perf gate: WARNING — no overlapping policies or tiers "
            "between current and baseline; nothing was gated",
            file=stream,
        )
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
