"""Core model of the ASETS* reproduction.

This subpackage defines the vocabulary of the paper's Section II:

* :class:`~repro.core.transaction.Transaction` — a web transaction with an
  arrival time, a soft deadline, a (remaining) processing time, a weight and
  a dependency list (Definition 1).
* :class:`~repro.core.workflow.Workflow` — a set of interdependent
  transactions rooted at a transaction that no other transaction depends on,
  together with its *head* and *representative* transactions
  (Definitions 8 and 9).
* :class:`~repro.core.workflow_set.WorkflowSet` — the network of workflows
  over a transaction pool, with the bookkeeping the scheduler needs.
* :mod:`~repro.core.slack` — slack and lateness helpers (Definition 2).
* :mod:`~repro.core.priorities` — the priority key functions used by the
  baseline policies (Section II-C).
"""

from repro.core.transaction import Transaction, TransactionState
from repro.core.workflow import Workflow, RepresentativeView
from repro.core.workflow_set import WorkflowSet
from repro.core.slack import slack, is_past_deadline, latest_start_time

__all__ = [
    "Transaction",
    "TransactionState",
    "Workflow",
    "RepresentativeView",
    "WorkflowSet",
    "slack",
    "is_past_deadline",
    "latest_start_time",
]
