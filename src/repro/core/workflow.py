"""Workflows of interdependent transactions (Section II-A).

A *workflow* is defined for every transaction that appears in no dependency
list (a *root*): it contains the root plus, recursively, every transaction
the root depends on.  The paper's Figure 1 shows chains, but because a
transaction may belong to several workflows, the dependency closure of a
root is in general a DAG; this module handles the general case.

Two derived transactions drive the workflow-level ASETS* policy:

* the **head transaction** (Definition 8) — the ready member that would
  actually execute if the workflow were selected, and
* the **representative transaction** (Definition 9) — a virtual transaction
  carrying the earliest deadline, the shortest remaining processing time and
  the largest weight among the workflow's pending members.

Both are recomputed lazily: the owning
:class:`~repro.core.workflow_set.WorkflowSet` invalidates a workflow when
one of its members arrives or completes.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.transaction import Transaction, TransactionState
from repro.errors import InvalidWorkflowError

__all__ = ["Workflow", "RepresentativeView"]

# Hoisted state constants: enum attribute lookups are measurable in
# _refresh, which runs at every invalidation of every touched workflow.
_CREATED = TransactionState.CREATED
_COMPLETED = TransactionState.COMPLETED
_ABORTED = TransactionState.ABORTED
_SHED = TransactionState.SHED
_WAITING = TransactionState.WAITING
_READY = TransactionState.READY
_RUNNING = TransactionState.RUNNING
_INF = float("inf")


class RepresentativeView:
    """Snapshot of a workflow's representative transaction (Definition 9).

    Exposes the same ``deadline`` / ``remaining`` / ``weight`` /
    ``scheduling_remaining`` attributes as a real transaction, so the slack
    helpers and the ASETS* decision rule can treat it uniformly.  Like
    :class:`~repro.core.transaction.Transaction`, the view keeps the
    engine's ground truth (``remaining``) apart from the scheduler's
    belief (``scheduling_remaining``, aggregated from the members' length
    estimates): the estimate-error discussion of §II-A only makes sense if
    policies rank by the believed value, never the oracle one.
    """

    __slots__ = ("deadline", "remaining", "weight", "scheduling_remaining")

    def __init__(
        self,
        deadline: float,
        remaining: float,
        weight: float,
        scheduling_remaining: float | None = None,
    ) -> None:
        self.deadline = deadline
        self.remaining = remaining
        self.weight = weight
        # Exact estimates (the default) make belief and truth coincide.
        self.scheduling_remaining = (
            remaining if scheduling_remaining is None else scheduling_remaining
        )

    def slack(self, at: float) -> float:
        """Believed slack of the representative, :math:`d_{rep} - (t + r_{rep})`."""
        return self.deadline - (at + self.scheduling_remaining)

    def is_past_deadline(self, at: float) -> bool:
        """EDF-List membership test (Definition 6), on the believed time."""
        return at + self.scheduling_remaining > self.deadline

    def __repr__(self) -> str:
        return (
            f"RepresentativeView(d={self.deadline:g}, r={self.remaining:g}, "
            f"r_sched={self.scheduling_remaining:g}, w={self.weight:g})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RepresentativeView):
            return NotImplemented
        return (
            self.deadline == other.deadline
            and self.remaining == other.remaining
            and self.weight == other.weight
            and self.scheduling_remaining == other.scheduling_remaining
        )

    def __hash__(self) -> int:
        return hash(
            (self.deadline, self.remaining, self.weight, self.scheduling_remaining)
        )


class Workflow:
    """The dependency closure of one root transaction.

    Parameters
    ----------
    wf_id:
        Unique workflow identifier.
    root_id:
        Id of the root transaction (the one no other transaction depends
        on within this workflow's closure).
    members:
        Mapping of transaction id to :class:`Transaction` covering the
        closure.  Every dependency of every member must itself be a member;
        this is validated at construction time.
    """

    __slots__ = (
        "wf_id",
        "root_id",
        "_members",
        "_order",
        "_member_seq",
        "_dirty",
        "_rep",
        "has_pending",
        "rep_deadline",
        "rep_scheduling_remaining",
        "rep_weight",
        "rep_true_remaining",
        "head_txn",
    )

    def __init__(
        self, wf_id: int, root_id: int, members: Mapping[int, Transaction]
    ) -> None:
        if root_id not in members:
            raise InvalidWorkflowError(
                f"workflow {wf_id}: root {root_id} not among members"
            )
        for txn in members.values():
            missing = [dep for dep in txn.depends_on if dep not in members]
            if missing:
                raise InvalidWorkflowError(
                    f"workflow {wf_id}: member {txn.txn_id} depends on "
                    f"{missing} which are outside the workflow"
                )
        self.wf_id = wf_id
        self.root_id = root_id
        self._members = dict(members)
        self._order = self._topological_order()
        # Members as objects in topological order: the refresh loop runs
        # at every invalidation of every touched workflow, and the
        # id -> Transaction dict lookups are measurable there.
        self._member_seq = tuple(self._members[tid] for tid in self._order)
        self._dirty = True
        self._rep: RepresentativeView | None = None
        # Plain-slot aggregate mirror of the representative view, valid
        # after refresh() while has_pending is True.  The incremental
        # ASETS* hot path reads these directly — no snapshot allocation
        # per touched workflow per scheduling point.  rep_true_remaining
        # is the engine-truth minimum, swept lazily at view build (see
        # representative()); policies must keep ranking by
        # rep_scheduling_remaining (the believed value, RL008).
        self.has_pending = False
        self.rep_deadline = _INF
        self.rep_scheduling_remaining = _INF
        self.rep_weight = -_INF
        self.rep_true_remaining = _INF
        self.head_txn: Transaction | None = None

    def _topological_order(self) -> tuple[int, ...]:
        """Return member ids in a dependency-respecting order.

        Kahn's algorithm with a deterministic (smallest-id-first) tie
        break; raises :class:`InvalidWorkflowError` on cycles.
        """
        indegree = {tid: 0 for tid in self._members}
        dependents: dict[int, list[int]] = {tid: [] for tid in self._members}
        for txn in self._members.values():
            for dep in txn.depends_on:
                indegree[txn.txn_id] += 1
                dependents[dep].append(txn.txn_id)
        frontier = sorted(tid for tid, deg in indegree.items() if deg == 0)
        order: list[int] = []
        while frontier:
            tid = frontier.pop(0)
            order.append(tid)
            for succ in dependents[tid]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    # Insert keeping the frontier sorted; workflows are
                    # small (paper: length <= 10) so linear insertion is fine.
                    lo = 0
                    while lo < len(frontier) and frontier[lo] < succ:
                        lo += 1
                    frontier.insert(lo, succ)
        if len(order) != len(self._members):
            raise InvalidWorkflowError(
                f"workflow {self.wf_id} contains a dependency cycle"
            )
        return tuple(order)

    # ------------------------------------------------------------------
    # Membership and bookkeeping.
    # ------------------------------------------------------------------
    @property
    def member_ids(self) -> tuple[int, ...]:
        """Member ids in topological order (leaves first, root last)."""
        return self._order

    def members(self) -> Iterable[Transaction]:
        """Iterate members in topological order."""
        return (self._members[tid] for tid in self._order)

    def __contains__(self, txn_id: int) -> bool:
        return txn_id in self._members

    def __len__(self) -> int:
        return len(self._members)

    def invalidate(self) -> None:
        """Mark cached head/representative stale (member state changed).

        The full re-sweep is only *required* for changes that can remove
        a member from the pending set or worsen its contribution —
        completion, abort, shed, retry.  The monotone changes (a member
        arriving, a believed time shrinking) have O(1) targeted updates
        below; :meth:`~repro.core.workflow_set.WorkflowSet.notify_changed`
        routes by event kind.
        """
        self._dirty = True

    def note_arrival(self, txn: Transaction) -> None:
        """O(1) aggregate update for a member entering the pending set.

        A new pending member can only *improve* the min/max aggregates,
        never remove a contribution, so merging its fields is exactly
        what the full sweep would recompute.  No-op (sweep pending) when
        the workflow is already dirty.
        """
        if self._dirty:
            return
        self._rep = None
        deadline = txn.deadline
        believed = txn.scheduling_remaining
        state = txn.state
        if not self.has_pending:
            self.has_pending = True
            self.rep_deadline = deadline
            self.rep_scheduling_remaining = believed
            self.rep_weight = txn.weight
            self.head_txn = (
                txn if state is _READY or state is _RUNNING else None
            )
            return
        if deadline < self.rep_deadline:
            self.rep_deadline = deadline
        if believed < self.rep_scheduling_remaining:
            self.rep_scheduling_remaining = believed
        if txn.weight > self.rep_weight:
            self.rep_weight = txn.weight
        if state is _READY or state is _RUNNING:
            head = self.head_txn
            if head is None or (deadline, believed, txn.txn_id) < (
                head.deadline,
                head.scheduling_remaining,
                head.txn_id,
            ):
                self.head_txn = txn

    def note_shrunk(self, txn: Transaction) -> None:
        """O(1) aggregate update for a member whose believed time shrank.

        Charging a running member only ever *lowers* its believed
        remaining time (and its true remaining), so the believed min can
        be merged in place and the head choice can only swing toward the
        charged member.  Deadline and weight are untouched by a charge.
        No-op (sweep pending) when the workflow is already dirty.
        """
        if self._dirty:
            return
        if not self.has_pending:
            # A charged member is pending by definition; a clean
            # no-pending snapshot means the caller raced a lifecycle
            # change — fall back to the sweep.
            self._dirty = True
            return
        self._rep = None
        believed = txn.scheduling_remaining
        if believed < self.rep_scheduling_remaining:
            self.rep_scheduling_remaining = believed
        state = txn.state
        if state is _READY or state is _RUNNING:
            head = self.head_txn
            if head is None or (txn.deadline, believed, txn.txn_id) < (
                head.deadline,
                head.scheduling_remaining,
                head.txn_id,
            ):
                self.head_txn = txn

    def note_truth_changed(self) -> None:
        """Drop the cached representative view (true remaining moved).

        A stall inflates the engine-truth remaining time without touching
        any believed value, deadline, weight or state: the slot
        aggregates stay exact, only the lazily built snapshot (which
        carries ``remaining``) must be rebuilt.
        """
        self._rep = None

    def pending_members(self) -> list[Transaction]:
        """Members that have been submitted but not finished.

        The scheduler only knows about transactions that have arrived
        (Section II-A: characteristics become available on submission), so
        members still in ``CREATED`` state are invisible.  Terminal
        failure states (``ABORTED`` / ``SHED``, fault injection only) are
        excluded like ``COMPLETED`` — a dead member must not pin the
        workflow's representative or block its head forever.
        """
        return [
            txn
            for txn in self.members()
            if txn.state
            not in (
                TransactionState.CREATED,
                TransactionState.COMPLETED,
                TransactionState.ABORTED,
                TransactionState.SHED,
            )
        ]

    @property
    def is_completed(self) -> bool:
        """True once every member has completed."""
        return all(txn.is_completed for txn in self._members.values())

    # ------------------------------------------------------------------
    # Head and representative transactions.
    # ------------------------------------------------------------------
    def head(self) -> Transaction | None:
        """Return the head transaction (Definition 8), or ``None``.

        The head is the pending member that is ready for execution (all
        dependencies completed).  Chains have at most one; in the general
        DAG case we pick the ready member with the earliest deadline
        (ties: shortest remaining time, then smallest id) — the member the
        transaction-level policies would favour anyway.

        Returns ``None`` when no submitted member is ready, i.e. the
        workflow cannot run right now (either everything completed or the
        runnable member has not arrived yet).
        """
        if self._dirty:
            self._refresh()
        return self.head_txn

    def representative(self) -> RepresentativeView | None:
        """Return the representative transaction (Definition 9), or ``None``.

        Aggregates over the *pending* (submitted, not completed) members:
        minimum deadline, minimum remaining processing time, maximum
        weight.  ``None`` when no member is pending.

        The snapshot object is built lazily from the plain-slot
        aggregates and cached until the next invalidation, so callers
        that only need the raw numbers (the incremental ASETS* heaps)
        can read the ``rep_*`` slots without paying for an allocation.
        """
        if self._dirty:
            self._refresh()
        if not self.has_pending:
            return None
        rep = self._rep
        if rep is None:
            # The engine-truth minimum is swept here, not in _refresh:
            # no policy may rank by it (RL008), so the believed-value
            # hot path never pays for it — only view consumers
            # (reference scan, introspection, analysis) do, and the
            # result is cached until the next change notification.
            r_min = _INF
            for txn in self._member_seq:
                state = txn.state
                if (
                    state is _READY
                    or state is _RUNNING
                    or state is _WAITING
                ):
                    if txn.remaining < r_min:
                        r_min = txn.remaining
            self.rep_true_remaining = r_min
            rep = self._rep = RepresentativeView(
                deadline=self.rep_deadline,
                remaining=r_min,
                weight=self.rep_weight,
                scheduling_remaining=self.rep_scheduling_remaining,
            )
        return rep

    def peek(self) -> tuple[RepresentativeView | None, Transaction | None]:
        """Representative and head in one call (one cache check).

        Fusing the two accessors guarantees the pair is read from the
        *same* refresh — a sort or decision can never pair one refresh's
        representative with another's head.
        """
        if self._dirty:
            self._refresh()
        if not self.has_pending:
            return None, None
        return self.representative(), self.head_txn

    def refresh(self) -> None:
        """Recompute the ``rep_*`` / ``head_txn`` slots if invalidated.

        The allocation-free companion to :meth:`peek` for hot paths that
        read the slot aggregates directly.
        """
        if self._dirty:
            self._refresh()

    def _refresh(self) -> None:
        # One fused pass over the members replaces the previous four
        # min/max generator sweeps plus two list builds — this runs at
        # every invalidation of every touched workflow, squarely on the
        # engine's hot path.  Aggregates and head pick are identical to
        # the multi-pass version (same member order, same tie-breaks).
        d_min = b_min = _INF
        w_max = -_INF
        pending = False
        head: Transaction | None = None
        head_key: tuple[float, float, int] | None = None
        for txn in self._member_seq:
            state = txn.state
            # Three-way dispatch, runnable states first: READY/RUNNING
            # members are both aggregate contributors and head
            # candidates, WAITING members contribute aggregates only,
            # everything else (CREATED and the terminal states) is
            # invisible to the scheduler.  The engine-truth remaining
            # minimum is *not* swept here — see representative().
            if state is _READY or state is _RUNNING:
                deadline = txn.deadline
                believed = txn.scheduling_remaining
                key = (deadline, believed, txn.txn_id)
                if head_key is None or key < head_key:
                    head, head_key = txn, key
            elif state is _WAITING:
                deadline = txn.deadline
                believed = txn.scheduling_remaining
            else:
                continue
            pending = True
            if deadline < d_min:
                d_min = deadline
            if believed < b_min:
                b_min = believed
            if txn.weight > w_max:
                w_max = txn.weight
        self._dirty = False
        self._rep = None
        if not pending:
            self.has_pending = False
            self.head_txn = None
            return
        self.has_pending = True
        self.rep_deadline = d_min
        self.rep_scheduling_remaining = b_min
        self.rep_weight = w_max
        self.head_txn = head

    def __repr__(self) -> str:
        return (
            f"Workflow(id={self.wf_id}, root={self.root_id}, "
            f"members={list(self._order)})"
        )
