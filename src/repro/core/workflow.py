"""Workflows of interdependent transactions (Section II-A).

A *workflow* is defined for every transaction that appears in no dependency
list (a *root*): it contains the root plus, recursively, every transaction
the root depends on.  The paper's Figure 1 shows chains, but because a
transaction may belong to several workflows, the dependency closure of a
root is in general a DAG; this module handles the general case.

Two derived transactions drive the workflow-level ASETS* policy:

* the **head transaction** (Definition 8) — the ready member that would
  actually execute if the workflow were selected, and
* the **representative transaction** (Definition 9) — a virtual transaction
  carrying the earliest deadline, the shortest remaining processing time and
  the largest weight among the workflow's pending members.

Both are recomputed lazily: the owning
:class:`~repro.core.workflow_set.WorkflowSet` invalidates a workflow when
one of its members arrives or completes.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.transaction import Transaction, TransactionState
from repro.errors import InvalidWorkflowError

__all__ = ["Workflow", "RepresentativeView"]


class RepresentativeView:
    """Snapshot of a workflow's representative transaction (Definition 9).

    Exposes the same ``deadline`` / ``remaining`` / ``weight`` /
    ``scheduling_remaining`` attributes as a real transaction, so the slack
    helpers and the ASETS* decision rule can treat it uniformly.  Like
    :class:`~repro.core.transaction.Transaction`, the view keeps the
    engine's ground truth (``remaining``) apart from the scheduler's
    belief (``scheduling_remaining``, aggregated from the members' length
    estimates): the estimate-error discussion of §II-A only makes sense if
    policies rank by the believed value, never the oracle one.
    """

    __slots__ = ("deadline", "remaining", "weight", "scheduling_remaining")

    def __init__(
        self,
        deadline: float,
        remaining: float,
        weight: float,
        scheduling_remaining: float | None = None,
    ) -> None:
        self.deadline = deadline
        self.remaining = remaining
        self.weight = weight
        # Exact estimates (the default) make belief and truth coincide.
        self.scheduling_remaining = (
            remaining if scheduling_remaining is None else scheduling_remaining
        )

    def slack(self, at: float) -> float:
        """Believed slack of the representative, :math:`d_{rep} - (t + r_{rep})`."""
        return self.deadline - (at + self.scheduling_remaining)

    def is_past_deadline(self, at: float) -> bool:
        """EDF-List membership test (Definition 6), on the believed time."""
        return at + self.scheduling_remaining > self.deadline

    def __repr__(self) -> str:
        return (
            f"RepresentativeView(d={self.deadline:g}, r={self.remaining:g}, "
            f"r_sched={self.scheduling_remaining:g}, w={self.weight:g})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RepresentativeView):
            return NotImplemented
        return (
            self.deadline == other.deadline
            and self.remaining == other.remaining
            and self.weight == other.weight
            and self.scheduling_remaining == other.scheduling_remaining
        )

    def __hash__(self) -> int:
        return hash(
            (self.deadline, self.remaining, self.weight, self.scheduling_remaining)
        )


class Workflow:
    """The dependency closure of one root transaction.

    Parameters
    ----------
    wf_id:
        Unique workflow identifier.
    root_id:
        Id of the root transaction (the one no other transaction depends
        on within this workflow's closure).
    members:
        Mapping of transaction id to :class:`Transaction` covering the
        closure.  Every dependency of every member must itself be a member;
        this is validated at construction time.
    """

    __slots__ = ("wf_id", "root_id", "_members", "_order", "_dirty", "_head", "_rep")

    def __init__(
        self, wf_id: int, root_id: int, members: Mapping[int, Transaction]
    ) -> None:
        if root_id not in members:
            raise InvalidWorkflowError(
                f"workflow {wf_id}: root {root_id} not among members"
            )
        for txn in members.values():
            missing = [dep for dep in txn.depends_on if dep not in members]
            if missing:
                raise InvalidWorkflowError(
                    f"workflow {wf_id}: member {txn.txn_id} depends on "
                    f"{missing} which are outside the workflow"
                )
        self.wf_id = wf_id
        self.root_id = root_id
        self._members = dict(members)
        self._order = self._topological_order()
        self._dirty = True
        self._head: Transaction | None = None
        self._rep: RepresentativeView | None = None

    def _topological_order(self) -> tuple[int, ...]:
        """Return member ids in a dependency-respecting order.

        Kahn's algorithm with a deterministic (smallest-id-first) tie
        break; raises :class:`InvalidWorkflowError` on cycles.
        """
        indegree = {tid: 0 for tid in self._members}
        dependents: dict[int, list[int]] = {tid: [] for tid in self._members}
        for txn in self._members.values():
            for dep in txn.depends_on:
                indegree[txn.txn_id] += 1
                dependents[dep].append(txn.txn_id)
        frontier = sorted(tid for tid, deg in indegree.items() if deg == 0)
        order: list[int] = []
        while frontier:
            tid = frontier.pop(0)
            order.append(tid)
            for succ in dependents[tid]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    # Insert keeping the frontier sorted; workflows are
                    # small (paper: length <= 10) so linear insertion is fine.
                    lo = 0
                    while lo < len(frontier) and frontier[lo] < succ:
                        lo += 1
                    frontier.insert(lo, succ)
        if len(order) != len(self._members):
            raise InvalidWorkflowError(
                f"workflow {self.wf_id} contains a dependency cycle"
            )
        return tuple(order)

    # ------------------------------------------------------------------
    # Membership and bookkeeping.
    # ------------------------------------------------------------------
    @property
    def member_ids(self) -> tuple[int, ...]:
        """Member ids in topological order (leaves first, root last)."""
        return self._order

    def members(self) -> Iterable[Transaction]:
        """Iterate members in topological order."""
        return (self._members[tid] for tid in self._order)

    def __contains__(self, txn_id: int) -> bool:
        return txn_id in self._members

    def __len__(self) -> int:
        return len(self._members)

    def invalidate(self) -> None:
        """Mark cached head/representative stale (member state changed)."""
        self._dirty = True

    def pending_members(self) -> list[Transaction]:
        """Members that have been submitted but not finished.

        The scheduler only knows about transactions that have arrived
        (Section II-A: characteristics become available on submission), so
        members still in ``CREATED`` state are invisible.  Terminal
        failure states (``ABORTED`` / ``SHED``, fault injection only) are
        excluded like ``COMPLETED`` — a dead member must not pin the
        workflow's representative or block its head forever.
        """
        return [
            txn
            for txn in self.members()
            if txn.state
            not in (
                TransactionState.CREATED,
                TransactionState.COMPLETED,
                TransactionState.ABORTED,
                TransactionState.SHED,
            )
        ]

    @property
    def is_completed(self) -> bool:
        """True once every member has completed."""
        return all(txn.is_completed for txn in self._members.values())

    # ------------------------------------------------------------------
    # Head and representative transactions.
    # ------------------------------------------------------------------
    def head(self) -> Transaction | None:
        """Return the head transaction (Definition 8), or ``None``.

        The head is the pending member that is ready for execution (all
        dependencies completed).  Chains have at most one; in the general
        DAG case we pick the ready member with the earliest deadline
        (ties: shortest remaining time, then smallest id) — the member the
        transaction-level policies would favour anyway.

        Returns ``None`` when no submitted member is ready, i.e. the
        workflow cannot run right now (either everything completed or the
        runnable member has not arrived yet).
        """
        self._refresh()
        return self._head

    def representative(self) -> RepresentativeView | None:
        """Return the representative transaction (Definition 9), or ``None``.

        Aggregates over the *pending* (submitted, not completed) members:
        minimum deadline, minimum remaining processing time, maximum
        weight.  ``None`` when no member is pending.
        """
        self._refresh()
        return self._rep

    def _refresh(self) -> None:
        if not self._dirty:
            return
        pending = self.pending_members()
        if not pending:
            self._head = None
            self._rep = None
            self._dirty = False
            return
        self._rep = RepresentativeView(
            deadline=min(txn.deadline for txn in pending),
            remaining=min(txn.remaining for txn in pending),
            weight=max(txn.weight for txn in pending),
            scheduling_remaining=min(
                txn.scheduling_remaining for txn in pending
            ),
        )
        ready = [
            txn
            for txn in pending
            if txn.state in (TransactionState.READY, TransactionState.RUNNING)
        ]
        if ready:
            self._head = min(
                ready, key=lambda txn: (txn.deadline, txn.scheduling_remaining, txn.txn_id)
            )
        else:
            self._head = None
        self._dirty = False

    def __repr__(self) -> str:
        return (
            f"Workflow(id={self.wf_id}, root={self.root_id}, "
            f"members={list(self._order)})"
        )
