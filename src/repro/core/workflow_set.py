"""The network of workflows over a transaction pool.

Section II-A defines one workflow per *root* transaction — a transaction
that appears in no dependency list.  :class:`WorkflowSet` derives those
roots from a transaction pool, builds the dependency closure of each, and
keeps the reverse index (transaction id → workflows containing it) that the
simulator uses to invalidate cached head/representative values when a
member arrives or completes.

Independent transactions that nothing depends on become singleton
workflows, so *every* transaction belongs to at least one workflow and the
workflow-level policies see the whole pool.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.core.transaction import Transaction
from repro.core.workflow import Workflow
from repro.errors import InvalidWorkflowError

__all__ = ["WorkflowSet"]


class WorkflowSet:
    """Builds and indexes the workflows of a transaction pool.

    Parameters
    ----------
    transactions:
        The full transaction pool.  Every id referenced in any dependency
        list must be present.

    Examples
    --------
    >>> t1 = Transaction(1, arrival=0, length=2, deadline=9)
    >>> t2 = Transaction(2, arrival=0, length=1, deadline=5, depends_on=[1])
    >>> ws = WorkflowSet([t1, t2])
    >>> [wf.root_id for wf in ws]
    [2]
    >>> sorted(wf.wf_id for wf in ws.workflows_of(1))
    [0]
    """

    def __init__(self, transactions: Sequence[Transaction]) -> None:
        self._txns = {txn.txn_id: txn for txn in transactions}
        if len(self._txns) != len(transactions):
            raise InvalidWorkflowError("duplicate transaction ids in pool")
        for txn in transactions:
            for dep in txn.depends_on:
                if dep not in self._txns:
                    raise InvalidWorkflowError(
                        f"transaction {txn.txn_id} depends on unknown id {dep}"
                    )
        self._workflows = self._build()
        self._by_member: dict[int, list[Workflow]] = {
            tid: [] for tid in self._txns
        }
        for wf in self._workflows:
            for tid in wf.member_ids:
                self._by_member[tid].append(wf)

    def _build(self) -> list[Workflow]:
        referenced: set[int] = set()
        for txn in self._txns.values():
            referenced.update(txn.depends_on)
        roots = [tid for tid in sorted(self._txns) if tid not in referenced]
        workflows = []
        for wf_id, root in enumerate(roots):
            closure = self._closure(root)
            members = {tid: self._txns[tid] for tid in closure}
            workflows.append(Workflow(wf_id, root, members))
        return workflows

    def _closure(self, root: int) -> set[int]:
        """Ids of ``root`` plus everything it transitively depends on."""
        seen = {root}
        stack = [root]
        while stack:
            tid = stack.pop()
            for dep in self._txns[tid].depends_on:
                if dep not in seen:
                    seen.add(dep)
                    stack.append(dep)
        return seen

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Workflow]:
        return iter(self._workflows)

    def __len__(self) -> int:
        return len(self._workflows)

    @property
    def transactions(self) -> dict[int, Transaction]:
        """The underlying transaction pool, keyed by id."""
        return self._txns

    def workflows_of(self, txn_id: int) -> list[Workflow]:
        """All workflows that transaction ``txn_id`` belongs to."""
        return list(self._by_member[txn_id])

    def member_workflows(self, txn_id: int) -> list[Workflow]:
        """No-copy variant of :meth:`workflows_of` for per-event hooks.

        Returns the internal index list — callers iterate it, they must
        not mutate it.  The defensive copy in :meth:`workflows_of` is
        measurable when a policy touches workflows on every lifecycle
        event of every transaction.
        """
        return self._by_member[txn_id]

    def workflow_count_of(self, txn_id: int) -> int:
        """Number of workflows containing ``txn_id`` (Table I's W bound)."""
        return len(self._by_member[txn_id])

    # ------------------------------------------------------------------
    # Simulation hooks.
    # ------------------------------------------------------------------
    def notify_changed(self, txn_id: int, kind: str = "full") -> None:
        """Invalidate every workflow touched by a state change of ``txn_id``.

        A completion can make *dependents* of ``txn_id`` ready; dependents
        live in their own workflows, but by the closure property any
        workflow containing a dependent also contains ``txn_id``, so
        invalidating the workflows of ``txn_id`` covers them all.

        ``kind`` routes the monotone changes to O(1) targeted updates on
        the workflow instead of a full member re-sweep at next access:

        * ``"arrived"`` — ``txn_id`` just entered the pending set (it can
          only improve the min/max aggregates);
        * ``"shrunk"`` — ``txn_id``'s believed remaining time was charged
          down (the believed min merges in place, the head can only swing
          toward the charged member);
        * ``"truth"`` — only engine-truth remaining moved (a stall); the
          believed aggregates are untouched and just the cached
          representative snapshot is dropped;
        * ``"full"`` — everything else (completion, abort, shed, retry):
          a member left the pending set or worsened, so only a re-sweep
          can recompute the mins.
        """
        if kind == "full":
            for wf in self._by_member[txn_id]:
                wf.invalidate()
        elif kind == "shrunk":
            txn = self._txns[txn_id]
            for wf in self._by_member[txn_id]:
                wf.note_shrunk(txn)
        elif kind == "arrived":
            txn = self._txns[txn_id]
            for wf in self._by_member[txn_id]:
                wf.note_arrival(txn)
        elif kind == "truth":
            for wf in self._by_member[txn_id]:
                wf.note_truth_changed()
        else:
            raise ValueError(f"unknown change kind {kind!r}")

    def active_workflows(self) -> list[Workflow]:
        """Workflows with at least one pending (submitted) member."""
        return [wf for wf in self._workflows if wf.representative() is not None]

    def validate_acyclic(self) -> None:
        """Raise :class:`InvalidWorkflowError` if any dependency cycle exists.

        Construction already walks every closure; this re-checks the full
        pool in one pass, catching cycles among transactions that belong to
        no workflow closure (impossible by construction, but cheap to
        assert for externally supplied pools).
        """
        indegree = {tid: len(txn.depends_on) for tid, txn in self._txns.items()}
        dependents: dict[int, list[int]] = {tid: [] for tid in self._txns}
        for txn in self._txns.values():
            for dep in txn.depends_on:
                dependents[dep].append(txn.txn_id)
        frontier = [tid for tid, deg in indegree.items() if deg == 0]
        visited = 0
        while frontier:
            tid = frontier.pop()
            visited += 1
            for succ in dependents[tid]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    frontier.append(succ)
        if visited != len(self._txns):
            raise InvalidWorkflowError("transaction pool contains a cycle")

    @staticmethod
    def singletons(transactions: Iterable[Transaction]) -> "WorkflowSet":
        """Build a set where every transaction is its own workflow.

        Convenience for running workflow-level policies on independent
        workloads; with singleton workflows ASETS* degenerates exactly to
        its transaction-level form.
        """
        txns = list(transactions)
        for txn in txns:
            if txn.depends_on:
                raise InvalidWorkflowError(
                    f"singletons() requires independent transactions; "
                    f"{txn.txn_id} has dependencies {txn.depends_on}"
                )
        return WorkflowSet(txns)
