"""Priority key functions for the baseline policies (Section II-C).

A priority-based policy assigns each transaction a priority and always runs
the highest-priority ready transaction.  The paper's baselines use:

========  =============================  =======================================
Policy    Priority :math:`P_i`           Module implementing the full policy
========  =============================  =======================================
EDF       :math:`1 / d_i`                :mod:`repro.policies.edf`
SRPT      :math:`1 / r_i`                :mod:`repro.policies.srpt`
LS        :math:`1 / s_i`                :mod:`repro.policies.least_slack`
HDF       :math:`w_i / r_i`              :mod:`repro.policies.hdf`
HVF       :math:`w_i`                    :mod:`repro.policies.hvf` (related work)
MIX       :math:`w_i - \\lambda d_i`     :mod:`repro.policies.mix` (related work)
========  =============================  =======================================

Each function here returns a *sort key* such that the highest-priority item
has the smallest key — the natural direction for Python heaps.  Ties are
broken by the caller (policies append the arrival time and id).
"""

from __future__ import annotations

from repro.core.transaction import Transaction

__all__ = [
    "edf_key",
    "srpt_key",
    "least_slack_key",
    "hdf_key",
    "hvf_key",
    "mix_key",
    "aging_key",
]


def edf_key(txn: Transaction) -> float:
    """Earliest-Deadline-First: smaller deadline = higher priority."""
    return txn.deadline


def srpt_key(txn: Transaction) -> float:
    """Shortest-Remaining-Processing-Time: smaller :math:`r_i` wins.

    Uses the scheduler's belief about the remaining time — a real system
    only has profile-based estimates (§II-A).
    """
    return txn.scheduling_remaining


def least_slack_key(txn: Transaction, at: float) -> float:
    """Least-Slack: smaller :math:`s_i = d_i - (t + r_i)` wins.

    Because the current time :math:`t` is common to every waiting
    transaction, ordering by slack equals ordering by the static quantity
    :math:`d_i - r_i`; we still expose the time-dependent form for clarity
    and return the true slack.
    """
    return txn.slack(at)


def hdf_key(txn: Transaction) -> float:
    """Highest-Density-First: larger :math:`w_i / r_i` = higher priority.

    Returned negated so that the smallest key wins.  HDF reduces to SRPT
    when all weights are equal, and is optimal for weighted flow time when
    every transaction has already missed its deadline [Becchetti et al.].
    """
    if txn.scheduling_remaining <= 0:
        return float("-inf")
    return -(txn.weight / txn.scheduling_remaining)


def hvf_key(txn: Transaction) -> float:
    """Highest-Value-First: larger weight = higher priority (negated)."""
    return -txn.weight


def mix_key(txn: Transaction, tradeoff: float) -> float:
    """The MIX rule of Buttazzo et al.: a static blend of value and deadline.

    Priority is the linear combination :math:`d_i - \\lambda w_i`
    (smaller = higher priority).  ``tradeoff`` is the :math:`\\lambda`
    system parameter the paper criticises MIX for needing; ``tradeoff=0``
    degenerates to EDF and large values approach HVF.
    """
    return txn.deadline - tradeoff * txn.weight


def aging_key(txn: Transaction) -> float:
    """Key for the balance-aware :math:`T_{old}` pick (Section III-D).

    :math:`T_{old}` is the ready transaction with the *highest*
    weight-to-deadline ratio :math:`w_i / d_i` — the natural aging order in
    which the transaction with the earliest deadline is the oldest.
    Negated so the smallest key wins.
    """
    if txn.deadline <= 0:
        return float("-inf")
    return -(txn.weight / txn.deadline)
