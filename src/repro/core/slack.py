"""Slack and deadline-feasibility helpers (Definition 2).

These free functions mirror the methods on
:class:`~repro.core.transaction.Transaction` so that policies can also be
applied to lightweight records (e.g. the representative-transaction views
of :mod:`repro.core.workflow`), which expose ``deadline`` and ``remaining``
attributes but are not full transactions.
"""

from __future__ import annotations

from typing import Protocol

__all__ = ["slack", "is_past_deadline", "latest_start_time", "HasTiming"]


class HasTiming(Protocol):
    """Anything with a deadline and a remaining processing time."""

    deadline: float
    remaining: float


def _remaining(item: HasTiming) -> float:
    # Transactions expose the scheduler's *belief* about the remaining
    # time (which may be an estimate); plain records expose only the
    # ground truth.  Slack is a scheduling quantity, so prefer the belief.
    return getattr(item, "scheduling_remaining", item.remaining)


def slack(item: HasTiming, at: float) -> float:
    """Return :math:`s_i = d_i - (t + r_i)` for ``item`` at time ``at``."""
    return item.deadline - (at + _remaining(item))


def is_past_deadline(item: HasTiming, at: float) -> bool:
    """True iff ``item`` can no longer meet its deadline from time ``at``.

    This is the membership test that routes an item to the SRPT/HDF-List
    (Definition 7): :math:`t + r_i > d_i`.
    """
    return at + _remaining(item) > item.deadline


def latest_start_time(item: HasTiming) -> float:
    """Return :math:`d_i - r_i`, the latest feasible start time.

    An idle (non-running) item migrates from the EDF-List to the SRPT/HDF
    list exactly when the clock passes this static threshold.
    """
    return item.deadline - _remaining(item)
