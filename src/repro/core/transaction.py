"""The transaction model of Definition 1.

A *web transaction* is the unit of scheduling: it materialises one content
fragment of a dynamic web page against the backend database.  Following the
paper, a transaction :math:`T_i` is characterised by

* an arrival time :math:`a_i` — when it was submitted to the database,
* a soft deadline :math:`d_i` — the SLA of the fragment it materialises,
* a length :math:`l_i` and remaining processing time :math:`r_i`,
* a weight :math:`w_i` — its importance, and
* a dependency list :math:`l_i` — the transactions that must complete first
  (held here as a tuple of transaction ids, ``depends_on``).

Instances are mutable because the simulator charges processing time to the
running transaction and moves it through its lifecycle; all *static*
characteristics are validated once at construction time.
"""

from __future__ import annotations

import enum
import math
from typing import Iterable

from repro.errors import InvalidTransactionError

__all__ = ["Transaction", "TransactionState"]


class TransactionState(enum.Enum):
    """Lifecycle of a transaction inside the simulator.

    The normal progression is ``CREATED -> WAITING -> READY -> RUNNING ->
    COMPLETED``, with possible ``RUNNING -> READY`` moves on preemption and
    a direct ``CREATED -> READY`` move for independent transactions whose
    dependency list is empty on arrival.

    Fault injection (:mod:`repro.faults`) adds two terminal failure states
    and one loop: an injected abort moves ``RUNNING -> WAITING`` (awaiting
    re-submission) and back to ``READY`` on retry, or ``RUNNING -> ABORTED``
    once the retry budget is exhausted; admission control moves
    ``READY -> SHED``.  Without a fault plan these transitions never occur.
    """

    CREATED = "created"
    WAITING = "waiting"
    READY = "ready"
    RUNNING = "running"
    COMPLETED = "completed"
    ABORTED = "aborted"
    SHED = "shed"


class Transaction:
    """A single web transaction (Definition 1 of the paper).

    Parameters
    ----------
    txn_id:
        Unique integer identifier within one workload.
    arrival:
        Arrival time :math:`a_i \\ge 0`.
    length:
        Total processing requirement :math:`l_i > 0`.
    deadline:
        Soft deadline :math:`d_i`; must not precede the arrival time.
    weight:
        Importance :math:`w_i > 0`; defaults to 1 (the unweighted case).
    depends_on:
        Ids of the transactions in the dependency list; empty for an
        independent transaction.

    Examples
    --------
    >>> t = Transaction(1, arrival=0.0, length=3.0, deadline=10.0)
    >>> t.slack(at=0.0)
    7.0
    >>> t.is_past_deadline(at=8.0)
    True
    """

    __slots__ = (
        "txn_id",
        "arrival",
        "length",
        "deadline",
        "weight",
        "depends_on",
        "length_estimate",
        "submitted_deadline",
        "remaining",
        "scheduling_remaining",
        "state",
        "finish_time",
        "first_start_time",
        "last_dispatch_time",
        "preemptions",
        "retries",
        "attempt_served",
    )

    #: Floor for a positive believed remaining time: an under-estimated
    #: transaction that has out-lived its estimate still needs a valid
    #: (tiny) remaining time for density/SRPT priorities.
    _MIN_BELIEF = 1e-6

    def __init__(
        self,
        txn_id: int,
        arrival: float,
        length: float,
        deadline: float,
        weight: float = 1.0,
        depends_on: Iterable[int] = (),
        length_estimate: float | None = None,
    ) -> None:
        depends_on = tuple(depends_on)
        self._validate(txn_id, arrival, length, deadline, weight, depends_on)
        if length_estimate is None:
            length_estimate = length
        if not math.isfinite(length_estimate) or length_estimate <= 0:
            raise InvalidTransactionError(
                f"length_estimate must be finite and > 0, got {length_estimate}"
            )
        self.txn_id = txn_id
        self.arrival = float(arrival)
        self.length = float(length)
        self.deadline = float(deadline)
        self.weight = float(weight)
        self.depends_on = depends_on
        #: The scheduler's belief about the length ("computed by the
        #: system based on previous statistics and profiles", §II-A).
        #: Equal to the true length unless the workload injected
        #: estimation error.
        self.length_estimate = float(length_estimate)
        #: The deadline as originally submitted.  ``deadline`` itself is
        #: mutable only under fault injection (re-submission after an abort
        #: extends it with backoff); :meth:`reset` restores this value.
        self.submitted_deadline = float(deadline)
        # Mutable simulation state.  ``remaining`` is ground truth (the
        # engine's accounting); ``scheduling_remaining`` is the belief
        # policies rank by.  The belief is the plain slot (it sits on
        # every policy's hottest lines) and :attr:`believed_remaining`
        # is the property alias kept for the engine-facing vocabulary.
        self.remaining = float(length)
        self.scheduling_remaining = self.length_estimate
        self.state = TransactionState.CREATED
        self.finish_time: float | None = None
        self.first_start_time: float | None = None
        self.last_dispatch_time: float | None = None
        self.preemptions = 0
        self.retries = 0
        #: Processing time served during the *current* attempt; the fault
        #: layer consults it to decide when an abort trigger fires and how
        #: much work a full-restart abort loses.
        self.attempt_served = 0.0

    @staticmethod
    def _validate(
        txn_id: int,
        arrival: float,
        length: float,
        deadline: float,
        weight: float,
        depends_on: tuple[int, ...],
    ) -> None:
        if not isinstance(txn_id, int):
            raise InvalidTransactionError(f"txn_id must be an int, got {txn_id!r}")
        for name, value in (
            ("arrival", arrival),
            ("length", length),
            ("deadline", deadline),
            ("weight", weight),
        ):
            if not math.isfinite(value):
                raise InvalidTransactionError(f"{name} must be finite, got {value!r}")
        if arrival < 0:
            raise InvalidTransactionError(f"arrival must be >= 0, got {arrival}")
        if length <= 0:
            raise InvalidTransactionError(f"length must be > 0, got {length}")
        if weight <= 0:
            raise InvalidTransactionError(f"weight must be > 0, got {weight}")
        if deadline < arrival:
            raise InvalidTransactionError(
                f"deadline {deadline} precedes arrival {arrival}"
            )
        if txn_id in depends_on:
            raise InvalidTransactionError(f"transaction {txn_id} depends on itself")
        if len(set(depends_on)) != len(depends_on):
            raise InvalidTransactionError(
                f"duplicate ids in dependency list: {depends_on}"
            )

    # ------------------------------------------------------------------
    # Derived quantities (Definition 2 and the ASETS list predicates).
    # ------------------------------------------------------------------
    @property
    def believed_remaining(self) -> float:
        """Alias of :attr:`scheduling_remaining`, the scheduler's belief.

        Policies rank by :attr:`scheduling_remaining` (a plain slot, as
        it sits on every policy's hottest lines); the engine executes by
        :attr:`remaining`.  The two coincide when the length estimate is
        exact (the default).  This alias keeps the engine-facing
        "belief" vocabulary (and stays the name lint rule RL008 bans
        policies from touching, exactly like ``remaining``).
        """
        return self.scheduling_remaining

    @believed_remaining.setter
    def believed_remaining(self, value: float) -> None:
        self.scheduling_remaining = value

    def slack(self, at: float) -> float:
        """Return the slack :math:`s_i = d_i - (t + r_i)` at time ``at``.

        Negative slack means the transaction can no longer meet its
        deadline even if it starts immediately.  Computed from the
        scheduler's belief about the remaining time.
        """
        return self.deadline - (at + self.scheduling_remaining)

    def is_past_deadline(self, at: float) -> bool:
        """True iff the transaction cannot meet its deadline from ``at``.

        This is the SRPT-List membership test of Definition 7:
        :math:`t + r_i > d_i`, judged on the believed remaining time.
        """
        return at + self.scheduling_remaining > self.deadline

    def latest_start_time(self) -> float:
        """Latest time the transaction can start and still meet its deadline.

        While a transaction waits (``scheduling_remaining`` frozen), it
        belongs to the EDF-List exactly until the clock passes this value
        — the policies use it as a static migration threshold.
        """
        return self.deadline - self.scheduling_remaining

    def tardiness(self) -> float:
        """Return the tardiness :math:`t_i = \\max(0, f_i - d_i)`.

        Raises if the transaction has not completed yet (Definition 3 is
        only meaningful for finished transactions).
        """
        if self.finish_time is None:
            raise InvalidTransactionError(
                f"transaction {self.txn_id} has not finished; tardiness undefined"
            )
        return max(0.0, self.finish_time - self.deadline)

    def weighted_tardiness(self) -> float:
        """Return :math:`t_i \\cdot w_i` (Definition 5's summand)."""
        return self.tardiness() * self.weight

    def response_time(self) -> float:
        """Return the time spent in the system, :math:`f_i - a_i`."""
        if self.finish_time is None:
            raise InvalidTransactionError(
                f"transaction {self.txn_id} has not finished; response undefined"
            )
        return self.finish_time - self.arrival

    @property
    def is_independent(self) -> bool:
        """True iff the dependency list is empty."""
        return not self.depends_on

    @property
    def is_completed(self) -> bool:
        return self.state is TransactionState.COMPLETED

    @property
    def is_finished(self) -> bool:
        """True iff the transaction reached any terminal state.

        Terminal states are COMPLETED, ABORTED (retry budget exhausted)
        and SHED (rejected by admission control); the latter two only
        occur under fault injection.
        """
        return self.state in (
            TransactionState.COMPLETED,
            TransactionState.ABORTED,
            TransactionState.SHED,
        )

    # ------------------------------------------------------------------
    # Lifecycle transitions, called by the simulation engine only.
    # ------------------------------------------------------------------
    def mark_waiting(self) -> None:
        self._expect_state(TransactionState.CREATED)
        self.state = TransactionState.WAITING

    def mark_ready(self) -> None:
        if self.state not in (TransactionState.CREATED, TransactionState.WAITING):
            raise InvalidTransactionError(
                f"cannot mark {self!r} ready from state {self.state}"
            )
        self.state = TransactionState.READY

    def mark_running(self, now: float) -> None:
        self._expect_state(TransactionState.READY)
        self.state = TransactionState.RUNNING
        if self.first_start_time is None:
            self.first_start_time = now
        self.last_dispatch_time = now

    def mark_suspended(self) -> None:
        """Move RUNNING -> READY without counting a preemption.

        The engine suspends the running transaction at *every* scheduling
        point so the policy can reconsider it; only when a different
        transaction is then dispatched does the suspension count as a real
        preemption (the engine bumps :attr:`preemptions` explicitly).
        """
        self._expect_state(TransactionState.RUNNING)
        self.state = TransactionState.READY

    def mark_preempted(self) -> None:
        """Move RUNNING -> READY and count a preemption."""
        self.mark_suspended()
        self.preemptions += 1

    def charge(self, amount: float) -> None:
        """Charge ``amount`` time units of processing to this transaction."""
        if amount < 0:
            raise InvalidTransactionError(f"cannot charge negative time {amount}")
        if amount > self.remaining + 1e-9:
            raise InvalidTransactionError(
                f"charge {amount} exceeds remaining {self.remaining} "
                f"of transaction {self.txn_id}"
            )
        self.remaining = max(0.0, self.remaining - amount)
        self.attempt_served += amount
        if self.remaining <= 0.0:
            self.scheduling_remaining = 0.0
        else:
            self.scheduling_remaining = max(
                self._MIN_BELIEF, self.scheduling_remaining - amount
            )

    def inflate(self, extra: float) -> None:
        """Add ``extra`` ground-truth work (a transient processing stall).

        The scheduler's belief is deliberately left untouched: a stall is
        invisible until the transaction out-lives its estimate, exactly
        like an under-estimated length (§II-A).
        """
        if extra < 0 or not math.isfinite(extra):
            raise InvalidTransactionError(
                f"stall amount must be finite and >= 0, got {extra}"
            )
        self.remaining += extra

    def mark_completed(self, now: float) -> None:
        self._expect_state(TransactionState.RUNNING)
        if self.remaining > 1e-9:
            raise InvalidTransactionError(
                f"transaction {self.txn_id} completed with {self.remaining} "
                "time units of work left"
            )
        self.remaining = 0.0
        self.scheduling_remaining = 0.0
        self.state = TransactionState.COMPLETED
        self.finish_time = now

    # ------------------------------------------------------------------
    # Fault-injection transitions (:mod:`repro.faults`), engine-driven.
    # ------------------------------------------------------------------
    def mark_retry_wait(self) -> None:
        """Move RUNNING -> WAITING after an injected abort, pending retry."""
        self._expect_state(TransactionState.RUNNING)
        self.state = TransactionState.WAITING

    def rollback(self, full: bool) -> None:
        """Discard the current attempt's progress after an abort.

        ``full`` restarts from scratch (work-loss ``"restart"``: both the
        ground truth and the belief return to their initial values);
        otherwise the attempt resumes from its checkpoint (work-loss
        ``"checkpoint"``: nothing is re-done).  Either way a new attempt
        begins, so :attr:`attempt_served` is zeroed.
        """
        if full:
            self.remaining = self.length
            self.scheduling_remaining = self.length_estimate
        self.attempt_served = 0.0

    def resubmit(self, now: float, deadline: float) -> None:
        """Re-enter the ready pool after the retry backoff elapsed."""
        self._expect_state(TransactionState.WAITING)
        if deadline < now:
            raise InvalidTransactionError(
                f"re-submission deadline {deadline} precedes retry time {now}"
            )
        self.deadline = float(deadline)
        self.retries += 1
        self.state = TransactionState.READY

    def mark_aborted(self, now: float) -> None:
        """Terminal abort: the retry budget is exhausted."""
        self._expect_state(TransactionState.RUNNING)
        self.state = TransactionState.ABORTED
        self.finish_time = now

    def mark_shed(self, now: float) -> None:
        """Terminal rejection by admission control (READY work only)."""
        self._expect_state(TransactionState.READY)
        self.state = TransactionState.SHED
        self.finish_time = now

    def reset(self) -> None:
        """Restore the transaction to its pre-simulation state.

        Lets a single generated workload be replayed under several
        policies without regenerating it.
        """
        self.deadline = self.submitted_deadline
        self.remaining = self.length
        self.scheduling_remaining = self.length_estimate
        self.state = TransactionState.CREATED
        self.finish_time = None
        self.first_start_time = None
        self.last_dispatch_time = None
        self.preemptions = 0
        self.retries = 0
        self.attempt_served = 0.0

    def _expect_state(self, expected: TransactionState) -> None:
        if self.state is not expected:
            raise InvalidTransactionError(
                f"transaction {self.txn_id}: expected state {expected}, "
                f"found {self.state}"
            )

    def __repr__(self) -> str:
        return (
            f"Transaction(id={self.txn_id}, a={self.arrival:g}, "
            f"l={self.length:g}, r={self.remaining:g}, d={self.deadline:g}, "
            f"w={self.weight:g}, deps={list(self.depends_on)}, "
            f"state={self.state.value})"
        )
