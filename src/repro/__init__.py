"""repro — a full reproduction of *Adaptive Scheduling of Web Transactions*
(Guirguis, Sharaf, Chrysanthis, Labrinidis, Pruhs — ICDE 2009).

The package provides:

* the **ASETS\\*** adaptive scheduling policy and every baseline the paper
  compares against (:mod:`repro.policies`),
* the transaction/workflow model (:mod:`repro.core`),
* a discrete-event RTDBMS simulator (:mod:`repro.sim`),
* the synthetic workload generator of Table I (:mod:`repro.workload`),
* tardiness metrics and aggregation (:mod:`repro.metrics`),
* engine observability — instrumentation hooks, metrics registry, JSONL
  event logs, run reports (:mod:`repro.obs`),
* a simulated web-database substrate — in-memory store, content
  fragments, dynamic pages, SLAs (:mod:`repro.webdb`), and
* an experiment harness regenerating every figure and table of the
  paper's evaluation (:mod:`repro.experiments`).

Quickstart::

    from repro import WorkloadSpec, generate, Simulator, make_policy

    workload = generate(WorkloadSpec(utilization=0.7), seed=42)
    result = Simulator(workload.transactions, make_policy("asets")).run()
    print(result.average_tardiness)
"""

from repro._version import __version__
from repro.core import Transaction, TransactionState, Workflow, WorkflowSet
from repro.errors import ReproError
from repro.policies import (
    ASETS,
    ASETSStar,
    BalanceAware,
    EDF,
    FCFS,
    HDF,
    HVF,
    LeastSlack,
    MIX,
    Ready,
    SRPT,
    Scheduler,
    available_policies,
    make_policy,
)
from repro.obs import Instrument, MultiInstrument, NullInstrument, Recorder, RunReport
from repro.sim import SimulationResult, Simulator, Trace, TransactionRecord
from repro.workload import Workload, WorkloadSpec, generate

__all__ = [
    "__version__",
    "ReproError",
    "Transaction",
    "TransactionState",
    "Workflow",
    "WorkflowSet",
    "Scheduler",
    "FCFS",
    "EDF",
    "SRPT",
    "LeastSlack",
    "HDF",
    "HVF",
    "MIX",
    "ASETS",
    "Ready",
    "ASETSStar",
    "BalanceAware",
    "make_policy",
    "available_policies",
    "Simulator",
    "SimulationResult",
    "TransactionRecord",
    "Trace",
    "Instrument",
    "NullInstrument",
    "MultiInstrument",
    "Recorder",
    "RunReport",
    "Workload",
    "WorkloadSpec",
    "generate",
]
