"""Version information for the ASETS* reproduction package."""

__version__ = "1.0.0"

#: The paper this package reproduces.
PAPER_TITLE = "Adaptive Scheduling of Web Transactions"
PAPER_VENUE = "ICDE 2009"
