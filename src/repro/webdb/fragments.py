"""Content fragments: the units a dynamic web page is composed of.

Each fragment is materialised by one query transaction (the paper folds
the possibly-many statements behind a fragment into a single transaction,
Section II-A).  A fragment can consume the output of other fragments via
:class:`~repro.webdb.query.Input` nodes in its query; those references
define the fragment-level (and hence transaction-level) dependency DAG.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.errors import QueryError
from repro.webdb.database import Database, Row
from repro.webdb.query import Query

__all__ = ["ContentFragment"]


def _default_renderer(name: str, rows: Sequence[Row]) -> str:
    """Plain-text rendering: a heading plus one line per row."""
    lines = [f"== {name} =="]
    for row in rows:
        lines.append(", ".join(f"{k}={row[k]}" for k in sorted(row)))
    if not rows:
        lines.append("(no data)")
    return "\n".join(lines)


class ContentFragment:
    """One fragment of a dynamic page.

    Parameters
    ----------
    name:
        Unique fragment name within its page; other fragments reference
        it through ``Input(name)``.
    query:
        The query plan that materialises the fragment's content.
    renderer:
        Optional ``(name, rows) -> str`` producing the fragment's
        rendered form; a plain-text renderer is used by default.
    urgency:
        Multiplier on the page SLA's slack for this fragment: 1.0 keeps
        the page deadline, smaller values tighten it (the paper's stock
        *alerts* fragment wants to be seen first even though it depends
        on other fragments — that is exactly the deadline/precedence
        conflict ASETS* exploits).
    weight_boost:
        Additive weight on top of the SLA tier's weight, for fragments
        more important than their page's baseline.
    cache_key:
        Opt the fragment into fragment caching/materialization (Section
        II-A's WebView hook): fragments sharing a key — across pages and
        users — share one materialised copy, and requests arriving while
        it is fresh compile to cheap cache-hit transactions.  Only
        fragments reading base tables exclusively can be cached; a
        fragment consuming another fragment's output is personalised per
        request and is rejected here.
    """

    def __init__(
        self,
        name: str,
        query: Query,
        renderer: Callable[[str, Sequence[Row]], str] | None = None,
        urgency: float = 1.0,
        weight_boost: float = 0.0,
        cache_key: str | None = None,
    ) -> None:
        if not name:
            raise QueryError("fragment name must be non-empty")
        if urgency <= 0:
            raise QueryError(f"urgency must be > 0, got {urgency}")
        if weight_boost < 0:
            raise QueryError(f"weight_boost must be >= 0, got {weight_boost}")
        if cache_key is not None and query.input_names():
            raise QueryError(
                f"fragment {name!r} cannot be cached: its query reads "
                f"other fragments {sorted(query.input_names())}"
            )
        self.name = name
        self.query = query
        self.renderer = renderer or _default_renderer
        self.urgency = urgency
        self.weight_boost = weight_boost
        self.cache_key = cache_key

    def dependencies(self) -> set[str]:
        """Names of fragments this fragment's query reads."""
        return self.query.input_names()

    def estimated_cost(self, db: Database) -> float:
        """Transaction length for this fragment (profile-based estimate)."""
        return self.query.estimated_cost(db)

    def materialise(self, db: Database, bindings) -> list[Row]:
        """Execute the query with upstream fragment outputs bound."""
        return self.query.execute(db, bindings)

    def render(self, rows: Sequence[Row]) -> str:
        return self.renderer(self.name, rows)

    def __repr__(self) -> str:
        return (
            f"ContentFragment({self.name!r}, deps={sorted(self.dependencies())}, "
            f"urgency={self.urgency:g})"
        )
