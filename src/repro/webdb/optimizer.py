"""A rule-based query optimizer.

Rewrites a query plan into a cheaper equivalent — equivalent meaning
*identical output rows* (order included) on every database.  Shorter
plans mean shorter transactions, which is the knob the scheduler
ultimately feels; `WebDatabase(optimize_queries=True)` applies the
optimizer to every fragment at registration.

Rules, applied bottom-up to a fixpoint:

1. **Filter merge** — ``Filter(Filter(s, p), q) -> Filter(s, q AND p)``.
2. **Filter past Sort** — ``Filter(Sort(s)) -> Sort(Filter(s))``; always
   safe (filtering preserves relative order) and cheaper (sorts fewer
   rows).
3. **Filter past Project** — safe when the predicate's referenced
   columns survive the projection (structured predicates only; opaque
   lambdas are never moved).
4. **Filter into Join** — a predicate referencing only one side's
   columns (or the join column) moves inside that side, shrinking the
   nested-loop pair-product.  Column provenance is derived from the
   plan: base-table schemas are known, ``Input`` sides are opaque and
   block the rule.
5. **Limit merge** — ``Limit(Limit(s, a), b) -> Limit(s, min(a, b))``.

The optimizer never changes results — property-tested against random
databases — and never increases the estimated cost (asserted in tests
for every rule).
"""

from __future__ import annotations

from repro.webdb.database import Database
from repro.webdb.predicates import Conjunction, referenced_columns
from repro.webdb.query import (
    Aggregate,
    Filter,
    Input,
    Join,
    Limit,
    Project,
    Query,
    Scan,
    Sort,
)

__all__ = ["optimize", "output_columns"]


def output_columns(plan: Query, db: Database) -> set[str] | None:
    """Statically known output columns of ``plan``, or ``None`` if opaque.

    ``Input`` nodes (another fragment's rows) have unknowable shape, so
    anything built on one is opaque and the column-sensitive rules
    abstain.
    """
    if isinstance(plan, Scan):
        return set(db.table(plan.table).columns)
    if isinstance(plan, Input):
        return None
    if isinstance(plan, Project):
        return set(plan.columns)
    if isinstance(plan, (Filter, Sort, Limit)):
        return output_columns(plan.source, db)
    if isinstance(plan, Join):
        left = output_columns(plan.left, db)
        right = output_columns(plan.right, db)
        if left is None or right is None:
            return None
        return left | right
    if isinstance(plan, Aggregate):
        if plan.fn == "count":
            return {"count"}
        return {f"{plan.fn}_{plan.column}"}
    return None


def _rewrite_filter(node: Filter, db: Database) -> Query | None:
    """One rewrite step for a Filter node, or None if nothing applies."""
    source = node.source
    predicate = node.predicate

    if isinstance(source, Filter):
        # Rule 1: merge into a conjunction (inner first, like execution).
        return Filter(source.source, Conjunction([source.predicate, predicate]))

    if isinstance(source, Sort):
        # Rule 2: filter before sorting.
        return Sort(
            Filter(source.source, predicate), source.by, source.descending
        )

    refs = referenced_columns(predicate)
    if refs is None:
        return None  # opaque predicate: column-sensitive rules abstain

    if isinstance(source, Project) and refs <= set(source.columns):
        # Rule 3: filter before projecting.
        return Project(Filter(source.source, predicate), source.columns)

    if isinstance(source, Join):
        # Rule 4: push into the side that owns the referenced columns.
        left_cols = output_columns(source.left, db)
        right_cols = output_columns(source.right, db)
        if left_cols is not None and right_cols is not None:
            left_only = (left_cols - right_cols) | {source.on}
            right_only = (right_cols - left_cols) | {source.on}
            if refs <= left_only:
                return Join(
                    Filter(source.left, predicate), source.right, source.on
                )
            if refs <= right_only:
                return Join(
                    source.left, Filter(source.right, predicate), source.on
                )
    return None


def _rewrite(node: Query, db: Database) -> Query | None:
    if isinstance(node, Filter):
        return _rewrite_filter(node, db)
    if isinstance(node, Limit) and isinstance(node.source, Limit):
        # Rule 5.
        return Limit(node.source.source, min(node.n, node.source.n))
    return None


def _optimize_once(node: Query, db: Database) -> tuple[Query, bool]:
    """Optimize children, then try one rewrite at this node."""
    changed = False
    if isinstance(node, Filter):
        child, c = _optimize_once(node.source, db)
        if c:
            node = Filter(child, node.predicate)
            changed = True
    elif isinstance(node, Project):
        child, c = _optimize_once(node.source, db)
        if c:
            node = Project(child, node.columns)
            changed = True
    elif isinstance(node, Sort):
        child, c = _optimize_once(node.source, db)
        if c:
            node = Sort(child, node.by, node.descending)
            changed = True
    elif isinstance(node, Limit):
        child, c = _optimize_once(node.source, db)
        if c:
            node = Limit(child, node.n)
            changed = True
    elif isinstance(node, Aggregate):
        child, c = _optimize_once(node.source, db)
        if c:
            node = Aggregate(child, node.fn, node.column)
            changed = True
    elif isinstance(node, Join):
        left, cl = _optimize_once(node.left, db)
        right, cr = _optimize_once(node.right, db)
        if cl or cr:
            node = Join(left, right, node.on)
            changed = True
    rewritten = _rewrite(node, db)
    if rewritten is not None:
        return rewritten, True
    return node, changed


def optimize(plan: Query, db: Database, max_passes: int = 16) -> Query:
    """Return an equivalent, no-more-expensive plan.

    ``max_passes`` bounds the fixpoint loop (each pass strictly moves a
    filter downward or merges nodes, so deep plans converge quickly).

    Examples
    --------
    >>> from repro.webdb.database import Database
    >>> from repro.webdb.sql import parse_sql
    >>> db = Database()
    >>> _ = db.create_table("t", ["a", "b"])
    >>> plan = parse_sql("SELECT a FROM t WHERE a > 1 ORDER BY a")
    >>> type(optimize(plan, db)).__name__   # filter sank below the sort
    'Sort'
    """
    current = plan
    for _ in range(max_passes):
        current, changed = _optimize_once(current, db)
        if not changed:
            break
    return current
