"""A small SQL dialect for the web-database substrate.

Fragment queries can be written as plans (:mod:`repro.webdb.query`) or —
more naturally for a web-database — as SQL text compiled by this module:

.. code-block:: sql

    SELECT symbol, price FROM stocks WHERE price > 100 ORDER BY price DESC LIMIT 10
    SELECT SUM(price) FROM FRAGMENT portfolio
    SELECT * FROM positions JOIN stocks USING symbol WHERE user = 'alice'

Supported grammar (case-insensitive keywords)::

    query     := SELECT select FROM source [join] [where] [order] [limit]
    select    := '*' | column (',' column)* | agg '(' (column | '*') ')'
    agg       := SUM | AVG | MIN | MAX | COUNT
    source    := table_name | FRAGMENT fragment_name
    join      := JOIN source USING column
    where     := WHERE predicate (AND predicate)*
    predicate := column op literal
    op        := '=' | '!=' | '<' | '<=' | '>' | '>='
    order     := ORDER BY column [ASC | DESC]
    limit     := LIMIT integer

Literals are integers, floats, or single-quoted strings.  ``FRAGMENT x``
reads another fragment's output (an :class:`~repro.webdb.query.Input`
node), which is how SQL-defined fragments declare dependencies.

The compiler produces exactly the plan a hand-written query would, so
cost estimation, caching and scheduling are unaffected by which front
door was used.
"""

from __future__ import annotations

import re
from typing import Callable

from repro.errors import QueryError
from repro.webdb.predicates import ColumnPredicate, Conjunction
from repro.webdb.query import (
    Aggregate,
    Filter,
    Input,
    Join,
    Limit,
    Project,
    Query,
    Scan,
    Sort,
)

__all__ = ["parse_sql"]

_TOKEN_RE = re.compile(
    r"""
    \s*(
        '([^']*)'              # quoted string
      | [A-Za-z_][A-Za-z0-9_]* # identifier / keyword
      | \d+\.\d+               # float
      | \d+                    # integer
      | <= | >= | != | [=<>(),*]
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select", "from", "where", "and", "order", "by", "asc", "desc",
    "limit", "join", "using", "fragment",
    "sum", "avg", "min", "max", "count",
}

_AGGREGATES = {"sum", "avg", "min", "max", "count"}

_OPERATOR_TOKENS = ("=", "!=", "<", "<=", ">", ">=")


def _tokenize(text: str) -> list[str]:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise QueryError(f"cannot tokenize SQL near {remainder[:20]!r}")
        token = match.group(1)
        tokens.append(token)
        pos = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: list[str]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token utilities -------------------------------------------------
    def _peek(self) -> str | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _peek_keyword(self) -> str | None:
        token = self._peek()
        if token is not None and token.lower() in _KEYWORDS:
            return token.lower()
        return None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise QueryError("unexpected end of SQL input")
        self._pos += 1
        return token

    def _expect(self, keyword: str) -> None:
        token = self._next()
        if token.lower() != keyword:
            raise QueryError(f"expected {keyword.upper()!r}, found {token!r}")

    def _identifier(self) -> str:
        token = self._next()
        if not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", token):
            raise QueryError(f"expected identifier, found {token!r}")
        if token.lower() in _KEYWORDS:
            raise QueryError(f"keyword {token!r} cannot be used as a name")
        return token

    def _literal(self) -> object:
        token = self._next()
        if token.startswith("'"):
            return token[1:-1]
        if re.fullmatch(r"\d+\.\d+", token):
            return float(token)
        if re.fullmatch(r"\d+", token):
            return int(token)
        raise QueryError(f"expected literal, found {token!r}")

    # -- grammar ---------------------------------------------------------
    def parse(self) -> Query:
        self._expect("select")
        columns, aggregate = self._select_list()
        self._expect("from")
        plan = self._source()
        if self._peek_keyword() == "join":
            self._next()
            right = self._source()
            self._expect("using")
            plan = Join(plan, right, on=self._identifier())
        if self._peek_keyword() == "where":
            self._next()
            plan = Filter(plan, self._predicates())
        if aggregate is not None:
            fn, column = aggregate
            plan = Aggregate(plan, fn, column)
        elif columns is not None:
            plan = Project(plan, columns)
        if self._peek_keyword() == "order":
            self._next()
            self._expect("by")
            column = self._identifier()
            descending = False
            if self._peek_keyword() in ("asc", "desc"):
                descending = self._next().lower() == "desc"
            plan = Sort(plan, by=column, descending=descending)
        if self._peek_keyword() == "limit":
            self._next()
            count = self._literal()
            if not isinstance(count, int):
                raise QueryError(f"LIMIT needs an integer, found {count!r}")
            plan = Limit(plan, count)
        if self._peek() is not None:
            raise QueryError(f"unexpected trailing SQL: {self._peek()!r}")
        return plan

    def _select_list(self) -> tuple[list[str] | None, tuple[str, str | None] | None]:
        """Return (projection columns, aggregate) — exactly one is set."""
        token = self._peek()
        if token == "*":
            self._next()
            return None, None
        if token is not None and token.lower() in _AGGREGATES:
            fn = self._next().lower()
            self._expect("(")
            if self._peek() == "*":
                if fn != "count":
                    raise QueryError(f"{fn.upper()}(*) is not supported")
                self._next()
                column = None
            else:
                column = self._identifier()
                if fn == "count":
                    column = None  # COUNT(col) counts rows like COUNT(*)
            self._expect(")")
            return None, (fn, column)
        columns = [self._identifier()]
        while self._peek() == ",":
            self._next()
            columns.append(self._identifier())
        return columns, None

    def _source(self) -> Query:
        if self._peek_keyword() == "fragment":
            self._next()
            return Input(self._identifier())
        return Scan(self._identifier())

    def _predicates(self) -> Callable[[dict], bool]:
        clauses = [self._predicate()]
        while self._peek_keyword() == "and":
            self._next()
            clauses.append(self._predicate())
        if len(clauses) == 1:
            return clauses[0]
        return Conjunction(clauses)

    def _predicate(self) -> ColumnPredicate:
        column = self._identifier()
        op_token = self._next()
        if op_token not in _OPERATOR_TOKENS:
            raise QueryError(f"unknown operator {op_token!r}")
        value = self._literal()
        return ColumnPredicate(column, op_token, value)


def parse_sql(text: str) -> Query:
    """Compile one SQL statement into a query plan.

    Examples
    --------
    >>> plan = parse_sql("SELECT symbol FROM stocks WHERE price > 10 LIMIT 3")
    >>> type(plan).__name__
    'Limit'
    >>> parse_sql("SELECT COUNT(*) FROM FRAGMENT portfolio").input_names()
    {'portfolio'}
    """
    if not text or not text.strip():
        raise QueryError("empty SQL statement")
    return _Parser(_tokenize(text)).parse()
