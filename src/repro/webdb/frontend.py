"""The web-database front end: page requests in, scheduled pages out.

:class:`WebDatabase` is the glue of the substrate.  It compiles each
:class:`~repro.webdb.sessions.PageRequest` into one transaction per
fragment — lengths from the query cost model, deadlines and weights from
the SLA tier, dependencies from the fragments' ``Input`` references —
runs the whole request mix through the discrete-event simulator under a
chosen scheduling policy, and returns per-page results with rendered
content and tardiness accounting.

The content a fragment materialises depends only on the database, never
on the schedule, so fragments are executed once per request in
topological order and the simulator decides *when* each transaction
completed, i.e. what the user-perceived latency was.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.transaction import Transaction
from repro.core.workflow_set import WorkflowSet
from repro.errors import QueryError
from repro.policies.base import Scheduler
from repro.policies.registry import make_policy
from repro.sim.engine import Simulator
from repro.sim.profiler import LengthProfiler
from repro.sim.results import SimulationResult, TransactionRecord
from repro.webdb.cache import FragmentCache
from repro.webdb.database import Database, Row
from repro.webdb.pages import DynamicPage
from repro.webdb.sessions import PageRequest

__all__ = ["WebDatabase", "PageResult", "WebRunReport"]


@dataclass(slots=True)
class PageResult:
    """Outcome of one page request after simulation.

    ``fragment_records`` maps fragment name to its transaction record;
    ``content`` is the rendered page (fragments in topological order).
    """

    request: PageRequest
    fragment_records: dict[str, TransactionRecord]
    content: str

    @property
    def finish(self) -> float:
        """When the last fragment of the page completed."""
        return max(r.finish for r in self.fragment_records.values())

    @property
    def latency(self) -> float:
        """User-perceived latency: last completion minus request time."""
        return self.finish - self.request.at

    @property
    def tardiness(self) -> float:
        """Page-level tardiness: worst fragment tardiness."""
        return max(r.tardiness for r in self.fragment_records.values())

    @property
    def weighted_tardiness(self) -> float:
        """Sum of the fragments' weighted tardiness."""
        return sum(r.weighted_tardiness for r in self.fragment_records.values())

    @property
    def met_all_deadlines(self) -> bool:
        return all(r.met_deadline for r in self.fragment_records.values())


@dataclass(slots=True)
class WebRunReport:
    """Everything one :meth:`WebDatabase.run` produced."""

    policy_name: str
    page_results: list[PageResult]
    simulation: SimulationResult

    @property
    def average_page_latency(self) -> float:
        return sum(p.latency for p in self.page_results) / len(self.page_results)

    @property
    def average_page_tardiness(self) -> float:
        return sum(p.tardiness for p in self.page_results) / len(self.page_results)

    @property
    def pages_fully_on_time(self) -> int:
        return sum(1 for p in self.page_results if p.met_all_deadlines)


class WebDatabase:
    """Front end of the simulated web-database system.

    Examples
    --------
    See ``examples/stock_portal.py`` for a complete scenario; the basic
    flow is::

        wdb = WebDatabase(db)
        wdb.register_page(page)
        wdb.submit_all(session.requests(rng, n=20))
        report = wdb.run("asets-star")
    """

    def __init__(
        self,
        db: Database,
        cache: FragmentCache | None = None,
        profiler: LengthProfiler | None = None,
        cost_noise: float = 0.0,
        noise_seed: int = 0,
        optimize_queries: bool = False,
    ) -> None:
        """Create a front end over ``db``.

        ``cache`` enables fragment caching/materialization.  ``cost_noise``
        makes *actual* execution costs deviate from the cost model by up
        to the given relative factor (deterministically per request mix),
        and ``profiler`` — typically a
        :class:`~repro.sim.profiler.LengthProfiler` — then learns the
        true costs across runs and supplies the scheduler's estimates, as
        §II-A's "statistics and profiles" prescribe.  With
        ``optimize_queries`` every fragment's plan is rewritten by
        :func:`repro.webdb.optimizer.optimize` at registration.
        """
        if cost_noise < 0:
            raise QueryError(f"cost_noise must be >= 0, got {cost_noise}")
        self.db = db
        self.cache = cache
        self.profiler = profiler
        self.cost_noise = cost_noise
        self.noise_seed = noise_seed
        self.optimize_queries = optimize_queries
        self._pages: dict[str, DynamicPage] = {}
        self._requests: list[PageRequest] = []
        #: Transaction ids that were cache hits in the last compile; their
        #: lengths are the hit cost, not a materialisation, and must not
        #: feed the length profile.
        self._hit_txns: set[int] = set()

    # ------------------------------------------------------------------
    # Setup.
    # ------------------------------------------------------------------
    def register_page(self, page: DynamicPage) -> None:
        if page.name in self._pages:
            raise QueryError(f"page {page.name!r} already registered")
        if self.optimize_queries:
            from repro.webdb.fragments import ContentFragment
            from repro.webdb.optimizer import optimize

            page = DynamicPage(
                page.name,
                [
                    ContentFragment(
                        frag.name,
                        optimize(frag.query, self.db),
                        renderer=frag.renderer,
                        urgency=frag.urgency,
                        weight_boost=frag.weight_boost,
                        cache_key=frag.cache_key,
                    )
                    for frag in page.fragments()
                ],
            )
        self._pages[page.name] = page

    def page(self, name: str) -> DynamicPage:
        try:
            return self._pages[name]
        except KeyError:
            raise QueryError(
                f"unknown page {name!r}; registered: {sorted(self._pages)}"
            ) from None

    def submit(self, request: PageRequest) -> None:
        """Queue one page request for the next :meth:`run`."""
        if request.page.name not in self._pages:
            raise QueryError(
                f"request references unregistered page {request.page.name!r}"
            )
        self._requests.append(request)

    def submit_all(self, requests: list[PageRequest]) -> None:
        for request in requests:
            self.submit(request)

    def clear_requests(self) -> None:
        self._requests.clear()

    @property
    def pending_requests(self) -> int:
        return len(self._requests)

    # ------------------------------------------------------------------
    # Compilation and execution.
    # ------------------------------------------------------------------
    def compile_requests(self) -> tuple[list[Transaction], list[dict[str, int]]]:
        """Turn the queued requests into a transaction pool.

        Returns the pool plus, per request, the fragment-name → txn-id
        mapping (used to attribute records back to pages).
        """
        if not self._requests:
            raise QueryError("no page requests submitted")
        if self.cache is not None:
            # Replan from a cold cache on every compile so repeated runs
            # of the same request mix are identical.
            self.cache.reset()
        transactions: list[Transaction] = []
        mappings: list[dict[str, int] | None] = [None] * len(self._requests)
        next_id = 0
        # Compile in arrival order (the cache planner requires it) while
        # keeping the returned mappings aligned with submission order.
        order = sorted(
            range(len(self._requests)), key=lambda i: self._requests[i].at
        )
        noise_rng = random.Random(self.noise_seed)
        self._hit_txns = set()
        for index in order:
            request = self._requests[index]
            mapping: dict[str, int] = {}
            for frag in request.page.fragments():
                model_cost = frag.estimated_cost(self.db)
                hit = False
                if self.cache is not None and frag.cache_key is not None:
                    decision = self.cache.decide(
                        frag.cache_key, request.at, model_cost
                    )
                    hit = decision.hit
                    model_cost = decision.length
                    if hit:
                        self._hit_txns.add(next_id)
                if hit or self.cost_noise == 0:
                    # Cache hits read a materialised copy: predictable.
                    true_length = model_cost
                else:
                    factor = 1.0 + noise_rng.uniform(
                        -self.cost_noise, self.cost_noise
                    )
                    true_length = max(0.05 * model_cost, model_cost * factor)
                estimate = model_cost
                if self.profiler is not None and not hit:
                    estimate = self.profiler.estimate(
                        self._class_key(request, frag.name), model_cost
                    )
                # The SLA is published from the system's belief.
                deadline = request.tier.deadline_for(
                    request.at, estimate, frag.urgency
                )
                weight = request.tier.weight_for(frag.weight_boost)
                deps = [mapping[name] for name in sorted(frag.dependencies())]
                transactions.append(
                    Transaction(
                        txn_id=next_id,
                        arrival=request.at,
                        length=true_length,
                        deadline=deadline,
                        weight=weight,
                        depends_on=deps,
                        length_estimate=estimate,
                    )
                )
                mapping[frag.name] = next_id
                next_id += 1
            mappings[index] = mapping
        return transactions, [m for m in mappings if m is not None]

    @staticmethod
    def _class_key(request: PageRequest, fragment_name: str) -> str:
        """Profiling class of one fragment instance."""
        return f"{request.page.name}/{fragment_name}"

    def run(
        self,
        policy: str | Scheduler = "asets-star",
        record_trace: bool = False,
        servers: int = 1,
        **policy_kwargs,
    ) -> WebRunReport:
        """Simulate the queued requests under ``policy``.

        ``policy`` is a registry name (with ``policy_kwargs`` forwarded)
        or an already-constructed scheduler.  Requests stay queued, so
        the same mix can be re-run under several policies.  ``servers``
        scales the backend database (default 1, the paper's model).
        """
        scheduler = (
            make_policy(policy, **policy_kwargs)
            if isinstance(policy, str)
            else policy
        )
        transactions, mappings = self.compile_requests()
        workflow_set = (
            WorkflowSet(transactions) if scheduler.requires_workflows else None
        )
        result = Simulator(
            transactions,
            scheduler,
            workflow_set=workflow_set,
            record_trace=record_trace,
            servers=servers,
        ).run()
        if self.profiler is not None:
            # Feed the observed execution lengths back into the profile,
            # so the *next* run schedules on learned estimates.
            for request, mapping in zip(self._requests, mappings):
                for name, txn_id in mapping.items():
                    if txn_id in self._hit_txns:
                        continue  # hit costs are not materialisations
                    self.profiler.observe(
                        self._class_key(request, name),
                        result.record_of(txn_id).length,
                    )
        page_results = [
            self._page_result(request, mapping, result)
            for request, mapping in zip(self._requests, mappings)
        ]
        return WebRunReport(
            policy_name=result.policy_name,
            page_results=page_results,
            simulation=result,
        )

    def _page_result(
        self,
        request: PageRequest,
        mapping: dict[str, int],
        result: SimulationResult,
    ) -> PageResult:
        records = {
            name: result.record_of(txn_id) for name, txn_id in mapping.items()
        }
        bindings: dict[str, list[Row]] = {}
        chunks = []
        for frag in request.page.fragments():
            rows = frag.materialise(self.db, bindings)
            bindings[frag.name] = rows
            chunks.append(frag.render(rows))
        return PageResult(
            request=request,
            fragment_records=records,
            content="\n\n".join(chunks),
        )
