"""A simulated web-database: the paper's application scenario as code.

Section II-B motivates ASETS* with a personalised-portal application:
dynamic web pages composed of content fragments (stock tickers, portfolio
value, alerts, traffic, weather), each materialised by a transaction
against a backend database, with dependencies among the fragments of one
page and SLAs/weights reflecting urgency and subscription tier.

This subpackage implements that substrate end to end:

* :mod:`~repro.webdb.database` — an in-memory relational store with
  read-only scan/filter/join/aggregate operators;
* :mod:`~repro.webdb.query` — composable query plans with a deterministic
  cost model (costs become transaction lengths);
* :mod:`~repro.webdb.fragments` — content fragments bound to queries;
* :mod:`~repro.webdb.pages` — dynamic pages: fragments plus their
  dependency DAG;
* :mod:`~repro.webdb.sla` — SLA tiers mapping to deadlines and weights;
* :mod:`~repro.webdb.sessions` — user sessions emitting page requests;
* :mod:`~repro.webdb.frontend` — the :class:`WebDatabase` front end that
  compiles page requests into scheduler transactions, runs the simulator
  under any policy, and renders the materialised pages.

The quantitative evaluation (Section IV) runs on the synthetic generator,
exactly as in the paper; this substrate powers the examples and
integration tests with a realistic API.
"""

from repro.webdb.database import Database, Table
from repro.webdb.query import (
    Aggregate,
    Filter,
    Input,
    Join,
    Limit,
    Project,
    Query,
    Scan,
    Sort,
)
from repro.webdb.cache import CacheDecision, FragmentCache
from repro.webdb.fragments import ContentFragment
from repro.webdb.pages import DynamicPage
from repro.webdb.sla import SLA_TIERS, SLATier
from repro.webdb.sessions import PageRequest, UserSession
from repro.webdb.optimizer import optimize
from repro.webdb.predicates import ColumnPredicate, Conjunction
from repro.webdb.sql import parse_sql
from repro.webdb.frontend import PageResult, WebDatabase

__all__ = [
    "Database",
    "Table",
    "Query",
    "Scan",
    "Input",
    "Filter",
    "Project",
    "Join",
    "Aggregate",
    "Sort",
    "Limit",
    "ContentFragment",
    "FragmentCache",
    "CacheDecision",
    "DynamicPage",
    "SLATier",
    "SLA_TIERS",
    "UserSession",
    "PageRequest",
    "WebDatabase",
    "PageResult",
    "parse_sql",
    "optimize",
    "ColumnPredicate",
    "Conjunction",
]
